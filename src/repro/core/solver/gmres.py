"""BatchGmres: batched restarted GMRES(m) with left preconditioning.

Completes the solver column of Table 3. The Arnoldi process uses modified
Gram-Schmidt and per-system Givens rotations, all vectorized across the
batch; restarts bound the Krylov-basis workspace (which is what competes
for SLM in the fused-kernel design — the basis dominates the workspace
list reported by :meth:`workspace_vectors`).

Convergence monitoring: within a restart cycle the Givens residual
estimate of the *preconditioned* system drives early exit; at every
restart boundary the true residual ``b - A x`` is measured and is what the
stopping criterion is checked against. With the identity preconditioner
the two coincide.
"""

from __future__ import annotations

import numpy as np

from repro.core import blas
from repro.core.counters import TrafficLedger
from repro.core.solver.base import BatchIterativeSolver, ConvergenceTracker


class BatchGmres(BatchIterativeSolver):
    """Restarted GMRES over a batch of general systems.

    Parameters
    ----------
    restart:
        Krylov subspace dimension per cycle (default 30).
    """

    solver_name = "gmres"

    def __init__(self, matrix, preconditioner=None, settings=None, restart: int = 30) -> None:
        super().__init__(matrix, preconditioner, settings)
        if restart <= 0:
            raise ValueError(f"restart must be positive, got {restart}")
        self.restart = min(restart, matrix.num_rows)

    def workspace_vectors(self) -> list[tuple[str, int]]:
        n = self.matrix.num_rows
        m = self.restart
        # The Krylov basis is the large, frequently-touched object; the
        # Hessenberg/rotation state is tiny by comparison.
        return [
            ("V", (m + 1) * n),
            ("r", n),
            ("w", n),
            ("H", (m + 1) * m),
            ("x", n),
            ("A_cache", self.matrix.nnz_per_item),
        ]

    def _iterate(
        self,
        b: np.ndarray,
        x: np.ndarray,
        tracker: ConvergenceTracker,
        ledger: TrafficLedger,
    ) -> None:
        matrix = self.matrix
        precond = self.preconditioner
        nb, n = b.shape
        m = self.restart
        dtype = b.dtype
        tiny = np.finfo(dtype).tiny

        r = self._initial_residual(b, x, ledger)
        res_norms = blas.norm2(r, ledger, "r")
        tracker.start(res_norms)

        total_iters = 0
        while total_iters < self.settings.max_iterations and not tracker.all_done:
            active = tracker.active

            # Preconditioned cycle residual z = M r, beta = ||z||.
            z = precond.apply(r, ledger=ledger)
            beta = blas.norm2(z, ledger, "z")
            safe_beta = np.where(beta > tiny, beta, 1.0)

            V = np.zeros((m + 1, nb, n), dtype=dtype)
            H = np.zeros((nb, m + 1, m), dtype=dtype)
            cs = np.zeros((nb, m), dtype=dtype)
            sn = np.zeros((nb, m), dtype=dtype)
            g = np.zeros((nb, m + 1), dtype=dtype)
            V[0] = z / safe_beta[:, None]
            g[:, 0] = beta

            steps = 0
            for j in range(m):
                if total_iters + j >= self.settings.max_iterations:
                    break
                steps = j + 1

                # w = M A v_j
                t = matrix.apply(V[j], ledger=ledger, x_name="V", y_name="w")
                w = precond.apply(t, ledger=ledger)

                # Modified Gram-Schmidt against v_0..v_j.
                for i in range(j + 1):
                    hij = blas.dot(V[i], w, ledger, ("V", "w"))
                    H[:, i, j] = hij
                    blas.axpy(-hij, V[i], w, ledger, ("V", "w"))
                hnext = blas.norm2(w, ledger, "w")
                H[:, j + 1, j] = hnext
                V[j + 1] = w / np.where(hnext > tiny, hnext, 1.0)[:, None]

                # Apply the accumulated Givens rotations to column j.
                for i in range(j):
                    temp = cs[:, i] * H[:, i, j] + sn[:, i] * H[:, i + 1, j]
                    H[:, i + 1, j] = -sn[:, i] * H[:, i, j] + cs[:, i] * H[:, i + 1, j]
                    H[:, i, j] = temp
                # New rotation annihilating H[j+1, j].
                denom = np.hypot(H[:, j, j], H[:, j + 1, j])
                safe = np.where(denom > tiny, denom, 1.0)
                cs[:, j] = np.where(denom > tiny, H[:, j, j] / safe, 1.0)
                sn[:, j] = np.where(denom > tiny, H[:, j + 1, j] / safe, 0.0)
                H[:, j, j] = cs[:, j] * H[:, j, j] + sn[:, j] * H[:, j + 1, j]
                H[:, j + 1, j] = 0.0
                g[:, j + 1] = -sn[:, j] * g[:, j]
                g[:, j] = cs[:, j] * g[:, j]

                # The Givens estimate of the preconditioned residual.
                estimate = np.abs(g[:, j + 1])
                if bool((~active | (estimate <= tracker.thresholds)).all()):
                    break

            total_iters += steps
            if steps == 0:
                break

            # Solve the small triangular system H y = g (per system).
            y = np.zeros((nb, steps), dtype=dtype)
            for i in range(steps - 1, -1, -1):
                acc = g[:, i].copy()
                if i + 1 < steps:
                    acc -= np.einsum("bk,bk->b", H[:, i, i + 1 : steps], y[:, i + 1 :])
                diag = H[:, i, i]
                y[:, i] = np.where(np.abs(diag) > tiny, acc / np.where(diag == 0, 1.0, diag), 0.0)

            # x += sum_k y_k v_k, only for systems that were active this cycle.
            update = np.einsum("kbn,bk->bn", V[:steps], y)
            x += np.where(active[:, None], update, 0.0)
            ledger.add_flops(2.0 * nb * n * steps)
            ledger.add_bytes("V", float(ledger.fp_bytes) * nb * n * steps)
            ledger.add_bytes("x", 2.0 * ledger.fp_bytes * nb * n)

            # True residual at the restart boundary drives the criterion.
            r = self._initial_residual(b, x, ledger)
            res_norms = blas.norm2(r, ledger, "r")
            tracker.update(total_iters, res_norms, active)
