"""Core library: batched matrix formats, solvers, preconditioners, dispatch.

This package is the Python counterpart of Ginkgo's ``batched`` module as
described in Section 3 of the paper. See :mod:`repro.core.dispatch` for the
top-level entry point (the multi-level dispatch mechanism of Figure 3) and
:mod:`repro.core.solver` for the individual solvers.
"""

from repro.core.matrix import BatchCsr, BatchDense, BatchEll, BatchedMatrix
from repro.core.counters import TrafficLedger
from repro.core.stop import AbsoluteResidual, RelativeResidual, StoppingCriterion
from repro.core.logger import ConvergenceLogger
from repro.core.solver import (
    BatchBicg,
    BatchBicgstab,
    BatchCgs,
    BatchCg,
    BatchDirect,
    BatchGmres,
    BatchRichardson,
    BatchTrsv,
    SolverSettings,
    BatchSolveResult,
)
from repro.core.preconditioner import (
    BatchIc0,
    BatchIdentity,
    BatchJacobi,
    BatchBlockJacobi,
    BatchIlu,
    BatchIsai,
)
from repro.core.dispatch import BatchSolverFactory, feature_matrix
from repro.core.launch import LaunchConfigurator, KernelLaunchPlan
from repro.core.workspace import SlmBudget, WorkspacePlan, plan_workspace

__all__ = [
    "BatchedMatrix",
    "BatchDense",
    "BatchCsr",
    "BatchEll",
    "TrafficLedger",
    "StoppingCriterion",
    "AbsoluteResidual",
    "RelativeResidual",
    "ConvergenceLogger",
    "SolverSettings",
    "BatchSolveResult",
    "BatchCg",
    "BatchBicg",
    "BatchBicgstab",
    "BatchCgs",
    "BatchGmres",
    "BatchRichardson",
    "BatchTrsv",
    "BatchDirect",
    "BatchIdentity",
    "BatchJacobi",
    "BatchBlockJacobi",
    "BatchIlu",
    "BatchIc0",
    "BatchIsai",
    "BatchSolverFactory",
    "feature_matrix",
    "LaunchConfigurator",
    "KernelLaunchPlan",
    "SlmBudget",
    "WorkspacePlan",
    "plan_workspace",
]
