"""Cooperative, barrier-correct execution of ND-range kernels.

Work-groups are independent in SYCL (no cross-group synchronization exists
— Section 2.3 of the paper), so the executor runs them one after another.
Within a work-group, every work-item runs as a Python generator; the
scheduler advances each item until it yields a :class:`~repro.sycl.group.SyncOp`,
assembles collectives once *all* members of the operation's scope have
arrived with an identical operation signature, and resumes the members with
their results.

Divergence — some work-items of a scope exiting or waiting on a different
operation while siblings sit in a barrier — is undefined behaviour on real
hardware and raises :class:`~repro.exceptions.BarrierDivergenceError` here,
with a diagnostic naming the offending work-items.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.exceptions import BarrierDivergenceError, KernelFaultError
from repro.observability.tracer import current_tracer
from repro.profile.context import (
    current_profiler,
    reset_active_launch,
    set_active_launch,
)
from repro.sanitize.context import current_sanitizer
from repro.sanitize.report import AccessSite
from repro.sycl.device import SyclDevice
from repro.sycl.group import GROUP, SUB_GROUP, NDItem, SyncOp, evaluate_collective
from repro.sycl.memory import (
    LocalSpec,
    allocate_local,
    check_local_capacity,
    poison_local,
    total_local_bytes,
)
from repro.sycl.ndrange import NDRange

_RUNNING = "running"
_WAITING = "waiting"
_DONE = "done"


@dataclass
class LaunchStats:
    """Bookkeeping for one kernel launch, consumed by tests and the hw model."""

    num_groups: int = 0
    local_size: int = 0
    sub_group_size: int = 0
    slm_bytes_per_group: int = 0
    collective_counts: dict[str, int] = field(default_factory=dict)

    def record_collective(self, kind: str, scope: str) -> None:
        """Count one completed collective, keyed as ``scope:kind``."""
        key = f"{scope}:{kind}"
        self.collective_counts[key] = self.collective_counts.get(key, 0) + 1


class _WorkItemState:
    """Scheduler bookkeeping for one running work-item.

    ``site`` is the source location of the item's current sync point
    (captured only when a sanitizer is active; ``None`` otherwise).
    """

    __slots__ = ("item", "gen", "status", "pending", "site")

    def __init__(self, item: NDItem, gen: Any) -> None:
        self.item = item
        self.gen = gen
        self.status = _RUNNING
        self.pending: SyncOp | None = None
        self.site: AccessSite | None = None


def _yield_site(gen: Any) -> AccessSite | None:
    """Source location of the statement a suspended generator yielded from.

    Kernels delegate to subroutines with ``yield from``; the innermost
    generator of the delegation chain holds the frame of the actual
    barrier/collective statement.
    """
    inner = gen
    while True:
        delegate = getattr(inner, "gi_yieldfrom", None)
        if delegate is None or not inspect.isgenerator(delegate):
            break
        inner = delegate
    frame = getattr(inner, "gi_frame", None)
    if frame is None:
        return None
    return AccessSite(frame.f_code.co_filename, frame.f_lineno, frame.f_code.co_name)


def _advance(
    state: _WorkItemState,
    send_value: Any = None,
    *,
    first: bool = False,
    check: Any = None,
    prof: Any = None,
) -> None:
    """Run one work-item until its next sync point or completion."""
    if state.gen is None:
        state.status = _DONE
        return
    if check is not None:
        check.set_current(state.item)
    if prof is not None:
        prof.set_current(state.item)
    try:
        yielded = state.gen.send(None) if first else state.gen.send(send_value)
    except StopIteration:
        state.status = _DONE
        state.pending = None
        state.site = None
        return
    finally:
        if check is not None:
            check.set_current(None)
    if not isinstance(yielded, SyncOp):
        raise KernelFaultError(
            f"work-item {state.item.global_id} yielded {yielded!r}; kernels "
            f"must only yield SyncOp objects (barrier / group functions)"
        )
    state.status = _WAITING
    state.pending = yielded
    if check is not None:
        state.site = _yield_site(state.gen)


def run_work_group(
    ndrange: NDRange,
    group_id: int,
    kernel: Callable[..., Any],
    local: Any,
    args: tuple,
    stats: LaunchStats | None = None,
    check: Any = None,
    prof: Any = None,
) -> None:
    """Execute every work-item of one work-group to completion.

    ``check`` is the sanitizer's per-group :class:`~repro.sanitize.GroupCheck`
    (or ``None``); when present, ``local`` is already its shadow-wrapped
    view and every work-item advance runs with the shadow state primed.
    ``prof`` is the profiler's per-launch
    :class:`~repro.profile.profiler.LaunchProfile` (or ``None``); when
    present, ``local`` and ``args`` are already counting-proxy views.
    """
    base = group_id * ndrange.local_size
    states: list[_WorkItemState] = []
    for local_id in range(ndrange.local_size):
        item = NDItem(ndrange, base + local_id)
        if check is not None:
            # non-generator kernels execute their whole body inside this
            # call, so the shadow state must already know the item
            check.set_current(item)
        if prof is not None:
            prof.set_current(item)
        try:
            produced = kernel(item, local, *args)
        finally:
            if check is not None:
                check.set_current(None)
        gen = produced if inspect.isgenerator(produced) else None
        states.append(_WorkItemState(item, gen))

    for state in states:
        _advance(state, first=True, check=check, prof=prof)

    while True:
        if all(s.status == _DONE for s in states):
            return
        if not _assemble_round(ndrange, states, stats, check, prof):
            if check is not None:
                check.classify_deadlock(states)
            _raise_divergence(states)


def _assemble_round(
    ndrange: NDRange,
    states: list[_WorkItemState],
    stats: LaunchStats | None,
    check: Any = None,
    prof: Any = None,
) -> bool:
    """Complete every collective whose scope has fully assembled.

    Returns True if at least one collective completed (progress was made).
    """
    progressed = False

    # Work-group scope: requires every work-item of the group.
    if all(s.status == _WAITING and s.pending.scope == GROUP for s in states):
        _check_signatures(states, "work-group", check)
        op = states[0].pending
        if check is not None:
            check.check_assembly(op, states, "the work-group")
        lanes = [s.item.local_id for s in states]
        values = [s.pending.value for s in states]
        results = evaluate_collective(op.kind, op.params, lanes, values)
        if stats is not None:
            stats.record_collective(op.kind, GROUP)
        if check is not None:
            # epochs advance before any member resumes and touches SLM
            check.on_sync_complete(op, lanes, None)
        if prof is not None:
            prof.on_collective(op.kind, GROUP, states[0].item)
        for state, result in zip(states, results):
            _advance(state, result, check=check, prof=prof)
        return True

    # Divergence accounting uses the state of the *round entry* — members
    # resumed by an earlier sub-group's completion in the same round must
    # not masquerade as divergent siblings (uniform flow measures zero).
    snapshot = None
    if prof is not None:
        snapshot = [
            (s.status, s.pending.signature() if s.status == _WAITING else None)
            for s in states
        ]

    # Sub-group scope: each sub-group assembles independently.
    for sg_id in range(ndrange.sub_groups_per_group):
        members = [s for s in states if s.item.sub_group_id == sg_id]
        if not members:
            continue
        if all(s.status == _WAITING and s.pending.scope == SUB_GROUP for s in members):
            _check_signatures(members, f"sub-group {sg_id}", check)
            op = members[0].pending
            if check is not None:
                check.check_assembly(op, members, f"sub-group {sg_id}")
            lanes = [s.item.lane for s in members]
            values = [s.pending.value for s in members]
            results = evaluate_collective(op.kind, op.params, lanes, values)
            if stats is not None:
                stats.record_collective(op.kind, SUB_GROUP)
            if check is not None:
                check.on_sync_complete(op, [s.item.local_id for s in members], sg_id)
            if prof is not None:
                prof.on_collective(op.kind, SUB_GROUP, members[0].item)
                sig = op.signature()
                for s, (status, pending_sig) in zip(states, snapshot):
                    if s.item.sub_group_id == sg_id:
                        continue
                    if status == _DONE or (
                        status == _WAITING and pending_sig != sig
                    ):
                        prof.on_divergence(members[0].item)
                        break
            for state, result in zip(members, results):
                _advance(state, result, check=check, prof=prof)
            progressed = True

    return progressed


def _check_signatures(
    states: Iterable[_WorkItemState], scope_name: str, check: Any = None
) -> None:
    states = list(states)
    sigs = {s.pending.signature() for s in states}
    if len(sigs) > 1:
        if check is not None:
            check.classify_deadlock(states)
        raise BarrierDivergenceError(
            f"work-items of {scope_name} reached different synchronization "
            f"operations: {sorted(sigs)}"
        )


def _raise_divergence(states: list[_WorkItemState]) -> None:
    done = [s.item.local_id for s in states if s.status == _DONE]
    waiting = {
        s.item.local_id: s.pending.signature() for s in states if s.status == _WAITING
    }
    raise BarrierDivergenceError(
        "work-group deadlocked: no synchronization scope can assemble. "
        f"finished work-items: {done}; waiting work-items: {waiting}. "
        "This is barrier divergence (undefined behaviour on hardware)."
    )


def launch(
    device: SyclDevice,
    ndrange: NDRange,
    kernel: Callable[..., Any],
    args: tuple = (),
    local_specs: list[LocalSpec] | None = None,
    poison_slm: bool = False,
    name: str | None = None,
) -> LaunchStats:
    """Validate and execute a full ND-range kernel launch on ``device``.

    Raises the same classes of errors a strict SYCL runtime would: invalid
    sub-group/work-group sizes, SLM over-subscription, and (beyond real
    runtimes) deterministic barrier-divergence detection. When a sanitizer
    is installed (:func:`repro.sanitize.use_sanitizer`) every work-group
    additionally runs under shadow-memory and convergence checking; when a
    profiler is installed (:func:`repro.profile.use_profiler`) every
    global/SLM access, collective and divergence event is counted into
    per-phase hardware counters. The two compose: the profiler wraps
    *outside* the sanitizer's shadow views so both observe every access.
    ``name`` labels the launch in sanitizer reports and counter profiles
    (defaults to the kernel's ``__name__``).
    """
    device.validate_work_group_size(ndrange.local_size)
    device.validate_sub_group_size(ndrange.sub_group_size)
    specs = list(local_specs or [])
    check_local_capacity(specs, device.slm_bytes_per_cu, device.name)

    stats = LaunchStats(
        num_groups=ndrange.num_groups,
        local_size=ndrange.local_size,
        sub_group_size=ndrange.sub_group_size,
        slm_bytes_per_group=total_local_bytes(specs),
    )
    sanitizer = current_sanitizer()
    profiler = current_profiler()
    kernel_name = name or getattr(kernel, "__name__", "kernel")
    if sanitizer is not None:
        sanitizer.begin_launch(kernel_name, ndrange.num_groups)
    prof = None
    token = None
    if profiler is not None:
        prof = profiler.begin_launch(kernel_name, ndrange.num_groups, device.name)
        args = prof.wrap_args(args)
        token = set_active_launch(prof)
    try:
        for group_id in range(ndrange.num_groups):
            local = allocate_local(specs)
            if poison_slm:
                poison_local(local)
            check = None
            if sanitizer is not None:
                check = sanitizer.begin_group(
                    kernel_name,
                    group_id,
                    ndrange.local_size,
                    ndrange.sub_group_size,
                    ndrange.sub_groups_per_group,
                )
                local = check.wrap_local(local)
            if prof is not None:
                local = prof.wrap_local(local)
            run_work_group(ndrange, group_id, kernel, local, args, stats, check, prof)
    finally:
        if prof is not None:
            reset_active_launch(token)
            profiler.end_launch(prof)

    tracer = current_tracer()
    if tracer.enabled:
        # the executor is below the Queue span, so it contributes metrics
        # (and annotates whatever span surrounds it) rather than opening
        # its own span per launch
        metrics = tracer.metrics
        metrics.counter("sycl.launches").inc()
        metrics.counter("sycl.work_groups").inc(stats.num_groups)
        metrics.histogram("sycl.slm_bytes_per_group").observe(
            float(stats.slm_bytes_per_group)
        )
        for key, count in stats.collective_counts.items():
            metrics.counter(f"sycl.collectives.{key}").inc(count)
        tracer.annotate(device=device.name)
    return stats
