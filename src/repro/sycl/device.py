"""SYCL device descriptors.

A :class:`SyclDevice` captures the hardware attributes that the batched
solvers interrogate when choosing a launch configuration (Section 3.6 of the
paper): the supported sub-group sizes, the shared-local-memory capacity per
compute unit, the maximum work-group size, and — specific to Ponte Vecchio —
the number of stacks usable through implicit scaling (Section 2.2).

The descriptors here define the *execution model* view of a device. The
performance-model view (peak FLOP rates, bandwidths from Table 5 of the
paper) lives in :mod:`repro.hw.specs`, which builds on these descriptors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import DeviceCapabilityError, SubGroupSizeError


@dataclass(frozen=True)
class SyclDevice:
    """Execution-model description of a SYCL device.

    Parameters
    ----------
    name:
        Marketing name, e.g. ``"Intel Data Center GPU Max 1550"``.
    vendor:
        ``"intel"``, ``"nvidia"`` or ``"host"``.
    num_compute_units:
        Number of Xe-cores (Intel) or streaming multiprocessors (NVIDIA)
        *per stack*.
    sub_group_sizes:
        Sub-group widths supported by the compiler for this device. PVC
        supports 16 and 32; CUDA devices only 32 (the warp width).
    slm_bytes_per_cu:
        Shared local memory available to the work-groups resident on one
        compute unit, in bytes.
    max_work_group_size:
        Largest legal work-group.
    max_work_items_per_cu:
        Work-item residency capacity of a compute unit; used by the
        occupancy model.
    global_mem_bytes:
        HBM capacity (per stack for multi-stack devices).
    num_stacks:
        1 for monolithic GPUs, 2 for the PVC two-stack package.
    """

    name: str
    vendor: str
    num_compute_units: int
    sub_group_sizes: tuple[int, ...]
    slm_bytes_per_cu: int
    max_work_group_size: int = 1024
    max_work_items_per_cu: int = 2048
    global_mem_bytes: int = 64 * 1024**3
    num_stacks: int = 1
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.num_compute_units <= 0:
            raise DeviceCapabilityError(
                f"device {self.name!r}: num_compute_units must be positive"
            )
        if not self.sub_group_sizes:
            raise DeviceCapabilityError(
                f"device {self.name!r}: at least one sub-group size is required"
            )
        if any(s <= 0 or (s & (s - 1)) for s in self.sub_group_sizes):
            raise SubGroupSizeError(
                f"device {self.name!r}: sub-group sizes must be powers of two, "
                f"got {self.sub_group_sizes}"
            )
        if self.slm_bytes_per_cu <= 0:
            raise DeviceCapabilityError(
                f"device {self.name!r}: slm_bytes_per_cu must be positive"
            )

    # -- capability queries -------------------------------------------------

    def supports_sub_group_size(self, size: int) -> bool:
        """True if the compiler can instantiate kernels at this sub-group width."""
        return size in self.sub_group_sizes

    def validate_sub_group_size(self, size: int) -> None:
        """Raise :class:`SubGroupSizeError` for unsupported sub-group widths."""
        if not self.supports_sub_group_size(size):
            raise SubGroupSizeError(
                f"device {self.name!r} supports sub-group sizes "
                f"{self.sub_group_sizes}, requested {size}"
            )

    def validate_work_group_size(self, size: int) -> None:
        """Raise :class:`DeviceCapabilityError` for oversized work-groups."""
        if size <= 0 or size > self.max_work_group_size:
            raise DeviceCapabilityError(
                f"device {self.name!r}: work-group size {size} outside "
                f"(0, {self.max_work_group_size}]"
            )

    @property
    def total_compute_units(self) -> int:
        """Compute units across all stacks (implicit-scaling view)."""
        return self.num_compute_units * self.num_stacks

    @property
    def preferred_sub_group_size(self) -> int:
        """The smallest supported sub-group size (best for small problems)."""
        return min(self.sub_group_sizes)


def cpu_device(name: str = "host-cpu") -> SyclDevice:
    """A host device for functional testing of kernels.

    Mirrors the SYCL host/CPU device: flexible sub-group sizes and a
    generous SLM limit (SLM maps to ordinary memory on CPUs).
    """
    return SyclDevice(
        name=name,
        vendor="host",
        num_compute_units=8,
        sub_group_sizes=(4, 8, 16, 32),
        slm_bytes_per_cu=256 * 1024,
        max_work_group_size=4096,
        max_work_items_per_cu=4096,
        global_mem_bytes=16 * 1024**3,
    )


def pvc_stack_device(num_stacks: int = 1) -> SyclDevice:
    """The Intel Data Center GPU Max 1550 (Ponte Vecchio) descriptor.

    Values follow Section 2.2 and Table 5 of the paper: 64 Xe-cores and
    64 GB HBM per stack, 128 KB SLM per Xe-core, sub-group sizes 16 and 32.
    """
    if num_stacks not in (1, 2):
        raise DeviceCapabilityError(f"PVC has 1 or 2 stacks, got {num_stacks}")
    return SyclDevice(
        name=f"Intel Data Center GPU Max 1550 ({num_stacks}-stack)",
        vendor="intel",
        num_compute_units=64,
        sub_group_sizes=(16, 32),
        slm_bytes_per_cu=128 * 1024,
        max_work_group_size=1024,
        max_work_items_per_cu=1024,
        global_mem_bytes=64 * 1024**3,
        num_stacks=num_stacks,
        extra={"xve_per_core": 8, "hw_threads_per_xve": 8},
    )
