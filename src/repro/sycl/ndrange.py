"""The SYCL kernel index space (Figure 1 of the paper).

An :class:`NDRange` describes a 1-D launch: ``global_size`` work-items,
partitioned into work-groups of ``local_size`` consecutive items, each
work-group further partitioned into sub-groups of ``sub_group_size``
consecutive items. The batched solvers only ever use 1-D ranges (one
work-group per linear system), so the simulator restricts itself to 1-D.

``EXECUTION_MODEL_MAP`` reproduces Table 2 of the paper (CUDA-to-SYCL
execution model mapping).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import InvalidNDRangeError

#: Table 2 of the paper: execution model mapping from CUDA to SYCL.
EXECUTION_MODEL_MAP: dict[str, str] = {
    "thread": "work-item",
    "warp": "sub-group",
    "thread block": "work-group",
    "grid": "ND-range",
}


@dataclass(frozen=True)
class NDRange:
    """A 1-dimensional ND-range with an explicit sub-group decomposition.

    Parameters
    ----------
    global_size:
        Total number of work-items; must be a multiple of ``local_size``.
    local_size:
        Work-items per work-group; must be a multiple of ``sub_group_size``
        (the SYCL standard requires divisibility — Section 3.6).
    sub_group_size:
        Width of the sub-groups the compiler is asked to form.
    """

    global_size: int
    local_size: int
    sub_group_size: int = 16

    def __post_init__(self) -> None:
        if self.global_size <= 0 or self.local_size <= 0 or self.sub_group_size <= 0:
            raise InvalidNDRangeError(
                f"ND-range sizes must be positive: global={self.global_size}, "
                f"local={self.local_size}, sub_group={self.sub_group_size}"
            )
        if self.global_size % self.local_size != 0:
            raise InvalidNDRangeError(
                f"global size {self.global_size} is not a multiple of the "
                f"work-group size {self.local_size}"
            )
        if self.local_size % self.sub_group_size != 0:
            raise InvalidNDRangeError(
                f"work-group size {self.local_size} is not a multiple of the "
                f"sub-group size {self.sub_group_size} (required by SYCL)"
            )

    @property
    def num_groups(self) -> int:
        """Number of work-groups in the launch."""
        return self.global_size // self.local_size

    @property
    def sub_groups_per_group(self) -> int:
        """Number of sub-groups in each work-group."""
        return self.local_size // self.sub_group_size

    def group_of(self, global_id: int) -> int:
        """Work-group index of a global work-item id."""
        self._check_global_id(global_id)
        return global_id // self.local_size

    def local_of(self, global_id: int) -> int:
        """Local (in-group) index of a global work-item id."""
        self._check_global_id(global_id)
        return global_id % self.local_size

    def sub_group_of(self, global_id: int) -> tuple[int, int]:
        """(sub-group index within the group, lane within the sub-group)."""
        local = self.local_of(global_id)
        return local // self.sub_group_size, local % self.sub_group_size

    def _check_global_id(self, global_id: int) -> None:
        if not 0 <= global_id < self.global_size:
            raise InvalidNDRangeError(
                f"global id {global_id} outside [0, {self.global_size})"
            )
