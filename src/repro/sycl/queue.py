"""SYCL queues and profiling events.

A :class:`Queue` binds a device and submits kernel launches. The simulator
executes synchronously but preserves the SYCL surface: ``parallel_for``
returns an :class:`Event` carrying profiling information (host wall-clock)
plus the launch statistics the performance model consumes (work-group
geometry, SLM footprint, collective counts).

Queues also keep a submission log so tests can assert that the multi-level
dispatch mechanism produced exactly one fused kernel launch per solve
(Section 3.4 of the paper: all functionality gathered into a single kernel
to avoid launch latency).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.sycl.device import SyclDevice, cpu_device
from repro.sycl.executor import LaunchStats, launch
from repro.sycl.memory import LocalSpec
from repro.sycl.ndrange import NDRange


@dataclass(frozen=True)
class Event:
    """Completion record of one submitted kernel (``sycl::event``)."""

    name: str
    submit_time: float
    start_time: float
    end_time: float
    stats: LaunchStats

    @property
    def duration_seconds(self) -> float:
        """Host wall-clock execution time of the (simulated) kernel."""
        return self.end_time - self.start_time

    def wait(self) -> None:
        """No-op: the simulator executes synchronously."""


class Queue:
    """An in-order queue with profiling enabled.

    Parameters
    ----------
    device:
        Target device; defaults to the host CPU device.
    """

    def __init__(self, device: SyclDevice | None = None) -> None:
        self.device = device if device is not None else cpu_device()
        self.events: list[Event] = []

    def parallel_for(
        self,
        ndrange: NDRange,
        kernel: Callable[..., Any],
        args: tuple = (),
        local_specs: list[LocalSpec] | None = None,
        name: str | None = None,
        poison_slm: bool = False,
    ) -> Event:
        """Launch ``kernel`` over ``ndrange`` and wait for completion."""
        submit = time.perf_counter()
        start = submit
        stats = launch(
            self.device,
            ndrange,
            kernel,
            args=args,
            local_specs=local_specs,
            poison_slm=poison_slm,
        )
        end = time.perf_counter()
        event = Event(
            name=name or getattr(kernel, "__name__", "kernel"),
            submit_time=submit,
            start_time=start,
            end_time=end,
            stats=stats,
        )
        self.events.append(event)
        return event

    def wait(self) -> None:
        """Block until all submitted work completes (no-op: synchronous)."""

    @property
    def num_launches(self) -> int:
        """Number of kernels submitted to this queue so far."""
        return len(self.events)
