"""SYCL queues and profiling events.

A :class:`Queue` binds a device and submits kernel launches. The simulator
executes synchronously but preserves the SYCL surface: ``parallel_for``
returns an :class:`Event` carrying profiling information plus the launch
statistics the performance model consumes (work-group geometry, SLM
footprint, collective counts). Profiling timestamps are integer
nanoseconds from the monotonic clock (``time.perf_counter_ns``), matching
Level-Zero's ``zeEventQueryKernelTimestamp`` convention.

Queues also keep a submission log so tests can assert that the multi-level
dispatch mechanism produced exactly one fused kernel launch per solve
(Section 3.4 of the paper: all functionality gathered into a single kernel
to avoid launch latency). Long benchmark sweeps should call
:meth:`Queue.reset_events` between solves so the log does not grow without
bound.

When a tracer is installed (:mod:`repro.observability`), every submission
additionally emits a kernel-launch span carrying the
:class:`~repro.sycl.executor.LaunchStats` as span arguments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.observability.tracer import current_tracer
from repro.sycl.device import SyclDevice, cpu_device
from repro.sycl.executor import LaunchStats, launch
from repro.sycl.memory import LocalSpec, total_local_bytes
from repro.sycl.ndrange import NDRange


@dataclass(frozen=True)
class Event:
    """Completion record of one submitted kernel (``sycl::event``).

    Timestamps are monotonic-clock nanoseconds (Level-Zero style); the
    ``*_time`` / ``duration_seconds`` properties expose the legacy
    floating-point-seconds view.
    """

    name: str
    submit_ns: int
    start_ns: int
    end_ns: int
    stats: LaunchStats

    @property
    def duration_ns(self) -> int:
        """Execution time of the (simulated) kernel in integer nanoseconds."""
        return self.end_ns - self.start_ns

    @property
    def duration_seconds(self) -> float:
        """Host wall-clock execution time of the (simulated) kernel."""
        return self.duration_ns * 1e-9

    @property
    def submit_time(self) -> float:
        """Submission timestamp in seconds (monotonic clock)."""
        return self.submit_ns * 1e-9

    @property
    def start_time(self) -> float:
        """Start timestamp in seconds (monotonic clock)."""
        return self.start_ns * 1e-9

    @property
    def end_time(self) -> float:
        """Completion timestamp in seconds (monotonic clock)."""
        return self.end_ns * 1e-9

    def wait(self) -> None:
        """No-op: the simulator executes synchronously."""


class Queue:
    """An in-order queue with profiling enabled.

    Parameters
    ----------
    device:
        Target device; defaults to the host CPU device.
    """

    def __init__(self, device: SyclDevice | None = None) -> None:
        self.device = device if device is not None else cpu_device()
        self.events: list[Event] = []

    def parallel_for(
        self,
        ndrange: NDRange,
        kernel: Callable[..., Any],
        args: tuple = (),
        local_specs: list[LocalSpec] | None = None,
        name: str | None = None,
        poison_slm: bool = False,
    ) -> Event:
        """Launch ``kernel`` over ``ndrange`` and wait for completion."""
        kernel_name = name or getattr(kernel, "__name__", "kernel")
        tracer = current_tracer()
        with tracer.span(
            kernel_name, category="kernel", device=self.device.name
        ) as span:
            # geometry is known up front: set it before the launch so a
            # launch aborted mid-flight (e.g. by a sanitizer violation)
            # still leaves a valid kernel span on the trace
            span.set_args(
                num_groups=ndrange.global_size // ndrange.local_size,
                work_group_size=ndrange.local_size,
                sub_group_size=ndrange.sub_group_size,
                slm_bytes_per_group=total_local_bytes(list(local_specs or [])),
            )
            submit = time.perf_counter_ns()
            start = submit
            stats = launch(
                self.device,
                ndrange,
                kernel,
                args=args,
                local_specs=local_specs,
                poison_slm=poison_slm,
                name=kernel_name,
            )
            end = time.perf_counter_ns()
            span.set_args(collectives=dict(stats.collective_counts))
        event = Event(
            name=kernel_name,
            submit_ns=submit,
            start_ns=start,
            end_ns=end,
            stats=stats,
        )
        self.events.append(event)
        return event

    def submit_host_task(
        self, fn: Callable[[], Any], name: str = "host_task", **span_args: Any
    ) -> tuple[Any, Event]:
        """Run ``fn`` as a host task on this queue (``sycl::host_task``).

        Host tasks interleave with kernel launches in the queue's in-order
        submission log and profiling timeline — the serving layer submits
        whole batched solves this way so every flush appears on its
        device's event log and trace lane. Returns ``(fn(), event)``.
        """
        tracer = current_tracer()
        with tracer.span(
            name, category="host_task", device=self.device.name, **span_args
        ):
            submit = time.perf_counter_ns()
            result = fn()
            end = time.perf_counter_ns()
        event = Event(
            name=name,
            submit_ns=submit,
            start_ns=submit,
            end_ns=end,
            stats=LaunchStats(),
        )
        self.events.append(event)
        return result, event

    def wait(self) -> None:
        """Block until all submitted work completes (no-op: synchronous)."""

    def reset_events(self) -> None:
        """Clear the submission log (keeps long sweeps from accumulating).

        The profiling events of completed launches are plain records; a
        benchmark loop that reuses one queue across thousands of solves
        should drop them once inspected, exactly as a real runtime releases
        ``sycl::event`` objects when their last handle dies.
        """
        self.events.clear()

    @property
    def num_launches(self) -> int:
        """Number of kernels submitted to this queue so far."""
        return len(self.events)
