"""A pure-Python simulator of the SYCL execution model.

This package is the substrate that replaces the Intel oneAPI SYCL runtime
used in the paper (see DESIGN.md, substitution table). It implements the
pieces of the SYCL 2020 execution model that the batched solvers rely on:

* :class:`~repro.sycl.device.SyclDevice` — a device descriptor exposing the
  hierarchy relevant to kernel tuning (compute units a.k.a. Xe-cores,
  supported sub-group sizes, shared local memory capacity, stack count).
* :class:`~repro.sycl.ndrange.NDRange` — the kernel index space
  (global range, work-group local range, sub-group decomposition).
* :class:`~repro.sycl.queue.Queue` — kernel submission with profiling
  events; ``parallel_for`` launches an ND-range kernel.
* :class:`~repro.sycl.executor` — a cooperative, barrier-correct executor.
  Kernels are written as Python generator functions over a
  :class:`~repro.sycl.group.NDItem`; ``yield``-ing a synchronization
  operation (barrier, group/sub-group reduce, broadcast, shuffle) suspends
  the work-item until every member of the scope arrives, exactly mirroring
  the semantics of the corresponding SYCL group functions. Divergent
  barriers — undefined behaviour on real hardware — raise
  :class:`~repro.exceptions.BarrierDivergenceError`.
* Shared local memory — per-work-group scratch arrays allocated at launch,
  with capacity checking against the device's SLM size
  (:class:`~repro.exceptions.LocalMemoryError` on overflow).

The simulator favours semantic fidelity over speed: it is used by the test
suite to validate that the work-item formulation of every solver kernel
computes the same answer as the vectorized production path, and by the
hardware model to account occupancy and SLM usage of real launches.
"""

from repro.sycl.device import SyclDevice, cpu_device, pvc_stack_device
from repro.sycl.ndrange import NDRange, EXECUTION_MODEL_MAP
from repro.sycl.memory import LocalSpec
from repro.sycl.group import NDItem
from repro.sycl.queue import Queue, Event

__all__ = [
    "SyclDevice",
    "cpu_device",
    "pvc_stack_device",
    "NDRange",
    "EXECUTION_MODEL_MAP",
    "LocalSpec",
    "NDItem",
    "Queue",
    "Event",
]
