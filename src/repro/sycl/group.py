"""Work-item view of the execution model: ids, barriers, group functions.

Kernels in the simulator are generator functions receiving an
:class:`NDItem`. Synchronizing operations — barriers and the SYCL group
functions (reduce, broadcast, scans, shuffles, any/all) — are *yielded*;
the executor suspends the work-item until every member of the operation's
scope has arrived, computes the collective result, and resumes each member
with its result::

    def kernel(item, slm, x):
        val = x[item.global_id]
        total = yield item.reduce_over_group(val, "sum")   # like sycl::reduce_over_group
        yield item.barrier()                               # group_barrier
        ...

This mirrors how SYCL kernels are written (Section 3.2 of the paper: dot
and norm use ``reduce`` over the whole work-group — "a primitive function
provided by SYCL" — or over a sub-group for small matrices).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.sycl.ndrange import NDRange

# Scopes for collective operations.
GROUP = "group"
SUB_GROUP = "sub_group"

#: Reduction operators available to group functions.
REDUCE_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "max": max,
    "min": min,
}


@dataclass(frozen=True)
class SyncOp:
    """A synchronization request yielded by a work-item.

    ``kind`` is one of ``barrier``, ``reduce``, ``broadcast``,
    ``inclusive_scan``, ``exclusive_scan``, ``shuffle``, ``any``, ``all``.
    ``scope`` is :data:`GROUP` or :data:`SUB_GROUP`. ``params`` carries
    operation parameters that must match across the scope (e.g. the
    reduction operator); mismatches are barrier divergence.
    """

    kind: str
    scope: str
    value: Any = None
    params: tuple = ()

    def signature(self) -> tuple:
        """The part of the op that must be identical across the scope."""
        return (self.kind, self.scope, self.params)


class NDItem:
    """The per-work-item handle passed to kernels (``sycl::nd_item``)."""

    __slots__ = ("ndrange", "global_id", "group_id", "local_id", "sub_group_id", "lane")

    def __init__(self, ndrange: NDRange, global_id: int) -> None:
        self.ndrange = ndrange
        self.global_id = global_id
        self.group_id = ndrange.group_of(global_id)
        self.local_id = ndrange.local_of(global_id)
        self.sub_group_id, self.lane = ndrange.sub_group_of(global_id)

    # -- geometry queries ---------------------------------------------------

    @property
    def local_range(self) -> int:
        """Work-group size (``get_local_range`` in SYCL)."""
        return self.ndrange.local_size

    @property
    def global_range(self) -> int:
        """Total number of work-items."""
        return self.ndrange.global_size

    @property
    def sub_group_range(self) -> int:
        """Sub-group size."""
        return self.ndrange.sub_group_size

    @property
    def num_sub_groups(self) -> int:
        """Sub-groups per work-group."""
        return self.ndrange.sub_groups_per_group

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NDItem(global={self.global_id}, group={self.group_id}, "
            f"local={self.local_id}, sg={self.sub_group_id}, lane={self.lane})"
        )

    # -- synchronizing operations (to be yielded) ---------------------------

    def barrier(self) -> SyncOp:
        """Work-group barrier with local-memory fence (``group_barrier``)."""
        return SyncOp("barrier", GROUP)

    def sub_group_barrier(self) -> SyncOp:
        """Barrier over the calling work-item's sub-group."""
        return SyncOp("barrier", SUB_GROUP)

    def reduce_over_group(self, value: Any, op: str = "sum") -> SyncOp:
        """Reduce ``value`` across the work-group; every item gets the result."""
        _check_op(op)
        return SyncOp("reduce", GROUP, value, (op,))

    def reduce_over_sub_group(self, value: Any, op: str = "sum") -> SyncOp:
        """Reduce ``value`` across the sub-group; every lane gets the result."""
        _check_op(op)
        return SyncOp("reduce", SUB_GROUP, value, (op,))

    def broadcast_over_group(self, value: Any, src_local_id: int = 0) -> SyncOp:
        """All items receive the ``value`` contributed by ``src_local_id``."""
        return SyncOp("broadcast", GROUP, value, (int(src_local_id),))

    def broadcast_over_sub_group(self, value: Any, src_lane: int = 0) -> SyncOp:
        """All lanes receive the ``value`` contributed by lane ``src_lane``."""
        return SyncOp("broadcast", SUB_GROUP, value, (int(src_lane),))

    def inclusive_scan_over_group(self, value: Any, op: str = "sum") -> SyncOp:
        """Inclusive prefix scan over the work-group in local-id order."""
        _check_op(op)
        return SyncOp("inclusive_scan", GROUP, value, (op,))

    def exclusive_scan_over_group(self, value: Any, op: str = "sum") -> SyncOp:
        """Exclusive prefix scan over the work-group in local-id order."""
        _check_op(op)
        return SyncOp("exclusive_scan", GROUP, value, (op,))

    def shift_sub_group_left(self, value: Any, delta: int = 1) -> SyncOp:
        """Lane ``i`` receives the value of lane ``i + delta``.

        Out-of-range lanes receive their own value (matching the CUDA
        ``__shfl_down_sync`` convention, which the butterfly-reduction
        kernels rely on).
        """
        return SyncOp("shuffle", SUB_GROUP, value, ("down", int(delta)))

    def shift_sub_group_right(self, value: Any, delta: int = 1) -> SyncOp:
        """Lane ``i`` receives the value of lane ``i - delta`` (own if < 0)."""
        return SyncOp("shuffle", SUB_GROUP, value, ("up", int(delta)))

    def permute_sub_group_xor(self, value: Any, mask: int) -> SyncOp:
        """Lane ``i`` receives the value of lane ``i ^ mask``."""
        return SyncOp("shuffle", SUB_GROUP, value, ("xor", int(mask)))

    def any_of_group(self, predicate: bool) -> SyncOp:
        """True on all items iff the predicate is true on any item."""
        return SyncOp("any", GROUP, bool(predicate), ())

    def all_of_group(self, predicate: bool) -> SyncOp:
        """True on all items iff the predicate is true on all items."""
        return SyncOp("all", GROUP, bool(predicate), ())


def _check_op(op: str) -> None:
    if op not in REDUCE_OPS:
        raise ValueError(f"unknown reduction op {op!r}; expected one of {sorted(REDUCE_OPS)}")


# ---------------------------------------------------------------------------
# Collective evaluation (used by the executor once a scope has assembled)
# ---------------------------------------------------------------------------


def evaluate_collective(op_kind: str, params: tuple, lanes: list[int], values: list[Any]) -> list[Any]:
    """Compute per-member results of an assembled collective.

    ``lanes`` are the in-scope positions (local ids for group scope, lane
    ids for sub-group scope) in the same order as ``values``. Returns the
    result to deliver to each member, in the same order.
    """
    n = len(values)
    if op_kind == "barrier":
        return [None] * n
    if op_kind == "reduce":
        fn = REDUCE_OPS[params[0]]
        acc = values[0]
        for v in values[1:]:
            acc = fn(acc, v)
        return [acc] * n
    if op_kind == "broadcast":
        src = params[0]
        try:
            idx = lanes.index(src)
        except ValueError:
            raise ValueError(
                f"broadcast source lane {src} is not a member of the scope {lanes}"
            ) from None
        return [values[idx]] * n
    if op_kind in ("inclusive_scan", "exclusive_scan"):
        fn = REDUCE_OPS[params[0]]
        order = np.argsort(lanes)
        results: list[Any] = [None] * n
        acc = None
        for pos in order:
            v = values[pos]
            if op_kind == "exclusive_scan":
                results[pos] = acc if acc is not None else _identity(params[0], v)
                acc = v if acc is None else fn(acc, v)
            else:
                acc = v if acc is None else fn(acc, v)
                results[pos] = acc
        return results
    if op_kind == "shuffle":
        direction, delta = params
        by_lane = dict(zip(lanes, values))
        results = []
        for lane, own in zip(lanes, values):
            if direction == "down":
                src = lane + delta
            elif direction == "up":
                src = lane - delta
            else:  # xor
                src = lane ^ delta
            results.append(by_lane.get(src, own))
        return results
    if op_kind == "any":
        result = any(values)
        return [result] * n
    if op_kind == "all":
        result = all(values)
        return [result] * n
    raise ValueError(f"unknown collective kind {op_kind!r}")


def _identity(op: str, sample: Any) -> Any:
    """Identity element for a reduction op, typed like ``sample``."""
    if op == "sum":
        return type(sample)(0) if not isinstance(sample, np.generic) else sample.dtype.type(0)
    if op == "prod":
        return type(sample)(1) if not isinstance(sample, np.generic) else sample.dtype.type(1)
    if op == "max":
        return -np.inf
    if op == "min":
        return np.inf
    raise ValueError(f"unknown reduction op {op!r}")
