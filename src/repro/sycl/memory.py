"""Shared local memory specifications and per-work-group allocation.

SYCL kernels request shared local memory (SLM) at launch time via local
accessors. The simulator mirrors this: a launch carries a list of
:class:`LocalSpec` entries; the executor materializes one fresh set of
arrays per work-group and checks the total byte size against the device's
per-compute-unit SLM capacity (Section 3.5 of the paper — SLM is the
scarce resource the solvers budget explicitly).
"""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace

import numpy as np

from repro.exceptions import LocalMemoryError


@dataclass(frozen=True)
class LocalSpec:
    """Declaration of one shared-local-memory array.

    Parameters
    ----------
    name:
        Attribute name under which the kernel sees the array.
    shape:
        Shape of the per-work-group array.
    dtype:
        NumPy dtype of the array (default float64 — the paper evaluates
        FP64 throughout).
    """

    name: str
    shape: tuple[int, ...]
    dtype: np.dtype = np.dtype(np.float64)

    def __post_init__(self) -> None:
        shape = tuple(int(s) for s in self.shape)
        if any(s < 0 for s in shape):
            raise LocalMemoryError(f"local array {self.name!r}: negative shape {shape}")
        object.__setattr__(self, "shape", shape)
        object.__setattr__(self, "dtype", np.dtype(self.dtype))

    @property
    def nbytes(self) -> int:
        """Size of the array in bytes."""
        count = 1
        for s in self.shape:
            count *= s
        return count * self.dtype.itemsize


def total_local_bytes(specs: list[LocalSpec]) -> int:
    """Total SLM footprint of a launch's local accessors."""
    return sum(spec.nbytes for spec in specs)


def check_local_capacity(specs: list[LocalSpec], capacity_bytes: int, device_name: str) -> None:
    """Raise :class:`LocalMemoryError` if the request exceeds the device SLM."""
    requested = total_local_bytes(specs)
    if requested > capacity_bytes:
        detail = ", ".join(f"{s.name}={s.nbytes}B" for s in specs)
        raise LocalMemoryError(
            f"work-group requests {requested} bytes of shared local memory "
            f"({detail}) but device {device_name!r} provides only "
            f"{capacity_bytes} bytes per compute unit"
        )


def allocate_local(specs: list[LocalSpec]) -> SimpleNamespace:
    """Materialize one work-group's SLM arrays (zero-initialized).

    Real SLM is uninitialized; the simulator zero-fills so that kernel bugs
    reading uninitialized SLM are at least deterministic. Tests that want to
    catch such bugs can poison the arrays instead via ``poison_local``.
    """
    ns = SimpleNamespace()
    for spec in specs:
        setattr(ns, spec.name, np.zeros(spec.shape, dtype=spec.dtype))
    return ns


def poison_local(local: SimpleNamespace) -> None:
    """Fill SLM arrays with NaN (floats) / extreme values (ints).

    Mimics uninitialized memory to flush out kernels that read SLM before
    writing it.
    """
    for name, arr in vars(local).items():
        if np.issubdtype(arr.dtype, np.floating):
            arr.fill(np.nan)
        else:
            arr.fill(np.iinfo(arr.dtype).max)
        # re-assign is unnecessary; arrays are mutated in place
        _ = name
