"""The structured event log: typed, schema-versioned, trace-stamped JSONL.

Spans answer *how long*; events answer *what happened*. Every lifecycle
transition a request (or the control plane around it) goes through emits
one :class:`TelemetryEvent` — a typed record stamped with the active
:class:`~repro.observability.context.TraceContext` — into a
bounded-memory :class:`EventLog`:

* **Head sampling** — the mint-time ``sampled`` decision on the request's
  trace context drops routine events at the source, so a service running
  at ``telemetry_sample_rate=0`` pays one branch per would-be event.
* **Tail retention** — *critical* events (errors, timeouts, fallbacks,
  sanitizer trips, p99-tail completions) bypass head sampling **and** are
  pinned in a second ring, so the interesting 1% survives even when the
  routine ring has long since wrapped.
* **Bounded memory** — both rings are ``deque(maxlen=capacity)``; a
  service that runs for a week holds the same memory as one that ran for
  a minute.

Export is JSONL with an explicit ``schema_version`` so downstream
consumers can evolve with the format.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Iterable

from repro.observability.context import TraceContext, current_trace_context
from repro.recorder.recorder import current_recorder

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_TYPES",
    "TelemetryEvent",
    "EventLog",
    "current_event_log",
    "set_event_log",
    "use_event_log",
    "emit_event",
    "REQUEST_ADMITTED",
    "REQUEST_REJECTED",
    "REQUEST_FLUSHED",
    "REQUEST_SOLVED",
    "REQUEST_FALLBACK",
    "REQUEST_FAILED",
    "REQUEST_TIMED_OUT",
    "SANITIZER_TRIP",
    "PLAN_CACHE_INVALIDATED",
    "TUNING_GENERATION_BUMP",
    "SLO_ALERT",
    "FLEET_REBALANCE",
    "REQUEST_REROUTED",
    "CHAOS_INJECTED",
    "QUOTA_REJECTED",
    "BREAKER_OPEN",
    "BREAKER_CLOSE",
]

#: Version stamped on every exported record; bump on incompatible change.
SCHEMA_VERSION = 1

# -- the event vocabulary (one constant per lifecycle transition) -----------

REQUEST_ADMITTED = "request.admitted"
REQUEST_REJECTED = "request.rejected"
REQUEST_FLUSHED = "request.flushed"
REQUEST_SOLVED = "request.solved"
REQUEST_FALLBACK = "request.fallback"
REQUEST_FAILED = "request.failed"
REQUEST_TIMED_OUT = "request.timed_out"
SANITIZER_TRIP = "sanitizer.trip"
PLAN_CACHE_INVALIDATED = "plan_cache.invalidated"
TUNING_GENERATION_BUMP = "tuning.generation_bump"
SLO_ALERT = "slo.alert"
FLEET_REBALANCE = "fleet.rebalance"
REQUEST_REROUTED = "request.rerouted"
CHAOS_INJECTED = "chaos.injected"
QUOTA_REJECTED = "quota.rejected"
BREAKER_OPEN = "breaker.open"
BREAKER_CLOSE = "breaker.close"

#: Every event type the schema admits; :meth:`EventLog.emit` rejects others.
EVENT_TYPES = frozenset(
    {
        REQUEST_ADMITTED,
        REQUEST_REJECTED,
        REQUEST_FLUSHED,
        REQUEST_SOLVED,
        REQUEST_FALLBACK,
        REQUEST_FAILED,
        REQUEST_TIMED_OUT,
        SANITIZER_TRIP,
        PLAN_CACHE_INVALIDATED,
        TUNING_GENERATION_BUMP,
        SLO_ALERT,
        FLEET_REBALANCE,
        REQUEST_REROUTED,
        CHAOS_INJECTED,
        QUOTA_REJECTED,
        BREAKER_OPEN,
        BREAKER_CLOSE,
    }
)

#: Sampling verdicts recorded on kept events.
KEEP_HEAD = "head"  # kept because the request's head decision sampled it
KEEP_TAIL = "tail"  # kept despite head sampling because it is critical


class TelemetryEvent:
    """One structured log record (immutable once emitted)."""

    __slots__ = ("type", "ts_ns", "trace_id", "span_id", "request_id", "keep", "fields")

    def __init__(
        self,
        type: str,
        ts_ns: int,
        trace_id: str | None,
        span_id: str | None,
        request_id: str | None,
        keep: str,
        fields: dict,
    ) -> None:
        self.type = type
        self.ts_ns = ts_ns
        self.trace_id = trace_id
        self.span_id = span_id
        self.request_id = request_id
        self.keep = keep
        self.fields = fields

    def to_record(self) -> dict:
        """The JSONL wire form (envelope + free-form ``fields``)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "type": self.type,
            "ts_ns": self.ts_ns,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "request_id": self.request_id,
            "keep": self.keep,
            "fields": self.fields,
        }

    def __repr__(self) -> str:
        who = self.request_id or self.trace_id or "-"
        return f"TelemetryEvent({self.type}, {who}, keep={self.keep})"


class EventLog:
    """Bounded-memory structured event log with head + tail sampling.

    Parameters
    ----------
    capacity:
        Ring size for routine events *and* for the pinned critical ring.
    clock:
        Nanosecond timestamp source (injectable for deterministic tests);
        defaults to the tracer's monotonic ``time.perf_counter_ns``.
    """

    def __init__(self, capacity: int = 2048, clock=time.perf_counter_ns) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._clock = clock
        self._ring: deque[TelemetryEvent] = deque(maxlen=capacity)
        self._pinned: deque[TelemetryEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.emitted = 0  # events accepted into the log
        self.dropped_head = 0  # events dropped by the head-sampling decision
        #: explicit flight-recorder tap target; ``None`` falls back to the
        #: ambient recorder. A fleet shard's private log points here so its
        #: events land in that shard's black box, not the fleet-wide one.
        self.recorder = None

    # -- emission -------------------------------------------------------------

    def emit(
        self,
        type: str,
        ctx: TraceContext | None = None,
        critical: bool = False,
        **fields: Any,
    ) -> TelemetryEvent | None:
        """Record one event; returns it, or ``None`` when head-sampled away.

        ``ctx`` stamps trace/request identity (falls back to the ambient
        :func:`current_trace_context`). ``critical`` marks errors,
        fallbacks and tail latencies: critical events ignore the head
        decision and are pinned so ring wrap-around cannot evict them.
        """
        if type not in EVENT_TYPES:
            raise ValueError(f"unknown event type {type!r}; known: {sorted(EVENT_TYPES)}")
        if ctx is None:
            ctx = current_trace_context()
        sampled = ctx.sampled if ctx is not None else True
        if not sampled and not critical:
            with self._lock:
                self.dropped_head += 1
            return None
        event = TelemetryEvent(
            type=type,
            ts_ns=self._clock(),
            trace_id=ctx.trace_id if ctx is not None else None,
            span_id=ctx.span_id if ctx is not None else None,
            request_id=(ctx.request_id or None) if ctx is not None else None,
            keep=KEEP_TAIL if (critical and not sampled) else KEEP_HEAD,
            fields=fields,
        )
        with self._lock:
            self.emitted += 1
            self._ring.append(event)
            if critical:
                self._pinned.append(event)
        # black-box tap: the flight recorder (this log's own if set, else
        # the ambient one) rings every retained event, so a later trigger
        # dump carries the recent event stream
        recorder = self.recorder if self.recorder is not None else current_recorder()
        if recorder is not None:
            recorder.record_event(event.to_record())
        return event

    # -- export ---------------------------------------------------------------

    def events(self) -> list[TelemetryEvent]:
        """Every retained event, time-ordered, pinned criticals included."""
        with self._lock:
            merged = {id(ev): ev for ev in self._pinned}
            merged.update((id(ev), ev) for ev in self._ring)
        return sorted(merged.values(), key=lambda ev: ev.ts_ns)

    def records(self) -> list[dict]:
        """The JSONL wire form of :meth:`events`."""
        return [ev.to_record() for ev in self.events()]

    def records_for(self, trace_id: str) -> list[dict]:
        """Retained records attributed to one trace."""
        return [rec for rec in self.records() if rec["trace_id"] == trace_id]

    def write_jsonl(self, path: str | Path) -> Path:
        """Write every retained record to ``path`` (one JSON object per line)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            for record in self.records():
                fh.write(json.dumps(record) + "\n")
        return path

    def summary(self) -> dict[str, int]:
        """Retention accounting (for dashboards and overhead benchmarks)."""
        with self._lock:
            return {
                "emitted": self.emitted,
                "dropped_head": self.dropped_head,
                "retained": len({id(e) for e in self._ring}
                                | {id(e) for e in self._pinned}),
                "pinned": len(self._pinned),
            }

    def __len__(self) -> int:
        return len(self.events())

    def __iter__(self) -> Iterable[TelemetryEvent]:
        return iter(self.events())


# -- ambient installation (mirrors tracer.set_tracer/use_tracer) -------------

_install_lock = threading.Lock()
_installed: EventLog | None = None


def current_event_log() -> EventLog | None:
    """The installed event log, or ``None`` when structured logging is off."""
    return _installed


def set_event_log(log: EventLog | None) -> EventLog | None:
    """Install ``log`` process-wide; returns the previously installed one."""
    global _installed
    with _install_lock:
        previous = _installed
        _installed = log
    return previous


class use_event_log:
    """Install an event log for a ``with`` scope, restoring the previous one."""

    __slots__ = ("log", "_previous", "_installed_here")

    def __init__(self, log: EventLog | None) -> None:
        self.log = log
        self._previous: EventLog | None = None
        self._installed_here = False

    def __enter__(self) -> EventLog | None:
        if self.log is None:  # "no change" scope, like use_tracer(None)
            return current_event_log()
        self._previous = set_event_log(self.log)
        self._installed_here = True
        return self.log

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._installed_here:
            set_event_log(self._previous)


def emit_event(
    type: str,
    ctx: TraceContext | None = None,
    critical: bool = False,
    **fields: Any,
) -> TelemetryEvent | None:
    """Emit into the installed log, if any (the library-code entry point).

    Deep layers (sanitizer, tuning database) call this so they cost one
    global read when no event log is installed.
    """
    log = _installed
    if log is None:
        return None
    return log.emit(type, ctx=ctx, critical=critical, **fields)
