"""repro.telemetry — request-scoped tracing, structured events, and SLOs.

The layer above :mod:`repro.observability`: where that package records
*what the process did* (spans, counters, histograms), this one attributes
behaviour to *individual requests* and judges it against *objectives*:

* :mod:`repro.observability.context` (re-exported here) — the
  :class:`TraceContext` minted per :class:`~repro.serve.request.
  SolveRequest` and propagated ambiently via ``contextvars`` through the
  micro-batcher, worker pool, kernel launches and distributed rank lanes;
  batch fan-in is recorded as span links.
* :mod:`repro.telemetry.events` — the typed, schema-versioned structured
  event log with head/tail sampling and bounded-memory rings.
* :mod:`repro.telemetry.slo` — declarative SLO specs over the PR-5
  instruments, evaluated with Google-SRE multi-window burn-rate alerts.
* :mod:`repro.telemetry.dashboard` — the ``python -m repro top`` frame
  renderer.
* :mod:`repro.telemetry.hub` — the process-wide collection point behind
  the ``python -m repro slo <command>`` wrapper.

Quickstart::

    from repro.serve import ServeConfig, SolverService, SolveRequest
    from repro.telemetry import SloMonitor, default_slos

    with SolverService(ServeConfig()) as service:
        monitor = SloMonitor(service.metrics, default_slos())
        ticket = service.submit(SolveRequest(a, b))
        outcome = ticket.result(timeout=5.0)
        print(outcome.trace_id, outcome.request_id)   # request attribution
        for status in monitor.evaluate():
            print(status.spec.name, status.good_fraction, status.burning)
"""

from repro.observability.context import (
    TraceContext,
    current_trace_context,
    mint_context,
    new_request_id,
    new_span_id,
    new_trace_id,
    set_trace_context,
    use_trace_context,
)
from repro.telemetry.dashboard import dashboard_text, sparkline
from repro.telemetry.events import (
    EVENT_TYPES,
    PLAN_CACHE_INVALIDATED,
    REQUEST_ADMITTED,
    REQUEST_FAILED,
    REQUEST_FALLBACK,
    REQUEST_FLUSHED,
    REQUEST_REJECTED,
    REQUEST_SOLVED,
    REQUEST_TIMED_OUT,
    SANITIZER_TRIP,
    SCHEMA_VERSION,
    SLO_ALERT,
    TUNING_GENERATION_BUMP,
    EventLog,
    TelemetryEvent,
    current_event_log,
    emit_event,
    set_event_log,
    use_event_log,
)
from repro.telemetry.hub import TelemetryHub, current_hub, set_hub, use_hub
from repro.telemetry.slo import (
    DEFAULT_WINDOWS,
    BurnAlert,
    BurnWindow,
    SloMonitor,
    SloSpec,
    SloStatus,
    counts_from_prometheus,
    counts_from_registry,
    default_slos,
    dump_slos,
    latency_slo,
    load_slos,
    ratio_slo,
)

__all__ = [
    "BurnAlert",
    "BurnWindow",
    "DEFAULT_WINDOWS",
    "EVENT_TYPES",
    "EventLog",
    "PLAN_CACHE_INVALIDATED",
    "REQUEST_ADMITTED",
    "REQUEST_FAILED",
    "REQUEST_FALLBACK",
    "REQUEST_FLUSHED",
    "REQUEST_REJECTED",
    "REQUEST_SOLVED",
    "REQUEST_TIMED_OUT",
    "SANITIZER_TRIP",
    "SCHEMA_VERSION",
    "SLO_ALERT",
    "TUNING_GENERATION_BUMP",
    "SloMonitor",
    "SloSpec",
    "SloStatus",
    "TelemetryEvent",
    "TelemetryHub",
    "TraceContext",
    "counts_from_prometheus",
    "counts_from_registry",
    "current_event_log",
    "current_hub",
    "current_trace_context",
    "dashboard_text",
    "default_slos",
    "dump_slos",
    "emit_event",
    "latency_slo",
    "load_slos",
    "mint_context",
    "new_request_id",
    "new_span_id",
    "new_trace_id",
    "ratio_slo",
    "set_event_log",
    "set_hub",
    "set_trace_context",
    "sparkline",
    "use_event_log",
    "use_hub",
    "use_trace_context",
]
