"""Declarative SLOs evaluated over the metrics registry, SRE-style.

An :class:`SloSpec` declares an objective as a *good-fraction* target over
a bad/total event pair derived from PR-5 instruments:

* ``kind="latency"`` — good events are requests under ``threshold_ms``,
  counted from the cumulative buckets of a
  :class:`~repro.observability.metrics.LogHistogram` (the same buckets the
  Prometheus exposition renders, so the monitor and an external scraper
  read one source of truth).
* ``kind="ratio"`` — bad events are one or more counters (fallbacks,
  failures) against a total counter (served, accepted).

:class:`SloMonitor` samples the cumulative (bad, total) pairs over time
and evaluates **multi-window burn-rate alerts** (Google SRE workbook,
chapter 5): an alert fires only when both a short and a long window burn
error budget faster than the window's threshold —

    ``burn_rate = bad_fraction / error_budget``

with the canonical pairs: *fast* 5 m/1 h at 14.4× (a 30-day budget gone
in two days) and *slow* 30 m/6 h at 6× (gone in five days). The short
window makes the alert reset quickly once the regression stops; the long
window keeps one noisy minute from paging. The monitor's clock is
injectable so tests and ``repro slo check`` drive synthetic multi-hour
timelines in milliseconds.
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import dataclass, field
from collections import deque
from pathlib import Path
from typing import Callable

from repro.observability.metrics import MetricsRegistry
from repro.observability.prometheus import sanitize_name

__all__ = [
    "BurnWindow",
    "DEFAULT_WINDOWS",
    "SloSpec",
    "BurnAlert",
    "SloStatus",
    "SloMonitor",
    "latency_slo",
    "ratio_slo",
    "default_slos",
    "load_slos",
    "dump_slos",
    "counts_from_registry",
    "counts_from_prometheus",
]


@dataclass(frozen=True)
class BurnWindow:
    """One multi-window alert rule: short + long lookback and a threshold."""

    name: str
    short_s: float
    long_s: float
    threshold: float

    def __post_init__(self) -> None:
        if self.short_s <= 0 or self.long_s <= 0:
            raise ValueError(f"window durations must be positive: {self}")
        if self.short_s > self.long_s:
            raise ValueError(f"short window must not exceed long window: {self}")
        if self.threshold <= 0:
            raise ValueError(f"burn threshold must be positive: {self}")

    def to_dict(self) -> dict:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "short_s": self.short_s,
            "long_s": self.long_s,
            "threshold": self.threshold,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BurnWindow":
        return cls(
            name=data["name"],
            short_s=float(data["short_s"]),
            long_s=float(data["long_s"]),
            threshold=float(data["threshold"]),
        )


#: The SRE-workbook pairs: page on fast burn, ticket on slow burn.
DEFAULT_WINDOWS = (
    BurnWindow("fast", short_s=300.0, long_s=3600.0, threshold=14.4),
    BurnWindow("slow", short_s=1800.0, long_s=21600.0, threshold=6.0),
)

#: Supported spec kinds.
KINDS = ("latency", "ratio")


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective over registry instruments."""

    name: str
    objective: float  # target good fraction, e.g. 0.99
    kind: str  # "latency" | "ratio"
    histogram: str | None = None  # latency: LogHistogram instrument name
    threshold_ms: float | None = None  # latency: the good/bad boundary
    bad: tuple[str, ...] = ()  # ratio: counter names counting bad events
    total: str | None = None  # ratio: counter name counting all events
    windows: tuple[BurnWindow, ...] = DEFAULT_WINDOWS

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective} for {self.name!r}"
            )
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")
        if self.kind == "latency":
            if not self.histogram or self.threshold_ms is None or self.threshold_ms <= 0:
                raise ValueError(
                    f"latency SLO {self.name!r} needs a histogram name and a "
                    f"positive threshold_ms"
                )
        else:
            if not self.bad or not self.total:
                raise ValueError(
                    f"ratio SLO {self.name!r} needs bad counter name(s) and a total"
                )
        if not self.windows:
            raise ValueError(f"SLO {self.name!r} needs at least one burn window")

    @property
    def error_budget(self) -> float:
        """The tolerated bad fraction (1 − objective)."""
        return 1.0 - self.objective

    def to_dict(self) -> dict:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        data: dict = {
            "name": self.name,
            "objective": self.objective,
            "kind": self.kind,
            "windows": [w.to_dict() for w in self.windows],
        }
        if self.kind == "latency":
            data["histogram"] = self.histogram
            data["threshold_ms"] = self.threshold_ms
        else:
            data["bad"] = list(self.bad)
            data["total"] = self.total
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SloSpec":
        windows = tuple(
            BurnWindow.from_dict(w) for w in data.get("windows", [])
        ) or DEFAULT_WINDOWS
        return cls(
            name=data["name"],
            objective=float(data["objective"]),
            kind=data["kind"],
            histogram=data.get("histogram"),
            threshold_ms=(
                float(data["threshold_ms"]) if data.get("threshold_ms") is not None else None
            ),
            bad=tuple(data.get("bad", ())),
            total=data.get("total"),
            windows=windows,
        )


def latency_slo(
    name: str,
    histogram: str,
    threshold_ms: float,
    objective: float = 0.99,
    windows: tuple[BurnWindow, ...] = DEFAULT_WINDOWS,
) -> SloSpec:
    """Shorthand: ``objective`` of requests complete under ``threshold_ms``."""
    return SloSpec(
        name=name,
        objective=objective,
        kind="latency",
        histogram=histogram,
        threshold_ms=threshold_ms,
        windows=windows,
    )


def ratio_slo(
    name: str,
    bad: tuple[str, ...],
    total: str,
    objective: float,
    windows: tuple[BurnWindow, ...] = DEFAULT_WINDOWS,
) -> SloSpec:
    """Shorthand: at most ``1 - objective`` of ``total`` events are ``bad``."""
    return SloSpec(
        name=name, objective=objective, kind="ratio", bad=bad, total=total, windows=windows
    )


def default_slos(latency_threshold_ms: float = 500.0) -> tuple[SloSpec, ...]:
    """The serving layer's stock objectives over its PR-5 instruments."""
    return (
        latency_slo(
            "latency_p99",
            histogram="serve.latency_hdr_ms",
            threshold_ms=latency_threshold_ms,
            objective=0.99,
        ),
        ratio_slo(
            "fallback_rate", bad=("serve.fallbacks",), total="serve.served", objective=0.95
        ),
        ratio_slo(
            "error_rate", bad=("serve.failed",), total="serve.accepted", objective=0.99
        ),
    )


def load_slos(path: str | Path) -> tuple[SloSpec, ...]:
    """Read SLO specs from a JSON file (``{"slos": [spec, ...]}``)."""
    payload = json.loads(Path(path).read_text())
    specs = payload["slos"] if isinstance(payload, dict) else payload
    return tuple(SloSpec.from_dict(spec) for spec in specs)


def dump_slos(specs: tuple[SloSpec, ...] | list[SloSpec], path: str | Path) -> Path:
    """Write specs as the JSON form :func:`load_slos` reads."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"slos": [s.to_dict() for s in specs]}, indent=2) + "\n")
    return path


# -- cumulative (bad, total) extraction --------------------------------------


def counts_from_registry(spec: SloSpec, registry: MetricsRegistry) -> tuple[float, float]:
    """Cumulative ``(bad, total)`` event counts for ``spec`` right now.

    Latency counts come from the LogHistogram's cumulative bucket bounds —
    the largest bucket boundary at or under ``threshold_ms`` — so the SLO
    sees exactly the resolution the Prometheus ``_bucket`` samples expose.
    """
    if spec.kind == "latency":
        hist = registry.log_histogram(spec.histogram)
        total = float(hist.count)
        good = 0.0
        for bound, cumulative in hist.bucket_bounds():
            if bound <= spec.threshold_ms:
                good = float(cumulative)
            else:
                break
        return total - good, total
    bad = sum(float(registry.counter(name).value) for name in spec.bad)
    total = float(registry.counter(spec.total).value)
    return bad, total


_PROM_SAMPLE = re.compile(
    r"^(?P<family>[a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$"
)
_LE_LABEL = re.compile(r'le="(?P<le>[^"]+)"')


def counts_from_prometheus(spec: SloSpec, text: str) -> tuple[float, float]:
    """Cumulative ``(bad, total)`` from a Prometheus text-format scrape body.

    The offline twin of :func:`counts_from_registry`: ``repro slo report
    --metrics-in`` evaluates a dumped exposition exactly as an external
    scraper would, so both consumers read the same wire format.
    """
    samples: list[tuple[str, str, float]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _PROM_SAMPLE.match(line)
        if not match:
            continue
        try:
            value = float(match.group("value"))
        except ValueError:
            continue
        samples.append((match.group("family"), match.group("labels") or "", value))

    def family_sum(family: str) -> float:
        return sum(v for f, _l, v in samples if f == family)

    if spec.kind == "latency":
        family = sanitize_name(spec.histogram)
        total = family_sum(f"{family}_count")
        good = 0.0
        bucket_family = f"{family}_bucket"
        for f, labels, value in samples:
            if f != bucket_family:
                continue
            le_match = _LE_LABEL.search(labels)
            if le_match is None or le_match.group("le") == "+Inf":
                continue
            bound = float(le_match.group("le"))
            if bound <= spec.threshold_ms:
                good = max(good, value)
        return total - good, total
    bad = sum(family_sum(sanitize_name(name)) for name in spec.bad)
    total = family_sum(sanitize_name(spec.total))
    return bad, total


# -- evaluation ---------------------------------------------------------------


@dataclass
class BurnAlert:
    """One multi-window rule's verdict at evaluation time."""

    window: BurnWindow
    short_burn: float | None  # None = no traffic / not enough samples
    long_burn: float | None
    firing: bool


@dataclass
class SloStatus:
    """One spec's verdict: overall compliance plus burn alerts."""

    spec: SloSpec
    bad: float
    total: float
    alerts: list[BurnAlert] = field(default_factory=list)

    @property
    def good_fraction(self) -> float:
        """Overall good fraction since the process started (1.0 when idle)."""
        if self.total <= 0:
            return 1.0
        return 1.0 - self.bad / self.total

    @property
    def compliant(self) -> bool:
        """Overall objective met (ignores windows; the long-run view)."""
        return self.good_fraction >= self.spec.objective

    @property
    def budget_consumed(self) -> float:
        """Fraction of the error budget spent overall (1.0 = exhausted)."""
        if self.total <= 0:
            return 0.0
        return (self.bad / self.total) / self.spec.error_budget

    @property
    def burning(self) -> bool:
        """True when any multi-window alert is firing."""
        return any(alert.firing for alert in self.alerts)


class SloMonitor:
    """Samples cumulative SLO counts and evaluates burn-rate alerts.

    Parameters
    ----------
    registry:
        The metrics registry the specs read (a live service's registry).
    specs:
        Objectives to track; defaults to :func:`default_slos`.
    clock:
        Seconds clock (injectable: tests and ``slo check`` feed a
        synthetic timeline). Defaults to ``time.monotonic``.
    max_samples:
        Ring bound on retained samples (bounded memory, like the event
        log).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        specs: tuple[SloSpec, ...] | list[SloSpec] | None = None,
        clock: Callable[[], float] = time.monotonic,
        max_samples: int = 4096,
    ) -> None:
        self.registry = registry
        self.specs = tuple(specs) if specs is not None else default_slos()
        self._clock = clock
        self._samples: deque[tuple[float, dict[str, tuple[float, float]]]] = deque(
            maxlen=max_samples
        )

    # -- sampling -------------------------------------------------------------

    def sample(self, now: float | None = None) -> None:
        """Record the cumulative (bad, total) of every spec at ``now``."""
        t = self._clock() if now is None else now
        counts = {
            spec.name: counts_from_registry(spec, self.registry) for spec in self.specs
        }
        self._samples.append((t, counts))

    @property
    def num_samples(self) -> int:
        return len(self._samples)

    # -- burn math ------------------------------------------------------------

    def _window_burn(self, spec: SloSpec, window_s: float, now: float) -> float | None:
        """Burn rate over the trailing ``window_s`` seconds, or ``None``.

        ``None`` means "cannot tell": fewer than two samples, or no
        traffic inside the window. When history is shorter than the
        window, the earliest sample stands in for the window edge — the
        standard cold-start behaviour (a service ten minutes old can
        still page on its 1-hour window).
        """
        if len(self._samples) < 2:
            return None
        edge_t = now - window_s
        edge = None
        for t, counts in self._samples:
            if t <= edge_t:
                edge = (t, counts)
            else:
                break
        if edge is None:
            edge = self._samples[0]
        latest = self._samples[-1]
        if latest[0] <= edge[0]:
            return None
        bad0, total0 = edge[1][spec.name]
        bad1, total1 = latest[1][spec.name]
        delta_total = total1 - total0
        if delta_total <= 0:
            return None
        bad_fraction = max(0.0, bad1 - bad0) / delta_total
        return bad_fraction / spec.error_budget

    # -- verdicts -------------------------------------------------------------

    def evaluate(self, now: float | None = None) -> list[SloStatus]:
        """Take a fresh sample and return every spec's status."""
        t = self._clock() if now is None else now
        self.sample(t)
        statuses = []
        for spec in self.specs:
            bad, total = self._samples[-1][1][spec.name]
            status = SloStatus(spec=spec, bad=bad, total=total)
            for window in spec.windows:
                short = self._window_burn(spec, window.short_s, t)
                long = self._window_burn(spec, window.long_s, t)
                firing = (
                    short is not None
                    and long is not None
                    and short > window.threshold
                    and long > window.threshold
                )
                status.alerts.append(
                    BurnAlert(window=window, short_burn=short, long_burn=long, firing=firing)
                )
            statuses.append(status)
        if any(status.burning for status in statuses):
            # black-box trigger: a burning SLO snapshots the flight
            # recorder (the recorder itself rate-limits repeat dumps)
            from repro.recorder.recorder import TRIGGER_SLO_BURN, current_recorder

            recorder = current_recorder()
            if recorder is not None:
                burning = [s.spec.name for s in statuses if s.burning]
                recorder.trigger(TRIGGER_SLO_BURN, slos=burning)
        return statuses

    @property
    def burning(self) -> bool:
        """True when the latest evaluation would fire any alert."""
        return any(status.burning for status in self.evaluate())

    # -- reporting ------------------------------------------------------------

    def report_rows(self, statuses: list[SloStatus] | None = None) -> list[dict]:
        """Table rows for :func:`repro.bench.report.format_table`."""
        if statuses is None:
            statuses = self.evaluate()
        rows = []
        for status in statuses:
            worst = None
            for alert in status.alerts:
                burns = [b for b in (alert.short_burn, alert.long_burn) if b is not None]
                if burns:
                    candidate = min(burns)  # the pair fires on its weaker leg
                    if worst is None or candidate > worst:
                        worst = candidate
            rows.append(
                {
                    "slo": status.spec.name,
                    "objective": f"{status.spec.objective:.3f}",
                    "good": f"{status.good_fraction:.4f}",
                    "events": int(status.total),
                    "budget_used": f"{status.budget_consumed:.2f}x",
                    "max_burn": "-" if worst is None else f"{worst:.1f}x",
                    "state": "BURNING" if status.burning else (
                        "OK" if status.compliant else "VIOLATED"
                    ),
                }
            )
        return rows
