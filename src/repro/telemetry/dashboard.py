"""The live text dashboard behind ``python -m repro top``.

One frame is a plain-text rendering of the process's observability state:
gauges, counters, HDR latency percentiles (with a log-bucket sparkline),
per-phase kernel counters from an installed
:class:`~repro.profile.profiler.Profiler`, active SLO burn state from an
:class:`~repro.telemetry.slo.SloMonitor`, and the tail of the structured
event log. Everything renders through :func:`repro.bench.report.
format_table`, so the dashboard, the trace summary and the bench reports
share one look.

The renderer is a pure function of its inputs — the CLI loop just prints
frames — so tests assert on frame content without a terminal.
"""

from __future__ import annotations

import re
import time

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    LogHistogram,
    MetricsRegistry,
)
from repro.telemetry.events import EventLog
from repro.telemetry.slo import SloMonitor

__all__ = ["dashboard_text", "sparkline"]

_SPARK_CHARS = " .:-=+*#%@"


def sparkline(counts: list[int], width: int = 24) -> str:
    """A fixed-width character strip of a bucket-count distribution."""
    if not counts:
        return " " * width
    # resample onto `width` cells (merge neighbours when there are more
    # buckets than cells, repeat when fewer)
    cells = []
    for i in range(width):
        lo = i * len(counts) // width
        hi = max(lo + 1, (i + 1) * len(counts) // width)
        cells.append(sum(counts[lo:hi]))
    peak = max(cells)
    if peak <= 0:
        return " " * width
    top = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[min(top, (c * top + peak - 1) // peak)] for c in cells
    )


_TENANT_METRIC = re.compile(r'^serve\.(tenant_pending|quota_rejected)\{tenant="(.*)"\}$')


def _breaker_rows(registry: MetricsRegistry) -> list[dict]:
    """One row per breaker-bearing scope (local service + fleet rollup)."""
    rows = []
    if "serve.breaker_state" in registry:
        state = registry.gauge("serve.breaker_state").value
        rows.append(
            {
                "breaker": "serve",
                "state": "open" if state == 1 else "closed",
                "opens": int(registry.counter("serve.breaker_opens").value)
                if "serve.breaker_opens" in registry
                else 0,
                "closes": int(registry.counter("serve.breaker_closes").value)
                if "serve.breaker_closes" in registry
                else 0,
                "fast_fails": int(registry.counter("serve.breaker_fast_fails").value)
                if "serve.breaker_fast_fails" in registry
                else 0,
            }
        )
    if "fleet.breakers_open" in registry:
        open_count = registry.gauge("fleet.breakers_open").value
        if open_count == open_count:  # skip never-set NaN gauge
            rows.append(
                {
                    "breaker": "fleet",
                    "state": f"{int(open_count)} open",
                    "opens": "-",
                    "closes": "-",
                    "fast_fails": "-",
                }
            )
    return rows


def _tenant_rows(registry: MetricsRegistry) -> list[dict]:
    """Per-tenant QoS rows parsed from the labeled serve instruments."""
    tenants: dict[str, dict] = {}
    for metric in registry.instruments():
        match = _TENANT_METRIC.match(metric.name)
        if match is None:
            continue
        kind, tenant = match.groups()
        row = tenants.setdefault(tenant, {"tenant": tenant, "pending": 0, "rejected": 0})
        if kind == "tenant_pending":
            row["pending"] = int(metric.value) if metric.value == metric.value else 0
        else:
            row["rejected"] = int(metric.value)
    return [tenants[name] for name in sorted(tenants)]


def _bucket_counts(hist: LogHistogram) -> list[int]:
    """Per-bucket (non-cumulative) counts from the cumulative bounds."""
    counts = []
    previous = 0
    for _bound, cumulative in hist.bucket_bounds():
        counts.append(cumulative - previous)
        previous = cumulative
    return counts


def dashboard_text(
    registry: MetricsRegistry,
    monitor: SloMonitor | None = None,
    events: EventLog | None = None,
    profiler=None,
    fleet=None,
    title: str = "repro top",
    clock=time.time,
) -> str:
    """Render one dashboard frame from the live registry (pure function).

    ``fleet`` is duck-typed (anything with ``shard_stats()`` and
    ``ring_occupancy()``, i.e. a :class:`repro.fleet.FleetService`) so
    the telemetry layer never imports the fleet package.
    """
    # deferred: repro.bench pulls the hardware/device stack in, and the
    # sanitizer (imported by the executor) needs repro.telemetry importable
    # without that cycle
    from repro.bench.report import format_table

    parts: list[str] = []
    stamp = time.strftime("%H:%M:%S", time.localtime(clock()))
    parts.append(f"== {title} — {stamp} — {len(registry)} instruments ==")

    gauges = [m for m in registry.instruments() if isinstance(m, Gauge)]
    if gauges:
        rows = [{"gauge": g.name, "value": f"{g.value:g}"} for g in gauges
                if g.value == g.value]  # skip NaN (never-set) gauges
        if rows:
            parts.append("")
            parts.append(format_table(rows, "gauges"))

    counters = [m for m in registry.instruments() if isinstance(m, Counter)]
    if counters:
        parts.append("")
        parts.append(
            format_table(
                [{"counter": c.name, "value": int(c.value)} for c in counters],
                "counters",
            )
        )

    breaker_rows = _breaker_rows(registry)
    if breaker_rows:
        parts.append("")
        parts.append(format_table(breaker_rows, "circuit breakers"))

    tenant_rows = _tenant_rows(registry)
    if tenant_rows:
        parts.append("")
        parts.append(format_table(tenant_rows, "tenant quotas"))

    hists = [
        m for m in registry.instruments() if isinstance(m, (Histogram, LogHistogram))
    ]
    if hists:
        rows = []
        for h in hists:
            summary = h.summary()
            row = {
                "histogram": h.name,
                "count": summary["count"],
                "p50": f"{summary['p50']:.3g}",
                "p90": f"{summary['p90']:.3g}",
                "p99": f"{summary['p99']:.3g}",
                "max": f"{summary['max']:.3g}",
            }
            if isinstance(h, LogHistogram):
                row["distribution"] = sparkline(_bucket_counts(h))
                exemplar = h.exemplar_for(99)
                row["p99_exemplar"] = (
                    (exemplar[0] or "-")[:10] if exemplar is not None else "-"
                )
            else:
                row["distribution"] = ""
                row["p99_exemplar"] = "-"
            rows.append(row)
        parts.append("")
        parts.append(format_table(rows, "latency / distributions"))

    if profiler is not None and profiler.kernel_names():
        rows = []
        for name in profiler.kernel_names():
            profile = profiler.profile_for(name)
            for phase, counters_ in profile.sorted_phases():
                rows.append(
                    {
                        "kernel": name,
                        "phase": phase,
                        "flops": counters_.flops,
                        "global_B": counters_.global_bytes,
                        "slm_B": counters_.slm_bytes,
                        "barriers": counters_.barriers,
                    }
                )
        if rows:
            parts.append("")
            parts.append(format_table(rows, "per-phase kernel counters"))

    if fleet is not None:
        rows = [
            {
                "shard": row["shard"],
                "state": row["state"],
                "pending": row["pending"],
                "served": row["served"],
                "rejected": row["rejected"],
                "flushes": row["flushes"],
                "p99_ms": f"{row['p99_ms']:.3g}" if row["p99_ms"] == row["p99_ms"] else "-",
            }
            for row in fleet.shard_stats()
        ]
        if rows:
            parts.append("")
            parts.append(format_table(rows, "fleet shards"))
        occupancy = fleet.ring_occupancy()
        if occupancy:
            parts.append("")
            parts.append(
                "ring occupancy: "
                + ", ".join(
                    f"{shard} {share:.1%}" for shard, share in sorted(occupancy.items())
                )
            )

    if monitor is not None:
        statuses = monitor.evaluate()
        parts.append("")
        parts.append(format_table(monitor.report_rows(statuses), "slo burn state"))

    if events is not None:
        tail = events.events()[-8:]
        if tail:
            rows = [
                {
                    "event": ev.type,
                    "request": ev.request_id or "-",
                    "keep": ev.keep,
                    "detail": ", ".join(
                        f"{k}={v}" for k, v in sorted(ev.fields.items())
                    )[:48] or "-",
                }
                for ev in tail
            ]
            parts.append("")
            parts.append(format_table(rows, "recent events"))
        summary = events.summary()
        parts.append("")
        parts.append(
            f"events: {summary['emitted']} emitted, {summary['retained']} retained "
            f"({summary['pinned']} pinned), {summary['dropped_head']} head-sampled away"
        )

    return "\n".join(parts) + "\n"
