"""Process-wide telemetry hub for the ``repro slo <command>`` wrapper.

A :class:`SolverService` owns its metrics registry; the wrapper form of
``python -m repro slo`` needs to evaluate objectives over *whatever
services the wrapped command created*. When a hub is installed
(:func:`use_hub`), every service registers its registry on construction,
and services pick up the hub's shared event log — so one wrapper
invocation sees the combined telemetry of the whole command, the same way
``repro trace <command>`` sees its spans.
"""

from __future__ import annotations

import threading

from repro.observability.metrics import MetricsRegistry
from repro.telemetry.events import EventLog
from repro.telemetry.slo import SloSpec, SloStatus, counts_from_registry

__all__ = ["TelemetryHub", "current_hub", "set_hub", "use_hub"]


class TelemetryHub:
    """Collects the registries (and shares one event log) of a command."""

    def __init__(self, event_log_capacity: int = 4096) -> None:
        self.event_log = EventLog(capacity=event_log_capacity)
        self._registries: list[MetricsRegistry] = []
        self._lock = threading.Lock()

    def register(self, registry: MetricsRegistry) -> None:
        """Attach one service's registry (idempotent per object)."""
        with self._lock:
            if all(registry is not r for r in self._registries):
                self._registries.append(registry)

    @property
    def registries(self) -> list[MetricsRegistry]:
        with self._lock:
            return list(self._registries)

    def slo_statuses(self, specs: tuple[SloSpec, ...] | list[SloSpec]) -> list[SloStatus]:
        """Overall compliance of each spec across every registered registry.

        The wrapper evaluates once at command exit, so there is no sample
        history — statuses carry overall compliance, not burn windows.
        """
        statuses = []
        for spec in specs:
            bad = 0.0
            total = 0.0
            for registry in self.registries:
                b, t = counts_from_registry(spec, registry)
                bad += b
                total += t
            statuses.append(SloStatus(spec=spec, bad=bad, total=total))
        return statuses


_install_lock = threading.Lock()
_installed: TelemetryHub | None = None


def current_hub() -> TelemetryHub | None:
    """The installed hub, or ``None`` outside a wrapper invocation."""
    return _installed


def set_hub(hub: TelemetryHub | None) -> TelemetryHub | None:
    """Install ``hub`` process-wide; returns the previously installed one."""
    global _installed
    with _install_lock:
        previous = _installed
        _installed = hub
    return previous


class use_hub:
    """Install a hub for a ``with`` scope, restoring the previous one."""

    __slots__ = ("hub", "_previous")

    def __init__(self, hub: TelemetryHub) -> None:
        self.hub = hub
        self._previous: TelemetryHub | None = None

    def __enter__(self) -> TelemetryHub:
        self._previous = set_hub(self.hub)
        return self.hub

    def __exit__(self, exc_type, exc, tb) -> None:
        set_hub(self._previous)
