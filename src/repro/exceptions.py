"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single except clause while still
being able to discriminate on the specific subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    Serving-layer failures are *structured*: every error class carries an
    HTTP-style ``status_code`` (4xx = the request's fault, 5xx = the
    service's) and a stable machine-readable ``error_code`` token, so a
    ticket that fails under load or chaos completes with a classifiable
    outcome instead of an anonymous crash.
    """

    #: HTTP-style classification of the failure (5xx = service-side).
    status_code: int = 500
    #: Stable machine token for dashboards and replay reports.
    error_code: str = "internal"


class DimensionMismatchError(ReproError, ValueError):
    """Operands of a batched operation have incompatible shapes."""


class BadSparsityPatternError(ReproError, ValueError):
    """A sparsity pattern is malformed or inconsistent across a batch."""


class UnsupportedCombinationError(ReproError, ValueError):
    """A dispatch combination (format/solver/preconditioner) is not legal."""


class SingularMatrixError(ReproError, ArithmeticError):
    """A (sub)problem is numerically singular where invertibility is required."""

    status_code = 422
    error_code = "singular_matrix"


class ConvergenceError(ReproError, RuntimeError):
    """An iterative process failed to converge and the caller asked to raise."""


# --------------------------------------------------------------------------
# SYCL / CUDA execution-model simulator errors
# --------------------------------------------------------------------------


class ExecutionModelError(ReproError):
    """Base class for errors detected by the execution-model simulators."""


class InvalidNDRangeError(ExecutionModelError, ValueError):
    """An ND-range is malformed (e.g. local size does not divide global)."""


class BarrierDivergenceError(ExecutionModelError, RuntimeError):
    """Work-items of one synchronization scope reached different barriers.

    SYCL (and CUDA) leave this undefined behaviour on hardware; the simulator
    turns it into a hard error so kernel bugs surface deterministically.
    When the sanitizer (:mod:`repro.sanitize`) is the one raising, the
    structured diagnostic rides on ``report`` (otherwise ``None``).
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class LocalMemoryError(ExecutionModelError, MemoryError):
    """A work-group requested more shared local memory than the device has."""


class SubGroupSizeError(ExecutionModelError, ValueError):
    """A requested sub-group size is not supported by the device."""


class DeviceCapabilityError(ExecutionModelError, ValueError):
    """The device cannot run the requested launch configuration."""


class KernelFaultError(ExecutionModelError, RuntimeError):
    """A kernel performed an illegal access (e.g. out-of-bounds SLM index)."""


class WideBackendError(ExecutionModelError, RuntimeError):
    """A kernel structure the lockstep wide backend cannot express
    (e.g. the CUDA-style non-uniform guarded shared-memory reduction)."""


# --------------------------------------------------------------------------
# Kernel sanitizer errors (repro.sanitize)
# --------------------------------------------------------------------------


class SanitizerError(ExecutionModelError):
    """Base class for violations detected by the kernel sanitizer.

    Raised only when a :class:`repro.sanitize.Sanitizer` is installed; the
    structured :class:`repro.sanitize.SanitizerReport` travels on the
    ``report`` attribute so tooling (the CLI, the differential harness)
    can render diagnostics without parsing the message.
    """

    status_code = 503
    error_code = "sanitizer_trip"

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class SlmRaceError(SanitizerError):
    """Two work-items accessed the same SLM cell without an intervening
    barrier, and at least one access was a write (a data race)."""


class UninitializedSlmReadError(SanitizerError):
    """A work-item read an SLM cell no work-item had written.

    Real shared local memory is uninitialized; the zero-fill the simulator
    performs would mask the bug, so the sanitizer flags the read itself.
    """


class SlmOutOfBoundsError(SanitizerError, KernelFaultError):
    """A work-item indexed an SLM array outside its declared shape
    (negative indices count: SYCL local accessors do not wrap)."""


class CollectiveMisuseError(SanitizerError):
    """A group/sub-group collective was used illegally: non-uniform
    participation across the scope, or a shuffle/broadcast whose width
    parameter does not fit the dispatched sub-group size."""


# --------------------------------------------------------------------------
# Autotuning errors (repro.tune)
# --------------------------------------------------------------------------


class TuningError(ReproError):
    """Base class for errors raised by the autotuning subsystem."""


class TuningDBError(TuningError, ValueError):
    """The persistent tuning database is corrupt, unreadable or of an
    incompatible schema version."""


# --------------------------------------------------------------------------
# Serving-layer errors (repro.serve)
# --------------------------------------------------------------------------


class ServeError(ReproError):
    """Base class for errors raised by the batched-solver service."""


class ServiceSaturatedError(ServeError, RuntimeError):
    """The service's admission queue is full; retry after ``retry_after_s``.

    This is the backpressure signal: the request was *not* enqueued, the
    caller should back off for at least ``retry_after_s`` seconds.
    """

    status_code = 429
    error_code = "saturated"

    def __init__(self, message: str, retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class RequestTimeoutError(ServeError, TimeoutError):
    """A solve request exceeded its timeout before being served."""

    status_code = 504
    error_code = "timeout"


class ServiceClosedError(ServeError, RuntimeError):
    """A request was submitted to a service that has been closed."""

    status_code = 503
    error_code = "closed"


class QuotaExceededError(ServiceSaturatedError):
    """One tenant hit its per-tenant pending quota (fair-share admission).

    Unlike plain saturation this is *per-tenant* backpressure: the service
    as a whole has capacity, but this tenant's share of it is spoken for.
    Other tenants' requests keep being admitted.
    """

    status_code = 429
    error_code = "quota_exceeded"

    def __init__(
        self, message: str, tenant: str = "default", retry_after_s: float = 0.0
    ) -> None:
        super().__init__(message, retry_after_s=retry_after_s)
        self.tenant = tenant


class CircuitOpenError(ServeError, RuntimeError):
    """The fallback circuit breaker is open; degraded work is shed fast.

    During a fallback storm every non-converged request would be retried
    individually with the direct-LU solver — the expensive path that
    amplifies overload. Once the breaker opens, those retries fail fast
    with this error until the cooldown's half-open probe succeeds.
    """

    status_code = 503
    error_code = "breaker_open"

    def __init__(self, message: str, retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


# --------------------------------------------------------------------------
# Chaos / fault-injection errors (repro.chaos)
# --------------------------------------------------------------------------


class InjectedFaultError(ServeError):
    """Base class for failures raised by the chaos fault-injection layer.

    Carries the ``fault`` kind so rescue paths, telemetry and replay
    reports can attribute the failure to the plan that caused it.
    """

    status_code = 500
    error_code = "injected_fault"

    def __init__(self, message: str, fault: str = "") -> None:
        super().__init__(message)
        self.fault = fault


class WorkerDiedError(InjectedFaultError):
    """A worker was killed mid-flush (injected); its flush never finished."""

    status_code = 503
    error_code = "worker_died"


class PoisonedBatchError(InjectedFaultError):
    """An assembled batch was corrupted in flight (injected NaN payload)."""

    status_code = 422
    error_code = "poisoned_batch"
