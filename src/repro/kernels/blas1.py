"""Reduction building blocks at work-group, sub-group and warp scope.

Section 3.2 of the paper: "Reduction operations such as dot and norm are
implemented using the reduction over the whole work-group which is a
primitive function provided by SYCL. For small matrices, it is more
efficient to implement the reduction within a subgroup ... These reduction
operations were implemented in a different fashion compared to our
CUDA-based solvers as in CUDA only warp-level reductions are used as no
efficient thread-block level reduction operations are available."

All three flavours live here:

* :func:`group_dot` — the SYCL path (``reduce_over_group`` primitive);
* :func:`sub_group_dot` — the SYCL small-matrix path (single sub-group);
* :func:`warp_reduce_sum` + :func:`block_reduce_cuda` — the CUDA path:
  shuffle butterfly within each warp, lane-0 partials through shared
  memory, and a final warp reduction broadcast back to the block.

Each is a generator subroutine: call with ``yield from`` inside a kernel.
"""

from __future__ import annotations

from repro.cudasim.thread import WARP_SIZE, CudaItem
from repro.profile.context import kernel_phase
from repro.sycl.group import NDItem


def group_dot(item: NDItem, a, b, n: int):
    """Dot product of two length-``n`` arrays via a work-group reduction.

    Every work-item accumulates the rows it owns (local-id strided), then
    one ``reduce_over_group`` — the SYCL primitive — combines the
    partials. All work-items receive the result.
    """
    prof = kernel_phase("reduction")
    partial = 0.0
    for row in range(item.local_id, n, item.local_range):
        partial += float(a[row]) * float(b[row])
        if prof:
            prof.add_flops(2)
    total = yield item.reduce_over_group(partial, "sum")
    return total


def sub_group_dot(item: NDItem, a, b, n: int):
    """Dot product reduced within the calling item's sub-group only.

    The small-matrix fast path: when one sub-group covers the system,
    the reduction avoids the round-trip through shared local memory.
    Every sub-group computes the same full dot product (lanes stride the
    whole array), so no cross-sub-group combine is needed.
    """
    prof = kernel_phase("reduction")
    partial = 0.0
    for row in range(item.lane, n, item.sub_group_range):
        partial += float(a[row]) * float(b[row])
        if prof:
            prof.add_flops(2)
    total = yield item.reduce_over_sub_group(partial, "sum")
    return total


def warp_reduce_sum(cuda: CudaItem, value: float):
    """Butterfly shuffle reduction within a warp (lane 0 holds the total)."""
    prof = kernel_phase("reduction")
    offset = WARP_SIZE // 2
    while offset > 0:
        other = yield cuda.shfl_down(value, offset)
        value = value + other
        if prof:
            prof.add_flops(1)
        offset //= 2
    return value


def block_reduce_cuda(cuda: CudaItem, shared, value: float):
    """Block-wide sum the CUDA way: warp shuffles + shared-memory combine.

    ``shared`` must provide a ``reduce_buf`` array of at least
    ``block_dim / 32`` elements. Returns the total to *all* threads of the
    block (a final broadcast through shared memory). This multi-stage
    structure — absent from the SYCL port, which calls the group-reduce
    primitive — is the paper's CUDA/SYCL code-structure difference.
    """
    warp_total = yield from warp_reduce_sum(cuda, value)
    if cuda.lane_id == 0:
        shared.reduce_buf[cuda.warp_id] = warp_total
    yield cuda.syncthreads()

    if cuda.warp_id == 0:
        partial = (
            float(shared.reduce_buf[cuda.lane_id])
            if cuda.lane_id < cuda.num_warps
            else 0.0
        )
        total = yield from warp_reduce_sum(cuda, partial)
        if cuda.lane_id == 0:
            shared.reduce_buf[0] = total
    else:
        # Warps other than 0 still execute their shuffle sequence so the
        # sub-group collectives stay convergent lockstep per warp.
        yield from warp_reduce_sum(cuda, 0.0)
    yield cuda.syncthreads()
    total = float(shared.reduce_buf[0])
    # sync again before returning: the caller's next reduction writes
    # reduce_buf immediately, which would race with the reads above
    yield cuda.syncthreads()
    return total


def group_norm2_squared(item: NDItem, a, n: int):
    """Squared 2-norm via the work-group reduction primitive."""
    total = yield from group_dot(item, a, a, n)
    return total
