"""Device-level batched SpMV kernels (Section 3.2).

Two mappings, matching the paper:

* **CSR, sub-group per row** (:func:`spmv_csr_subgroup_rows`): each
  sub-group takes rows round-robin; its lanes stride the row's non-zeros
  and a sub-group reduction combines the partial products. Good for
  general matrices with longer rows.
* **ELL, work-item per row** (:func:`spmv_ell_item_rows`): each work-item
  owns whole rows, "removing the need to communicate between threads" —
  no reductions at all, coalesced column-major value accesses.

:func:`spmv_csr_item_rows` is the communication-free CSR fallback used
inside the fused solver kernels when rows are short.

All kernels read ``x`` from (simulated) SLM and write ``y`` back to SLM;
they are generator subroutines composed into the fused solver kernels.
"""

from __future__ import annotations

from repro.profile.context import kernel_phase
from repro.sycl.group import NDItem


def spmv_csr_item_rows(item: NDItem, row_ptrs, col_idxs, values, x, y, n: int):
    """One work-item per row (local-id strided); no communication."""
    prof = kernel_phase("spmv")
    for row in range(item.local_id, n, item.local_range):
        acc = 0.0
        for pos in range(int(row_ptrs[row]), int(row_ptrs[row + 1])):
            acc += float(values[pos]) * float(x[int(col_idxs[pos])])
            if prof:
                prof.add_flops(2)
        y[row] = acc
    yield item.barrier()


def spmv_csr_subgroup_rows(item: NDItem, row_ptrs, col_idxs, values, x, y, n: int):
    """One sub-group per row; lanes stride the non-zeros, then reduce.

    Sub-groups may execute different numbers of reductions when ``n`` is
    not a multiple of the sub-group count — legal, since sub-group
    collectives only synchronize within their own scope; the trailing
    work-group barrier re-converges everyone (the profiler reports these
    rounds as divergence events).
    """
    prof = kernel_phase("spmv")
    sg, lane = item.sub_group_id, item.lane
    for row in range(sg, n, item.num_sub_groups):
        start, end = int(row_ptrs[row]), int(row_ptrs[row + 1])
        partial = 0.0
        for pos in range(start + lane, end, item.sub_group_range):
            partial += float(values[pos]) * float(x[int(col_idxs[pos])])
            if prof:
                prof.add_flops(2)
        total = yield item.reduce_over_sub_group(partial, "sum")
        if lane == 0:
            y[row] = total
    yield item.barrier()


def spmv_ell_item_rows(item: NDItem, col_idxs, values, x, y, n: int, ell_width: int):
    """ELL mapping: one work-item per row over the padded slots.

    ``col_idxs`` is ``(ell_width, n)`` with -1 padding; ``values`` is the
    per-item ``(ell_width, n)`` column-major slab.
    """
    prof = kernel_phase("spmv")
    for row in range(item.local_id, n, item.local_range):
        acc = 0.0
        for slot in range(ell_width):
            col = int(col_idxs[slot][row])
            if col >= 0:
                acc += float(values[slot][row]) * float(x[col])
                if prof:
                    prof.add_flops(2)
        y[row] = acc
    yield item.barrier()
