"""Work-item-level solver kernels on the execution-model simulators.

These are the faithful counterparts of the paper's GPU kernels: one
work-group per linear system, all vectors staged in shared local memory,
reductions via SYCL group functions (or, on the CUDA backend, warp
shuffles plus a shared-memory combine — the structural difference
Section 3.2 highlights). They execute on :mod:`repro.sycl` /
:mod:`repro.cudasim` and are validated in the test suite against the
vectorized production solvers of :mod:`repro.core.solver`.

Building blocks (:mod:`repro.kernels.blas1`, :mod:`repro.kernels.spmv`)
are generator subroutines composed with ``yield from`` — the Python
analogue of the paper's inlined device functions, which let the compiler
fuse the entire solver into a single kernel (Section 3.4).
"""

from repro.kernels.blas1 import (
    block_reduce_cuda,
    group_dot,
    sub_group_dot,
    warp_reduce_sum,
)
from repro.kernels.spmv import spmv_csr_item_rows, spmv_csr_subgroup_rows, spmv_ell_item_rows
from repro.kernels.cg_kernel import batch_cg_kernel, run_batch_cg_on_device
from repro.kernels.bicgstab_kernel import (
    batch_bicgstab_kernel,
    run_batch_bicgstab_on_device,
)
from repro.kernels.richardson_kernel import (
    batch_richardson_kernel,
    run_batch_richardson_on_device,
)

__all__ = [
    "group_dot",
    "sub_group_dot",
    "warp_reduce_sum",
    "block_reduce_cuda",
    "spmv_csr_item_rows",
    "spmv_csr_subgroup_rows",
    "spmv_ell_item_rows",
    "batch_cg_kernel",
    "run_batch_cg_on_device",
    "batch_bicgstab_kernel",
    "run_batch_bicgstab_on_device",
    "batch_richardson_kernel",
    "run_batch_richardson_on_device",
]
