"""The fused BatchCg kernel on the SYCL simulator (Algorithm 1).

One work-group solves one system: the whole CG iteration — SpMV, dots,
axpys, preconditioner application, convergence test — runs inside a
single kernel with the iteration vectors staged in shared local memory in
the paper's priority order (r, z, p, t, x). The loop condition is a
group-uniform value (every work-item receives the same reduction
results), so control flow never diverges.

:func:`run_batch_cg_on_device` is the host-side wrapper: it plans the
launch with the Section 3.6 heuristics, allocates the SLM accessors and
submits one fused kernel for the whole batch, returning the solution and
per-system iteration counts.
"""

from __future__ import annotations

import numpy as np

from repro.core.launch import LaunchConfigurator
from repro.core.matrix.batch_csr import BatchCsr
from repro.kernels.blas1 import group_dot
from repro.kernels.spmv import spmv_csr_item_rows, spmv_csr_subgroup_rows
from repro.profile.context import kernel_phase
from repro.sycl.device import SyclDevice
from repro.sycl.memory import LocalSpec
from repro.sycl.queue import Queue


def batch_cg_kernel(
    item,
    slm,
    row_ptrs,
    col_idxs,
    values,
    b,
    x_out,
    inv_diag,
    thresholds,
    max_iters,
    out_iters,
    use_subgroup_spmv,
    res_history=None,
):
    """Fused preconditioned-CG kernel; work-group ``item.group_id`` owns
    system ``item.group_id``.

    When ``res_history`` (shape ``(num_batch, max_iters + 1)``) is given,
    work-item 0 records the residual norm of every iteration — the device
    side of the differential harness's convergence-history comparison.
    """
    sysid = item.group_id
    n = row_ptrs.shape[0] - 1
    lid, wg = item.local_id, item.local_range
    vals = values[sysid]

    # r <- b ; z <- M r ; p <- z ; x <- 0  (the M b product is the only
    # arithmetic in the staging loop: 1 flop/row)
    prof = kernel_phase("blas1")
    for row in range(lid, n, wg):
        rhs = float(b[sysid, row])
        slm.x[row] = 0.0
        slm.r[row] = rhs
        z0 = rhs * float(inv_diag[sysid, row])
        if prof:
            prof.add_flops(1)
        slm.z[row] = z0
        slm.p[row] = z0
    yield item.barrier()

    rho = yield from group_dot(item, slm.r, slm.z, n)
    res2 = yield from group_dot(item, slm.r, slm.r, n)
    threshold2 = float(thresholds[sysid]) ** 2
    if res_history is not None and lid == 0:
        res_history[sysid, 0] = res2 ** 0.5

    iters = 0
    while iters < max_iters and res2 > threshold2:
        # t <- A p
        if use_subgroup_spmv:
            yield from spmv_csr_subgroup_rows(
                item, row_ptrs, col_idxs, vals, slm.p, slm.t, n
            )
        else:
            yield from spmv_csr_item_rows(
                item, row_ptrs, col_idxs, vals, slm.p, slm.t, n
            )

        pt = yield from group_dot(item, slm.p, slm.t, n)
        alpha = rho / pt if pt != 0.0 else 0.0

        # x <- x + alpha p ; r <- r - alpha t  (2 flops per axpy element)
        if prof:
            prof.enter_phase("blas1")
        for row in range(lid, n, wg):
            slm.x[row] += alpha * slm.p[row]
            slm.r[row] -= alpha * slm.t[row]
            if prof:
                prof.add_flops(4)
        yield item.barrier()

        res2 = yield from group_dot(item, slm.r, slm.r, n)

        # z <- M r ; rho' <- r . z ; p <- z + (rho'/rho) p
        if prof:
            prof.enter_phase("precond")
        for row in range(lid, n, wg):
            slm.z[row] = slm.r[row] * float(inv_diag[sysid, row])
            if prof:
                prof.add_flops(1)
        yield item.barrier()
        rho_new = yield from group_dot(item, slm.r, slm.z, n)
        beta = rho_new / rho if rho != 0.0 else 0.0
        if prof:
            prof.enter_phase("blas1")
        for row in range(lid, n, wg):
            slm.p[row] = slm.z[row] + beta * slm.p[row]
            if prof:
                prof.add_flops(2)
        yield item.barrier()
        rho = rho_new
        iters += 1
        if res_history is not None and lid == 0:
            res_history[sysid, iters] = res2 ** 0.5

    if prof:
        prof.enter_phase("blas1")
    for row in range(lid, n, wg):
        x_out[sysid, row] = slm.x[row]
    if lid == 0:
        out_iters[sysid] = iters


def run_batch_cg_on_device(
    device: SyclDevice,
    matrix: BatchCsr,
    b: np.ndarray,
    inv_diag: np.ndarray | None = None,
    tolerance: float = 1e-10,
    max_iterations: int = 200,
    use_subgroup_spmv: bool = False,
    queue: Queue | None = None,
    res_history: np.ndarray | None = None,
):
    """Launch the fused CG kernel for a whole batch; returns (x, iters, event).

    ``inv_diag`` enables scalar-Jacobi preconditioning (identity when
    omitted). Thresholds follow the relative-residual criterion.
    ``res_history`` (caller-allocated, shape ``(num_batch, max_iterations
    + 1)``) receives per-iteration residual norms when given.
    """
    nb, n = matrix.num_batch, matrix.num_rows
    b = matrix.check_vector("b", b)
    if inv_diag is None:
        inv_diag = np.ones((nb, n))
    x_out = np.zeros((nb, n))
    out_iters = np.zeros(nb, dtype=np.int64)
    thresholds = tolerance * np.linalg.norm(b, axis=1)

    configurator = LaunchConfigurator(device)
    plan = configurator.configure(n, nb)
    local_specs = [LocalSpec(name, (n,)) for name in ("r", "z", "p", "t", "x")]

    q = queue if queue is not None else Queue(device)
    event = q.parallel_for(
        plan.nd_range(),
        batch_cg_kernel,
        args=(
            matrix.row_ptrs,
            matrix.col_idxs,
            matrix.values,
            b,
            x_out,
            inv_diag,
            thresholds,
            max_iterations,
            out_iters,
            use_subgroup_spmv,
            res_history,
        ),
        local_specs=local_specs,
        name="batch_cg_fused",
    )
    return x_out, out_iters, event
