"""The fused BatchRichardson kernel — the minimal fused-solver skeleton.

Richardson iteration is the simplest kernel that still exercises every
element of the paper's fused design: SLM-staged vectors, an SpMV, a
preconditioner application, a group-wide residual reduction and a
group-uniform convergence test per iteration. Useful as the reference
when porting the kernel structure to a new backend (it is also the
smallest realistic workload for the executor's divergence checking).
"""

from __future__ import annotations

import numpy as np

from repro.core.launch import LaunchConfigurator
from repro.core.matrix.batch_csr import BatchCsr
from repro.kernels.blas1 import group_dot
from repro.kernels.spmv import spmv_csr_item_rows
from repro.profile.context import kernel_phase
from repro.sycl.device import SyclDevice
from repro.sycl.memory import LocalSpec
from repro.sycl.queue import Queue


def batch_richardson_kernel(
    item,
    slm,
    row_ptrs,
    col_idxs,
    values,
    b,
    x_out,
    inv_diag,
    thresholds,
    omega,
    max_iters,
    out_iters,
    res_history=None,
):
    """Fused relaxed-Richardson kernel; one work-group per system.

    ``res_history`` (shape ``(num_batch, max_iters + 1)``), when given,
    receives per-iteration residual norms from work-item 0.
    """
    sysid = item.group_id
    n = row_ptrs.shape[0] - 1
    lid, wg = item.local_id, item.local_range
    vals = values[sysid]

    prof = kernel_phase("blas1")
    for row in range(lid, n, wg):
        slm.x[row] = 0.0
        slm.r[row] = float(b[sysid, row])
    yield item.barrier()

    res2 = yield from group_dot(item, slm.r, slm.r, n)
    threshold2 = float(thresholds[sysid]) ** 2
    if res_history is not None and lid == 0:
        res_history[sysid, 0] = res2 ** 0.5

    iters = 0
    while iters < max_iters and res2 > threshold2:
        # x += omega * M r  (z staged in SLM for the following SpMV;
        # 1 + 2 flops/row, attributed to the preconditioner phase)
        if prof:
            prof.enter_phase("precond")
        for row in range(lid, n, wg):
            slm.z[row] = slm.r[row] * float(inv_diag[sysid, row])
            slm.x[row] += omega * slm.z[row]
            if prof:
                prof.add_flops(3)
        yield item.barrier()

        # r -= omega * A z  (2 flops/row)
        yield from spmv_csr_item_rows(item, row_ptrs, col_idxs, vals, slm.z, slm.t, n)
        if prof:
            prof.enter_phase("blas1")
        for row in range(lid, n, wg):
            slm.r[row] -= omega * slm.t[row]
            if prof:
                prof.add_flops(2)
        yield item.barrier()

        res2 = yield from group_dot(item, slm.r, slm.r, n)
        iters += 1
        if res_history is not None and lid == 0:
            res_history[sysid, iters] = res2 ** 0.5

    if prof:
        prof.enter_phase("blas1")
    for row in range(lid, n, wg):
        x_out[sysid, row] = slm.x[row]
    if lid == 0:
        out_iters[sysid] = iters


def run_batch_richardson_on_device(
    device: SyclDevice,
    matrix: BatchCsr,
    b: np.ndarray,
    inv_diag: np.ndarray | None = None,
    omega: float = 1.0,
    tolerance: float = 1e-10,
    max_iterations: int = 1000,
    queue: Queue | None = None,
    res_history: np.ndarray | None = None,
):
    """Launch the fused Richardson kernel; returns (x, iterations, event)."""
    nb, n = matrix.num_batch, matrix.num_rows
    b = matrix.check_vector("b", b)
    if inv_diag is None:
        inv_diag = np.ones((nb, n))
    x_out = np.zeros((nb, n))
    out_iters = np.zeros(nb, dtype=np.int64)
    thresholds = tolerance * np.linalg.norm(b, axis=1)

    plan = LaunchConfigurator(device).configure(n, nb)
    local_specs = [LocalSpec(name, (n,)) for name in ("r", "z", "t", "x")]

    q = queue if queue is not None else Queue(device)
    event = q.parallel_for(
        plan.nd_range(),
        batch_richardson_kernel,
        args=(
            matrix.row_ptrs,
            matrix.col_idxs,
            matrix.values,
            b,
            x_out,
            inv_diag,
            thresholds,
            float(omega),
            max_iterations,
            out_iters,
            res_history,
        ),
        local_specs=local_specs,
        name="batch_richardson_fused",
    )
    return x_out, out_iters, event
