"""The fused BatchBicgstab kernel, with selectable reduction style.

Like :mod:`repro.kernels.cg_kernel` but for the paper's workhorse solver,
and parameterized over the backend-specific reduction implementation
(Section 3.2):

* ``"group"`` — SYCL ``reduce_over_group`` primitive (the PVC port);
* ``"sub_group"`` — single-sub-group reduction, the SYCL small-matrix
  path (requires the work-group to be exactly one sub-group);
* ``"cuda"`` — warp shuffles + shared-memory combine, the CUDA structure
  (requires warp width 32).

Running the same solver with different reduction styles and checking the
identical results is how the test suite validates the paper's claim that
the two backends differ only in this mechanism.
"""

from __future__ import annotations

import numpy as np

from repro.core.launch import LaunchConfigurator
from repro.core.matrix.batch_csr import BatchCsr
from repro.cudasim.thread import WARP_SIZE, CudaItem
from repro.kernels.blas1 import block_reduce_cuda, group_dot, sub_group_dot
from repro.kernels.spmv import spmv_csr_item_rows
from repro.profile.context import kernel_phase
from repro.sycl.device import SyclDevice
from repro.sycl.memory import LocalSpec
from repro.sycl.ndrange import NDRange
from repro.sycl.queue import Queue

REDUCTION_STYLES = ("group", "sub_group", "cuda")

_VECTORS = ("r", "r_hat", "p", "v", "s", "t", "p_hat", "s_hat", "x")


def _dot(item, slm, a, b, n, style):
    """Dot product dispatched over the three reduction implementations."""
    if style == "group":
        total = yield from group_dot(item, a, b, n)
    elif style == "sub_group":
        total = yield from sub_group_dot(item, a, b, n)
    elif style == "cuda":
        prof = kernel_phase("reduction")
        partial = 0.0
        for row in range(item.local_id, n, item.local_range):
            partial += float(a[row]) * float(b[row])
            if prof:
                prof.add_flops(2)
        total = yield from block_reduce_cuda(CudaItem(item), slm, partial)
    else:
        raise ValueError(f"unknown reduction style {style!r}")
    return total


def batch_bicgstab_kernel(
    item,
    slm,
    row_ptrs,
    col_idxs,
    values,
    b,
    x_out,
    inv_diag,
    thresholds,
    max_iters,
    out_iters,
    reduce_style,
    res_history=None,
):
    """Fused preconditioned-BiCGSTAB kernel; one work-group per system.

    ``res_history`` (shape ``(num_batch, max_iters + 1)``), when given,
    receives per-iteration residual norms from work-item 0.
    """
    sysid = item.group_id
    n = row_ptrs.shape[0] - 1
    lid, wg = item.local_id, item.local_range
    vals = values[sysid]

    prof = kernel_phase("blas1")
    for row in range(lid, n, wg):
        rhs = float(b[sysid, row])
        slm.x[row] = 0.0
        slm.r[row] = rhs
        slm.r_hat[row] = rhs
        slm.p[row] = 0.0
        slm.v[row] = 0.0
    yield item.barrier()

    res2 = yield from _dot(item, slm, slm.r, slm.r, n, reduce_style)
    threshold2 = float(thresholds[sysid]) ** 2
    if res_history is not None and lid == 0:
        res_history[sysid, 0] = res2 ** 0.5
    rho_old, alpha, omega = 1.0, 1.0, 1.0

    iters = 0
    while iters < max_iters and res2 > threshold2:
        rho = yield from _dot(item, slm, slm.r_hat, slm.r, n, reduce_style)
        beta = (rho / rho_old) * (alpha / omega) if rho_old != 0.0 and omega != 0.0 else 0.0

        # p <- r + beta (p - omega v) ; p_hat <- M p  (4 + 1 flops/row; the
        # Jacobi apply is fused into this loop, so its flop rides in blas1 —
        # unlike CG/Richardson, whose standalone apply loops feed "precond")
        if prof:
            prof.enter_phase("blas1")
        for row in range(lid, n, wg):
            slm.p[row] = slm.r[row] + beta * (slm.p[row] - omega * slm.v[row])
            slm.p_hat[row] = slm.p[row] * float(inv_diag[sysid, row])
            if prof:
                prof.add_flops(5)
        yield item.barrier()

        # v <- A p_hat ; alpha <- rho / (r_hat . v)
        yield from spmv_csr_item_rows(item, row_ptrs, col_idxs, vals, slm.p_hat, slm.v, n)
        rv = yield from _dot(item, slm, slm.r_hat, slm.v, n, reduce_style)
        alpha = rho / rv if rv != 0.0 else 0.0

        # s <- r - alpha v ; s_hat <- M s  (2 + 1 flops/row)
        if prof:
            prof.enter_phase("blas1")
        for row in range(lid, n, wg):
            slm.s[row] = slm.r[row] - alpha * slm.v[row]
            slm.s_hat[row] = slm.s[row] * float(inv_diag[sysid, row])
            if prof:
                prof.add_flops(3)
        yield item.barrier()

        # t <- A s_hat ; omega <- (t . s) / (t . t)
        yield from spmv_csr_item_rows(item, row_ptrs, col_idxs, vals, slm.s_hat, slm.t, n)
        ts = yield from _dot(item, slm, slm.t, slm.s, n, reduce_style)
        tt = yield from _dot(item, slm, slm.t, slm.t, n, reduce_style)
        omega = ts / tt if tt != 0.0 else 0.0

        # x <- x + alpha p_hat + omega s_hat ; r <- s - omega t  (6 flops/row)
        if prof:
            prof.enter_phase("blas1")
        for row in range(lid, n, wg):
            slm.x[row] += alpha * slm.p_hat[row] + omega * slm.s_hat[row]
            slm.r[row] = slm.s[row] - omega * slm.t[row]
            if prof:
                prof.add_flops(6)
        yield item.barrier()

        res2 = yield from _dot(item, slm, slm.r, slm.r, n, reduce_style)
        rho_old = rho
        iters += 1
        if res_history is not None and lid == 0:
            res_history[sysid, iters] = res2 ** 0.5
        if omega == 0.0 or rho == 0.0:
            break  # breakdown: freeze this system (group-uniform condition)

    if prof:
        prof.enter_phase("blas1")
    for row in range(lid, n, wg):
        x_out[sysid, row] = slm.x[row]
    if lid == 0:
        out_iters[sysid] = iters


def run_batch_bicgstab_on_device(
    device: SyclDevice,
    matrix: BatchCsr,
    b: np.ndarray,
    inv_diag: np.ndarray | None = None,
    tolerance: float = 1e-10,
    max_iterations: int = 200,
    reduce_style: str = "group",
    queue: Queue | None = None,
    res_history: np.ndarray | None = None,
):
    """Launch the fused BiCGSTAB kernel for a whole batch.

    Returns ``(x, iterations, event)``. ``reduce_style="sub_group"``
    requires the work-group to collapse to a single sub-group (small
    matrices); ``"cuda"`` requires sub-group width 32.
    """
    if reduce_style not in REDUCTION_STYLES:
        raise ValueError(
            f"reduce_style must be one of {REDUCTION_STYLES}, got {reduce_style!r}"
        )
    nb, n = matrix.num_batch, matrix.num_rows
    b = matrix.check_vector("b", b)
    if inv_diag is None:
        inv_diag = np.ones((nb, n))
    x_out = np.zeros((nb, n))
    out_iters = np.zeros(nb, dtype=np.int64)
    thresholds = tolerance * np.linalg.norm(b, axis=1)

    configurator = LaunchConfigurator(device)
    sg = WARP_SIZE if reduce_style == "cuda" else configurator.pick_sub_group_size(n)
    wg = configurator.pick_work_group_size(n, sg)
    if reduce_style == "sub_group" and wg != sg:
        raise ValueError(
            f"sub-group reductions need the work-group ({wg}) to be a single "
            f"sub-group ({sg}); use a smaller matrix or the 'group' style"
        )
    ndrange = NDRange(nb * wg, wg, sg)

    local_specs = [LocalSpec(name, (n,)) for name in _VECTORS]
    if reduce_style == "cuda":
        local_specs.append(LocalSpec("reduce_buf", (max(1, wg // WARP_SIZE),)))

    q = queue if queue is not None else Queue(device)
    event = q.parallel_for(
        ndrange,
        batch_bicgstab_kernel,
        args=(
            matrix.row_ptrs,
            matrix.col_idxs,
            matrix.values,
            b,
            x_out,
            inv_diag,
            thresholds,
            max_iterations,
            out_iters,
            reduce_style,
            res_history,
        ),
        local_specs=local_specs,
        name=f"batch_bicgstab_fused_{reduce_style}",
    )
    return x_out, out_iters, event
