"""The fleet: consistent-hash routing over N shard replicas + lifecycle.

:class:`FleetService` is Layer 11 — the scale-*out* counterpart of the
paper's scale-*up* argument. Each shard replica is a full
:class:`~repro.serve.service.SolverService` (own device queue(s), own
micro-batcher, own :class:`~repro.serve.plan_cache.PlanCache`, own
:class:`~repro.tune.db.TuningDB` namespace); the fleet routes every
request to the shard that owns its :class:`~repro.serve.request.BatchKey`
on a consistent-hash ring, so one compatibility class coalesces in one
shard's batcher and that shard's caches stay hot for exactly the keys it
owns.

Control-plane behaviours:

* **Fleet admission** — past ``FleetConfig.max_pending`` total in-flight
  requests the fleet rejects with
  :class:`~repro.exceptions.ServiceSaturatedError` *before* any shard is
  touched; shard-level saturation stays the per-shard hot-spot signal.
* **Scale up** — :meth:`scale_up` starts a fresh replica and inserts its
  virtual nodes; ~1/N of keys remap to it (a ``fleet.rebalance`` event
  records the membership change, ``request.rerouted`` events record each
  key whose owner changed).
* **Graceful drain** — :meth:`drain` removes a shard's ring range first
  (no new keys route to it), then flushes its micro-batcher, waits for
  every in-flight ticket, and closes it: a scale-down loses zero admitted
  requests.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import replace as dc_replace

from repro.exceptions import ServiceClosedError, ServiceSaturatedError
from repro.fleet.config import FleetConfig
from repro.fleet.ring import HashRing, ring_token
from repro.observability.metrics import LogHistogram, MetricsRegistry
from repro.observability.tracer import Tracer, current_tracer, use_tracer
from repro.recorder.recorder import current_recorder
from repro.serve.request import SolveOutcome, SolveRequest, SolveTicket
from repro.serve.service import SolverService
from repro.telemetry.events import (
    FLEET_REBALANCE,
    REQUEST_REJECTED,
    REQUEST_REROUTED,
    EventLog,
    current_event_log,
)
from repro.telemetry.hub import current_hub

#: Shard lifecycle states.
ACTIVE = "active"
DRAINING = "draining"
STOPPED = "stopped"

#: Bound on the router's key→owner memory (it only feeds reroute events).
_OWNER_MEMORY = 4096


class ShardReplica:
    """One fleet member: a named :class:`SolverService` plus its state."""

    __slots__ = ("name", "service", "state")

    def __init__(self, name: str, service: SolverService) -> None:
        self.name = name
        self.service = service
        self.state = ACTIVE

    def __repr__(self) -> str:
        return f"ShardReplica({self.name!r}, state={self.state!r}, pending={self.service.pending})"


class FleetService:
    """Front N shard replicas behind one consistent-hash router.

    Usage::

        with FleetService(FleetConfig(initial_replicas=2)) as fleet:
            ticket = fleet.submit(request)
            outcome = ticket.result(timeout=5.0)
            fleet.scale_up()        # adds shard-2, remaps ~1/3 of keys
            fleet.scale_down()      # drains the least-loaded shard

    A ``tracer`` passed here is threaded into every shard service, so a
    request's journey — ``fleet.route`` span → shard flush span (linked
    via the request's trace context) — renders on one timeline.
    """

    def __init__(
        self,
        config: FleetConfig | None = None,
        tracer: Tracer | None = None,
        chaos: object | None = None,
    ) -> None:
        self.config = config if config is not None else FleetConfig()
        self._tracer = tracer
        # one injector is shared by every shard: the fault plan's flush
        # sequence is fleet-global, so a seeded battery hits the same
        # schedule whether it runs against 1 shard or 8
        self._chaos = chaos
        self.metrics = MetricsRegistry()
        # same event-log fallback chain as SolverService: a wrapper hub
        # wins, then a process-installed log, then a private bounded ring
        hub = current_hub()
        if hub is not None:
            hub.register(self.metrics)
            self.events: EventLog = hub.event_log
        else:
            installed = current_event_log()
            self.events = (
                installed
                if installed is not None
                else EventLog(capacity=self.config.serve.event_log_capacity)
            )
        self.ring = HashRing(self.config.virtual_nodes)
        self._shards: dict[str, ShardReplica] = {}
        self._owners: OrderedDict[str, str] = OrderedDict()  # ring token -> shard
        self._seq = 0
        self._closed = False
        self._lock = threading.RLock()
        for _ in range(self.config.initial_replicas):
            self._start_shard(reason="bootstrap")

    # -- membership ----------------------------------------------------------

    def _start_shard(self, reason: str) -> ShardReplica:
        """Create, register and ring-insert one replica (under the lock)."""
        with self._lock:
            name = f"shard-{self._seq}"
            self._seq += 1
            serve_config = dc_replace(
                self.config.serve,
                tuning_db_path=self.config.shard_tuning_path(name),
            )
            # per-shard black box: an ambient flight recorder becomes one
            # sibling recorder per replica, stamped with the shard name,
            # so each shard's bundles merge in the cross-shard postmortem
            ambient = current_recorder()
            recorder = None if ambient is None else ambient.for_shard(name)
            service = SolverService(
                serve_config,
                tracer=self._tracer,
                chaos=self._chaos,
                recorder=recorder,
            )
            shard = ShardReplica(name, service)
            self._shards[name] = shard
            self.ring.add(name)
            self.metrics.gauge("fleet.replicas").set(len(self.active_shards()))
            self.events.emit(
                FLEET_REBALANCE,
                action="add",
                shard=name,
                reason=reason,
                replicas=len(self.active_shards()),
            )
            return shard

    def shards(self) -> list[ShardReplica]:
        """Every registered replica (active and draining), name-ordered."""
        with self._lock:
            return [self._shards[k] for k in sorted(self._shards)]

    def active_shards(self) -> list[ShardReplica]:
        """Replicas currently admitting (on the ring), name-ordered."""
        with self._lock:
            return [s for s in self.shards() if s.state == ACTIVE]

    @property
    def num_replicas(self) -> int:
        """Active replica count."""
        return len(self.active_shards())

    # -- routing / admission -------------------------------------------------

    @property
    def pending(self) -> int:
        """Total in-flight requests across every replica."""
        with self._lock:
            return sum(s.service.pending for s in self._shards.values())

    def submit(self, request: SolveRequest) -> SolveTicket:
        """Route one request to the shard owning its batch key.

        Raises :class:`ServiceSaturatedError` on fleet-level backpressure
        (total pending over ``FleetConfig.max_pending``) and
        :class:`ServiceClosedError` after :meth:`close`. Shard-level
        saturation, should an individual hot shard still fill up, is the
        shard's own :class:`ServiceSaturatedError` passing through.
        """
        with self._lock:
            if self._closed:
                raise ServiceClosedError("fleet is closed")
            pending = sum(s.service.pending for s in self._shards.values())
            if pending >= self.config.max_pending:
                self.metrics.counter("fleet.rejected").inc()
                self.events.emit(
                    REQUEST_REJECTED,
                    ctx=request.trace_context,
                    critical=True,
                    scope="fleet",
                    pending=pending,
                    max_pending=self.config.max_pending,
                )
                raise ServiceSaturatedError(
                    f"fleet saturated: {pending} requests pending "
                    f"(max_pending={self.config.max_pending})",
                    retry_after_s=self.config.retry_after_ms / 1e3,
                )
            key = request.batch_key
            owner = self.ring.node_for(key)
            shard = self._shards[owner]
            self._note_owner(key, owner, request)
            self.metrics.counter("fleet.requests").inc()
            self.metrics.counter("fleet.routed").labels(shard=owner).inc()
        with use_tracer(self._tracer):
            # the router's leg of the journey: pinned to the request's
            # trace, so it links up with the shard's flush span (which
            # `span.link`s the same context at flush time)
            with current_tracer().span(
                "fleet.route",
                category="fleet",
                context=request.trace_context,
                shard=owner,
                solver=request.solver,
                num_rows=request.num_rows,
            ):
                return shard.service.submit(request)

    def _note_owner(self, key, owner: str, request: SolveRequest) -> None:
        """Track key ownership; emit ``request.rerouted`` on a change.

        Bounded LRU memory — the map exists to surface rebalance effects
        as structured events, not to be a second routing table.
        """
        token = ring_token(key)
        previous = self._owners.get(token)
        if previous is not None:
            self._owners.move_to_end(token)
        self._owners[token] = owner
        while len(self._owners) > _OWNER_MEMORY:
            self._owners.popitem(last=False)
        if previous is not None and previous != owner:
            self.metrics.counter("fleet.rerouted").inc()
            self.events.emit(
                REQUEST_REROUTED,
                ctx=request.trace_context,
                from_shard=previous,
                to_shard=owner,
                solver=request.solver,
                num_rows=request.num_rows,
            )

    def solve(self, request: SolveRequest, timeout: float | None = None) -> SolveOutcome:
        """Submit one request and block for its outcome (convenience)."""
        return self.submit(request).result(timeout)

    # -- scaling -------------------------------------------------------------

    def scale_up(self, count: int = 1) -> list[str]:
        """Start ``count`` new replicas (bounded by ``max_replicas``).

        Returns the new shard names; an empty list means the fleet is
        already at its maximum.
        """
        added: list[str] = []
        with self._lock:
            if self._closed:
                raise ServiceClosedError("fleet is closed")
            for _ in range(count):
                if self.num_replicas >= self.config.max_replicas:
                    break
                added.append(self._start_shard(reason="scale_up").name)
                self.metrics.counter("fleet.scale_ups").inc()
        return added

    def scale_down(self, count: int = 1, timeout: float | None = None) -> list[str]:
        """Gracefully drain ``count`` replicas (bounded by ``min_replicas``).

        Victims are the least-loaded active shards. Returns the drained
        shard names; an empty list means the fleet is already at its
        minimum.
        """
        drained: list[str] = []
        for _ in range(count):
            with self._lock:
                if self._closed:
                    raise ServiceClosedError("fleet is closed")
                candidates = self.active_shards()
                if len(candidates) <= self.config.min_replicas:
                    break
                victim = min(candidates, key=lambda s: (s.service.pending, s.name))
                name = victim.name
            self.drain(name, timeout=timeout)
            drained.append(name)
            self.metrics.counter("fleet.scale_downs").inc()
        return drained

    def drain(self, name: str, timeout: float | None = None) -> None:
        """Gracefully remove shard ``name`` with zero dropped requests.

        Protocol: (1) under the lock, take the shard off the ring and mark
        it ``draining`` — from this instant no new request routes to it
        and its key range belongs to the survivors; (2) outside the lock,
        flush its micro-batcher and wait for every in-flight ticket;
        (3) close it and forget it. Requests admitted before step 1 all
        complete normally.
        """
        timeout = self.config.drain_timeout_s if timeout is None else timeout
        with self._lock:
            shard = self._shards.get(name)
            if shard is None or shard.state != ACTIVE:
                raise KeyError(f"no active shard named {name!r}")
            shard.state = DRAINING
            self.ring.remove(name)
            self.metrics.gauge("fleet.replicas").set(len(self.active_shards()))
            self.events.emit(
                FLEET_REBALANCE,
                action="drain_begin",
                shard=name,
                pending=shard.service.pending,
                replicas=len(self.active_shards()),
            )
        shard.service.flush()
        completed = shard.service.wait_idle(timeout=timeout)
        shard.service.close(drain=True)
        shard.state = STOPPED
        with self._lock:
            self._shards.pop(name, None)
            self.events.emit(
                FLEET_REBALANCE,
                action="drain_complete",
                shard=name,
                completed=completed,
                replicas=len(self.active_shards()),
            )

    # -- observation ---------------------------------------------------------

    def shard_stats(self) -> list[dict]:
        """One row per replica (and refresh the labeled fleet gauges)."""
        rows = []
        for shard in self.shards():
            m = shard.service.metrics
            pending = shard.service.pending
            row = {
                "shard": shard.name,
                "state": shard.state,
                "pending": pending,
                "accepted": int(m.counter("serve.accepted").value),
                "served": int(m.counter("serve.served").value),
                "rejected": int(m.counter("serve.rejected").value),
                "failed": int(m.counter("serve.failed").value),
                "flushes": int(m.counter("serve.flushes").value),
                "fallbacks": int(m.counter("serve.fallbacks").value),
                "p99_ms": m.log_histogram("serve.latency_hdr_ms").percentile(99.0),
                "breaker": (
                    shard.service.breaker.state
                    if shard.service.breaker is not None
                    else "disabled"
                ),
            }
            rows.append(row)
            self.metrics.gauge("fleet.shard_pending").labels(shard=shard.name).set(
                pending
            )
            self.metrics.gauge("fleet.shard_served").labels(shard=shard.name).set(
                row["served"]
            )
        return rows

    def ring_occupancy(self) -> dict[str, float]:
        """Arc-length share of the ring per active shard."""
        with self._lock:
            return self.ring.occupancy()

    def latency_histogram(self) -> LogHistogram:
        """Fleet-wide latency HDR rollup (bucket-wise merge across shards)."""
        rollup = LogHistogram("fleet.latency_hdr_ms")
        for shard in self.shards():
            rollup.merge(shard.service.metrics.log_histogram("serve.latency_hdr_ms"))
        return rollup

    def dump_recorders(self, dump_dir, reason: str = "manual") -> list:
        """Dump every shard's flight-recorder rings as one bundle each.

        Returns the bundle paths — feed them (or the parent directory)
        to ``repro postmortem analyze`` for the cross-shard story. Shards
        without a recorder (no ambient one at start) are skipped.
        """
        bundles = []
        for shard in self.shards():
            recorder = shard.service.recorder
            if recorder is not None:
                bundles.append(recorder.dump(dump_dir, reason=reason))
        return bundles

    def refresh_metrics(self) -> None:
        """Refresh the fleet gauges (for exporters polling ``metrics``)."""
        self.shard_stats()
        self.metrics.gauge("fleet.pending").set(self.pending)
        open_breakers = sum(
            1
            for shard in self.shards()
            if shard.service.breaker is not None
            and shard.service.breaker.state != "closed"
        )
        self.metrics.gauge("fleet.breakers_open").set(open_breakers)

    # -- lifecycle -----------------------------------------------------------

    def flush(self) -> None:
        """Force-flush every shard's micro-batcher."""
        for shard in self.shards():
            if shard.state == ACTIVE:
                shard.service.flush()

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until every shard has served out its admitted requests."""
        for shard in self.shards():
            if not shard.service.wait_idle(timeout=timeout):
                return False
        return True

    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the whole fleet; with ``drain`` serve out everything first."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            shards = self.shards()
        for shard in shards:
            shard.service.close(drain=drain, timeout=timeout)
            shard.state = STOPPED

    def __enter__(self) -> "FleetService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    def __repr__(self) -> str:
        return (
            f"FleetService(replicas={self.num_replicas}, "
            f"pending={self.pending}, closed={self._closed})"
        )
