"""Layer 11: the sharded, autoscaling solver fleet.

Scale *out* across device shards the way the paper scales *up* within
one GPU: :class:`FleetService` fronts N independent
:class:`~repro.serve.service.SolverService` replicas behind a
consistent-hash ring keyed on :class:`~repro.serve.request.BatchKey`
(:class:`HashRing`), with fleet-level admission control, graceful shard
drain, and an :class:`Autoscaler` driven by the serving layer's HDR
latency histograms and SLO burn rates.
"""

from repro.fleet.autoscaler import Autoscaler, FleetSignals
from repro.fleet.config import FleetConfig
from repro.fleet.ring import HashRing, key_position, ring_token
from repro.fleet.service import ACTIVE, DRAINING, STOPPED, FleetService, ShardReplica

__all__ = [
    "ACTIVE",
    "DRAINING",
    "STOPPED",
    "Autoscaler",
    "FleetConfig",
    "FleetService",
    "FleetSignals",
    "HashRing",
    "ShardReplica",
    "key_position",
    "ring_token",
]
