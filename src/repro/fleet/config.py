"""Policy knobs of the sharded solver fleet.

:class:`FleetConfig` is frozen, like :class:`~repro.serve.config.
ServeConfig`, so one object can be shared between the router, the
autoscaler and tests without copying. The serve config embedded in it is
the *template* every shard replica is built from; per-shard state that
must not be shared (the :class:`~repro.tune.db.TuningDB` file) is
namespaced per shard by the fleet service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.serve.config import ServeConfig


@dataclass(frozen=True)
class FleetConfig:
    """Configuration of a :class:`~repro.fleet.service.FleetService`.

    Parameters
    ----------
    serve:
        The per-shard :class:`~repro.serve.config.ServeConfig` template.
        Every replica gets its own :class:`~repro.serve.service.
        SolverService` built from this config (own device queue, plan
        cache, micro-batcher, worker pool).
    initial_replicas:
        Shards started when the fleet comes up.
    min_replicas / max_replicas:
        The autoscaler's (and manual scaling's) hard bounds.
    virtual_nodes:
        Virtual nodes per shard on the consistent-hash ring; more vnodes
        = smoother arcs (and marginally slower membership changes).
    max_pending:
        Fleet-level admission bound over the *sum* of per-shard pending
        requests. Past it, :meth:`~repro.fleet.service.FleetService.
        submit` rejects with :class:`~repro.exceptions.
        ServiceSaturatedError` before any shard sees the request —
        fleet backpressure fires first, shard-level saturation stays the
        per-shard hot-spot signal.
    retry_after_ms:
        Retry hint carried by fleet-level saturation rejections.
    tuning_db_path:
        Base path for per-shard tuning databases. Shard ``shard-3`` of
        base ``tuning.json`` persists to ``tuning.shard-3.json`` — one
        namespace per shard, so replicas never contend on one file and a
        shard's tuned geometry follows the keys the ring pins to it.
        ``None`` disables tuned-geometry serving fleet-wide.
    drain_timeout_s:
        How long a graceful drain waits for a departing shard's in-flight
        requests before closing it anyway.
    target_p99_ms:
        The autoscaler's latency objective: scale up while any shard's
        p99 (from its ``serve.latency_hdr_ms`` HDR histogram) sits above
        this, scale down only while every shard sits below half of it.
    high_watermark / low_watermark:
        Utilization thresholds (fleet pending / fleet capacity) for
        scale-up pressure and scale-down relaxation.
    scale_up_patience / scale_down_patience:
        Consecutive pressured (resp. relaxed) evaluations required before
        acting — the hysteresis that stops one burst from thrashing the
        replica count.
    cooldown_evaluations:
        Evaluations ignored after any scaling action (the second half of
        the hysteresis: let the new replica set settle before judging it).
    """

    serve: ServeConfig = field(default_factory=ServeConfig)
    initial_replicas: int = 2
    min_replicas: int = 1
    max_replicas: int = 8
    virtual_nodes: int = 64
    max_pending: int = 4096
    retry_after_ms: float = 5.0
    tuning_db_path: str | None = None
    drain_timeout_s: float = 30.0
    target_p99_ms: float = 500.0
    high_watermark: float = 0.75
    low_watermark: float = 0.25
    scale_up_patience: int = 2
    scale_down_patience: int = 4
    cooldown_evaluations: int = 2

    def __post_init__(self) -> None:
        if self.initial_replicas <= 0:
            raise ValueError(
                f"initial_replicas must be positive, got {self.initial_replicas}"
            )
        if self.min_replicas <= 0:
            raise ValueError(f"min_replicas must be positive, got {self.min_replicas}")
        if not self.min_replicas <= self.max_replicas:
            raise ValueError(
                f"min_replicas ({self.min_replicas}) must not exceed "
                f"max_replicas ({self.max_replicas})"
            )
        if not self.min_replicas <= self.initial_replicas <= self.max_replicas:
            raise ValueError(
                f"initial_replicas ({self.initial_replicas}) must lie in "
                f"[{self.min_replicas}, {self.max_replicas}]"
            )
        if self.virtual_nodes <= 0:
            raise ValueError(f"virtual_nodes must be positive, got {self.virtual_nodes}")
        if self.max_pending <= 0:
            raise ValueError(f"max_pending must be positive, got {self.max_pending}")
        if self.retry_after_ms < 0:
            raise ValueError(
                f"retry_after_ms must be non-negative, got {self.retry_after_ms}"
            )
        if self.drain_timeout_s <= 0:
            raise ValueError(
                f"drain_timeout_s must be positive, got {self.drain_timeout_s}"
            )
        if self.target_p99_ms <= 0:
            raise ValueError(f"target_p99_ms must be positive, got {self.target_p99_ms}")
        if not 0.0 < self.low_watermark < self.high_watermark <= 1.0:
            raise ValueError(
                "watermarks must satisfy 0 < low < high <= 1, got "
                f"low={self.low_watermark}, high={self.high_watermark}"
            )
        if self.scale_up_patience <= 0 or self.scale_down_patience <= 0:
            raise ValueError("scaling patience values must be positive")
        if self.cooldown_evaluations < 0:
            raise ValueError(
                f"cooldown_evaluations must be non-negative, "
                f"got {self.cooldown_evaluations}"
            )

    def shard_tuning_path(self, shard_name: str) -> str | None:
        """The per-shard tuning-database namespace of ``shard_name``."""
        if self.tuning_db_path is None:
            return None
        base = Path(self.tuning_db_path)
        return str(base.with_name(f"{base.stem}.{shard_name}{base.suffix}"))
