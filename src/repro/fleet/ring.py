"""Consistent-hash ring routing :class:`~repro.serve.request.BatchKey`s.

The fleet routes every request to the shard that owns its batch key, so
all requests of one compatibility class coalesce in *one* shard's
micro-batcher and that shard's :class:`~repro.serve.plan_cache.PlanCache`
and :class:`~repro.tune.db.TuningDB` stay hot for exactly the keys it
owns. Plain modulo routing would reshuffle almost every key whenever a
shard joins or leaves (cold caches fleet-wide on every scaling action);
a consistent-hash ring with virtual nodes remaps only ~``1/N`` of the
key space per change, and the virtual nodes keep the per-shard arcs
balanced (the classic Karger/"Dynamo" construction).

Hashing is :mod:`hashlib` SHA-1 — deterministic across processes and
runs, unlike the salted builtin ``hash`` — over a canonical string form
of the key, so a request routes identically wherever it is hashed.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable

__all__ = ["HashRing", "key_position", "ring_token"]

#: The ring is the integer interval ``[0, 2**64)``.
_RING_BITS = 64
_RING_SIZE = 1 << _RING_BITS


def _hash64(token: str) -> int:
    """Deterministic 64-bit ring position of an arbitrary token."""
    digest = hashlib.sha1(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def ring_token(key: object) -> str:
    """A canonical, process-stable string form of a routing key.

    :class:`~repro.serve.request.BatchKey` is a frozen dataclass whose
    ``repr`` enumerates every field deterministically; strings pass
    through unchanged.
    """
    return key if isinstance(key, str) else repr(key)


def key_position(key: object) -> int:
    """Ring position of a routing key (``BatchKey`` or string)."""
    return _hash64(ring_token(key))


class HashRing:
    """A consistent-hash ring with virtual nodes.

    Not thread-safe on its own: the owning
    :class:`~repro.fleet.service.FleetService` serializes mutation and
    lookup under its admission lock. Lookup is ``O(log(nodes x vnodes))``
    via bisection over the sorted virtual-node positions.
    """

    def __init__(self, virtual_nodes: int = 64) -> None:
        if virtual_nodes <= 0:
            raise ValueError(f"virtual_nodes must be positive, got {virtual_nodes}")
        self.virtual_nodes = virtual_nodes
        self._positions: list[int] = []  # sorted virtual-node positions
        self._owner: dict[int, str] = {}  # position -> node name

    # -- membership ----------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        """Member node names, sorted."""
        return sorted(set(self._owner.values()))

    def __len__(self) -> int:
        return len(set(self._owner.values()))

    def __contains__(self, node: str) -> bool:
        return node in set(self._owner.values())

    def _vnode_positions(self, node: str) -> list[int]:
        return [self._hash_vnode(node, i) for i in range(self.virtual_nodes)]

    @staticmethod
    def _hash_vnode(node: str, index: int) -> int:
        return _hash64(f"{node}#vnode{index}")

    def add(self, node: str) -> None:
        """Insert ``node``'s virtual nodes (idempotence is an error)."""
        if node in self:
            raise ValueError(f"node {node!r} already on the ring")
        for position in self._vnode_positions(node):
            # SHA-1 collisions between distinct vnode tokens are not a
            # practical concern; last-write-wins keeps the map consistent
            self._owner[position] = node
        self._positions = sorted(self._owner)

    def remove(self, node: str) -> None:
        """Remove ``node``'s virtual nodes; its arcs fall to the successors."""
        if node not in self:
            raise KeyError(f"node {node!r} not on the ring")
        self._owner = {p: n for p, n in self._owner.items() if n != node}
        self._positions = sorted(self._owner)

    # -- routing -------------------------------------------------------------

    def node_for(self, key: object) -> str:
        """The node owning ``key``: first virtual node clockwise of its hash."""
        if not self._positions:
            raise LookupError("hash ring is empty (no shards)")
        position = key_position(key)
        index = bisect_right(self._positions, position)
        if index == len(self._positions):
            index = 0  # wrap past the top of the ring
        return self._owner[self._positions[index]]

    def assignments(self, keys: Iterable[object]) -> dict[str, str]:
        """``{ring_token(key): owner}`` for a set of keys (remap studies)."""
        return {ring_token(key): self.node_for(key) for key in keys}

    # -- introspection -------------------------------------------------------

    def occupancy(self) -> dict[str, float]:
        """Exact arc-length share of the ring owned by each node.

        Each virtual node owns the arc from its predecessor (exclusive)
        to itself (inclusive); shares sum to 1.0.
        """
        if not self._positions:
            return {}
        shares: dict[str, float] = {name: 0.0 for name in self.nodes}
        previous = self._positions[-1] - _RING_SIZE  # wrap-around arc
        for position in self._positions:
            shares[self._owner[position]] += (position - previous) / _RING_SIZE
            previous = position
        return shares

    def __repr__(self) -> str:
        return (
            f"HashRing(nodes={len(self)}, virtual_nodes={self.virtual_nodes}, "
            f"positions={len(self._positions)})"
        )
