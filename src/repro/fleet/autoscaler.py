"""The replica autoscaler: HDR latency + SLO burn + utilization, with hysteresis.

One control loop, three pressure signals, all read from instruments the
earlier layers already maintain:

* **Tail latency** — each shard's ``serve.latency_hdr_ms``
  :class:`~repro.observability.metrics.LogHistogram` p99 against
  ``FleetConfig.target_p99_ms``.
* **SLO burn** — a per-shard :class:`~repro.telemetry.slo.SloMonitor`
  over :func:`~repro.telemetry.slo.default_slos`; a firing multi-window
  burn-rate alert is scale-up pressure regardless of the instantaneous
  p99 (the budget is going, act before the page).
* **Utilization** — fleet pending over fleet admission capacity
  (``replicas x serve.max_pending``) against the watermarks.

Decisions are damped twice: *patience* (N consecutive pressured/relaxed
evaluations before acting — one burst never scales) and *cooldown*
(evaluations ignored after any action — the new replica set gets to
settle before being judged). Scale-down drains gracefully through
:meth:`~repro.fleet.service.FleetService.scale_down`, so shedding a
replica never drops an admitted request.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.telemetry.slo import SloMonitor, default_slos

#: Decision verdicts returned by :meth:`Autoscaler.evaluate`.
SCALE_UP = "scale_up"
SCALE_DOWN = "scale_down"
HOLD = "hold"
COOLDOWN = "cooldown"


@dataclass
class FleetSignals:
    """What the autoscaler saw at one evaluation (for logs and tests)."""

    replicas: int
    pending: int
    utilization: float
    worst_p99_ms: float  # NaN with no latency samples yet
    burning_shards: list[str] = field(default_factory=list)

    @property
    def burning(self) -> bool:
        return bool(self.burning_shards)


class Autoscaler:
    """Scale a :class:`~repro.fleet.service.FleetService` between its bounds.

    Usage (manual stepping — benches and tests)::

        scaler = Autoscaler(fleet)
        for _ in range(10):
            scaler.evaluate()
            ...

    or as a background control loop::

        scaler.start(interval_s=0.5)
        ...
        scaler.stop()

    ``clock`` is injectable so tests can drive the SLO monitors' burn
    windows over synthetic timelines.
    """

    def __init__(
        self,
        fleet,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.fleet = fleet
        self.config = fleet.config
        self._clock = clock
        self._monitors: dict[str, SloMonitor] = {}
        self._pressure_streak = 0
        self._relaxed_streak = 0
        self._cooldown = 0
        self.decisions: list[str] = []
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- signal collection ----------------------------------------------------

    def _monitor_for(self, shard) -> SloMonitor:
        monitor = self._monitors.get(shard.name)
        if monitor is None:
            monitor = SloMonitor(
                shard.service.metrics,
                specs=default_slos(latency_threshold_ms=self.config.target_p99_ms),
                clock=self._clock,
            )
            self._monitors[shard.name] = monitor
        return monitor

    def observe(self, now: float | None = None) -> FleetSignals:
        """Collect the three pressure signals without deciding anything."""
        shards = self.fleet.active_shards()
        # forget monitors of shards that drained away
        alive = {s.name for s in shards}
        for name in list(self._monitors):
            if name not in alive:
                del self._monitors[name]

        worst_p99 = math.nan
        burning: list[str] = []
        for shard in shards:
            hdr = shard.service.metrics.log_histogram("serve.latency_hdr_ms")
            p99 = hdr.percentile(99.0)
            if not math.isnan(p99) and (math.isnan(worst_p99) or p99 > worst_p99):
                worst_p99 = p99
            statuses = self._monitor_for(shard).evaluate(now=now)
            if any(status.burning for status in statuses):
                burning.append(shard.name)

        pending = self.fleet.pending
        capacity = max(1, len(shards)) * self.config.serve.max_pending
        signals = FleetSignals(
            replicas=len(shards),
            pending=pending,
            utilization=pending / capacity,
            worst_p99_ms=worst_p99,
            burning_shards=burning,
        )
        metrics = self.fleet.metrics
        metrics.gauge("fleet.utilization").set(signals.utilization)
        if not math.isnan(worst_p99):
            metrics.gauge("fleet.worst_p99_ms").set(worst_p99)
        return signals

    # -- the control decision -------------------------------------------------

    def _pressured(self, signals: FleetSignals) -> bool:
        hot_tail = (
            not math.isnan(signals.worst_p99_ms)
            and signals.worst_p99_ms > self.config.target_p99_ms
        )
        return (
            hot_tail
            or signals.utilization > self.config.high_watermark
            or signals.burning
        )

    def _relaxed(self, signals: FleetSignals) -> bool:
        cool_tail = (
            math.isnan(signals.worst_p99_ms)
            or signals.worst_p99_ms < 0.5 * self.config.target_p99_ms
        )
        return (
            cool_tail
            and signals.utilization < self.config.low_watermark
            and not signals.burning
        )

    def evaluate(self, now: float | None = None) -> str:
        """One control-loop step: observe, damp, maybe scale.

        Returns the verdict: ``"scale_up"`` / ``"scale_down"`` when an
        action was taken, ``"cooldown"`` while settling after one, and
        ``"hold"`` otherwise.
        """
        signals = self.observe(now=now)
        if self._cooldown > 0:
            self._cooldown -= 1
            self._pressure_streak = 0
            self._relaxed_streak = 0
            return self._record(COOLDOWN)

        if self._pressured(signals):
            self._pressure_streak += 1
            self._relaxed_streak = 0
        elif self._relaxed(signals):
            self._relaxed_streak += 1
            self._pressure_streak = 0
        else:
            self._pressure_streak = 0
            self._relaxed_streak = 0

        if (
            self._pressure_streak >= self.config.scale_up_patience
            and signals.replicas < self.config.max_replicas
        ):
            self.fleet.scale_up(1)
            self._after_action()
            return self._record(SCALE_UP)
        if (
            self._relaxed_streak >= self.config.scale_down_patience
            and signals.replicas > self.config.min_replicas
        ):
            self.fleet.scale_down(1)
            self._after_action()
            return self._record(SCALE_DOWN)
        return self._record(HOLD)

    def _after_action(self) -> None:
        self._pressure_streak = 0
        self._relaxed_streak = 0
        self._cooldown = self.config.cooldown_evaluations

    def _record(self, decision: str) -> str:
        self.decisions.append(decision)
        return decision

    # -- background loop ------------------------------------------------------

    def start(self, interval_s: float = 1.0) -> None:
        """Run :meth:`evaluate` every ``interval_s`` on a daemon thread."""
        if self._thread is not None:
            raise RuntimeError("autoscaler already running")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval_s):
                try:
                    self.evaluate()
                except Exception:  # the fleet may be closing under us
                    return

        self._thread = threading.Thread(
            target=loop, name="fleet-autoscaler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the background loop (no-op when not running)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
