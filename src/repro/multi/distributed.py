"""Distributed batched solves and the multi-GPU timing model.

The distribution strategy is the paper's: block-partition the batch over
ranks (every shard keeps the shared sparsity pattern — no rewriting),
solve independently, gather the solutions. During the solve the ranks
exchange nothing; the only interconnect traffic is the initial scatter of
matrix values and right-hand sides and the final gather of solutions,
which :func:`estimate_multi_gpu` charges against an interconnect
bandwidth on top of the slowest rank's device time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dispatch import BatchSolverFactory
from repro.core.matrix.base import BatchedMatrix
from repro.core.solver.base import BatchSolveResult
from repro.hw.specs import GpuSpec
from repro.hw.timing import TimingBreakdown, estimate_solve
from repro.multi.comm import SimWorld
from repro.observability.context import current_trace_context
from repro.observability.tracer import current_tracer

#: Export lane (Chrome-trace ``tid``) of rank 0; rank ``k`` lands on
#: ``_LANE_BASE + k`` so Perfetto shows one row per simulated device.
_LANE_BASE = 100


def partition_batch(num_batch: int, num_ranks: int) -> list[slice]:
    """Contiguous, balanced block partition of the batch index space."""
    if num_batch <= 0 or num_ranks <= 0:
        raise ValueError(
            f"num_batch and num_ranks must be positive, got ({num_batch}, {num_ranks})"
        )
    if num_ranks > num_batch:
        raise ValueError(
            f"more ranks ({num_ranks}) than batch items ({num_batch}); "
            "shrink the world or grow the batch"
        )
    base, extra = divmod(num_batch, num_ranks)
    slices = []
    start = 0
    for rank in range(num_ranks):
        count = base + (1 if rank < extra else 0)
        slices.append(slice(start, start + count))
        start += count
    return slices


@dataclass
class DistributedSolveResult:
    """Gathered outcome of a distributed batched solve."""

    x: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray
    per_rank: list[BatchSolveResult]
    comm_bytes: float
    partitions: list[slice]

    @property
    def all_converged(self) -> bool:
        """True when every system on every rank converged."""
        return bool(self.converged.all())


def solve_distributed(
    world: SimWorld,
    factory: BatchSolverFactory,
    matrix: BatchedMatrix,
    b: np.ndarray,
    x0: np.ndarray | None = None,
) -> DistributedSolveResult:
    """Scatter, solve per rank, gather — the paper's multi-GPU scheme.

    With a tracer installed, the whole operation is one ``multi`` span and
    every rank's solve runs inside a *lane* span (``tid`` = rank lane), so
    the exported trace shows one timeline row per simulated device — the
    explicit-scaling picture of the paper's Fig. 5 study.
    """
    tracer = current_tracer()
    with tracer.span(
        "multi.solve_distributed",
        category="multi",
        num_ranks=world.size,
        num_batch=matrix.num_batch,
    ) as span:
        # when a request-scoped trace context is ambient (a serve flush, a
        # traced client call), fan-in onto the shared multi span is a link;
        # the per-rank lane spans below inherit the trace via parentage
        ctx = current_trace_context()
        if ctx is not None:
            span.link(ctx)
        b = matrix.check_vector("b", b)
        parts = partition_batch(matrix.num_batch, world.size)

        shards = [matrix.take_batch(sl) for sl in parts]
        rhs_chunks = [b[sl] for sl in parts]
        world.scatter(shards)
        world.scatter(rhs_chunks)
        guess_chunks = None
        if x0 is not None:
            x0 = matrix.check_vector("x0", x0)
            guess_chunks = [x0[sl] for sl in parts]
            world.scatter(guess_chunks)

        def rank_solve(comm):
            shard = shards[comm.rank]
            guess = guess_chunks[comm.rank] if guess_chunks is not None else None
            with tracer.span(
                f"rank{comm.rank}.solve",
                category="multi.lane",
                tid=_LANE_BASE + comm.rank,
                rank=comm.rank,
                batch_items=shard.num_batch,
            ):
                return factory.solve(shard, rhs_chunks[comm.rank], x0=guess)

        per_rank = world.run(rank_solve)
        world.gather([r.x for r in per_rank])

        span.set("comm_bytes", world.total_bytes)
        if tracer.enabled:
            tracer.counter("multi.comm_bytes", bytes=world.total_bytes)
            tracer.metrics.counter("multi.distributed_solves").inc()
            tracer.metrics.histogram("multi.shard_items").observe_many(
                float(sl.stop - sl.start) for sl in parts
            )

    x = np.vstack([r.x for r in per_rank])
    iterations = np.concatenate([r.iterations for r in per_rank])
    converged = np.concatenate([r.converged for r in per_rank])
    return DistributedSolveResult(
        x=x,
        iterations=iterations,
        converged=converged,
        per_rank=per_rank,
        comm_bytes=world.total_bytes,
        partitions=parts,
    )


@dataclass(frozen=True)
class MultiGpuTiming:
    """Modeled wall-clock of a multi-GPU distributed solve."""

    num_ranks: int
    total_seconds: float
    slowest_rank_seconds: float
    transfer_seconds: float
    per_rank: list[TimingBreakdown]

    def speedup_over(self, single: "MultiGpuTiming") -> float:
        """Speedup relative to another (typically 1-rank) configuration."""
        return single.total_seconds / self.total_seconds


def estimate_multi_gpu(
    spec: GpuSpec,
    factory: BatchSolverFactory,
    matrix: BatchedMatrix,
    result_single: BatchSolveResult,
    num_batch: int,
    num_ranks: int,
    interconnect_gbps: float = 64.0,
    host_staging: bool = True,
) -> MultiGpuTiming:
    """Model ``num_ranks`` GPUs of type ``spec`` over a batch of ``num_batch``.

    Per-rank device time comes from :func:`repro.hw.timing.estimate_solve`
    on each rank's shard size; ranks run concurrently so the device part
    is the slowest rank. With ``host_staging`` each rank moves its own
    shard (matrix values + RHS in, solutions out) over its own
    interconnect link (``interconnect_gbps``, e.g. PCIe Gen5 x16 ~ 64 GB/s
    per direction), concurrently with the other ranks; in the
    paper's application scenario the matrices are produced on-device by
    the outer integrator, so ``host_staging=False`` drops that term.
    """
    if interconnect_gbps <= 0:
        raise ValueError(f"interconnect_gbps must be positive, got {interconnect_gbps}")
    parts = partition_batch(num_batch, num_ranks)
    solver = factory.create(matrix)

    per_rank = [
        estimate_solve(spec, solver, result_single, num_batch=sl.stop - sl.start)
        for sl in parts
    ]
    slowest = max(t.total_seconds for t in per_rank)

    if host_staging:
        n = matrix.num_rows
        per_item_bytes = (
            matrix.value_bytes * matrix.nnz_per_item  # matrix values
            + 2 * matrix.value_bytes * n              # b in, x out
        )
        largest_shard = max(sl.stop - sl.start for sl in parts)
        transfer_seconds = per_item_bytes * largest_shard / (interconnect_gbps * 1e9)
    else:
        transfer_seconds = 0.0

    return MultiGpuTiming(
        num_ranks=num_ranks,
        total_seconds=slowest + transfer_seconds,
        slowest_rank_seconds=slowest,
        transfer_seconds=transfer_seconds,
        per_rank=per_rank,
    )
