"""Multi-GPU / multi-rank distribution of batched solves.

The paper's scaling discussion (Section 4.2) argues that the batched
solvers "can easily scale to multiple GPUs as distributing these batched
matrices over the MPI ranks is trivial and no additional communication is
necessary". This package makes that claim executable:

* :mod:`repro.multi.comm` — a simulated in-process MPI world
  (:class:`SimWorld`): ranks, scatter/gather/broadcast/allreduce with
  communication-volume accounting (the mpi4py buffer-protocol idioms,
  without needing an MPI launcher).
* :mod:`repro.multi.distributed` — block-partitioning of a batched matrix
  over ranks (zero pattern rewriting, courtesy of the shared-pattern
  formats), per-rank batched solves, result gathering, and a multi-GPU
  timing model (per-rank device estimate + scatter/gather transfers over
  an interconnect).
"""

from repro.multi.comm import SimWorld, SimComm
from repro.multi.distributed import (
    DistributedSolveResult,
    MultiGpuTiming,
    estimate_multi_gpu,
    partition_batch,
    solve_distributed,
)

__all__ = [
    "SimWorld",
    "SimComm",
    "DistributedSolveResult",
    "MultiGpuTiming",
    "estimate_multi_gpu",
    "partition_batch",
    "solve_distributed",
]
