"""A simulated MPI world with communication-volume accounting.

:class:`SimWorld` hosts ``size`` in-process ranks. A collective is driven
from the caller's side: the world exposes mpi4py-flavoured operations
(scatter, gather, bcast, allreduce) that move NumPy payloads between
per-rank mailboxes while tallying the bytes that would cross the
interconnect. The multi-GPU timing model charges those bytes against an
interconnect bandwidth.

There is no concurrency — ranks are simulated sequentially, which is
exactly right for the batched-solver use case: the paper's point is that
the ranks never need to talk *during* a solve, only for the initial
scatter and final gather.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np


@dataclass
class SimComm:
    """The per-rank view handed to rank functions."""

    rank: int
    size: int
    world: "SimWorld"

    def send_bytes(self, nbytes: float, dst: int) -> None:
        """Account an explicit point-to-point transfer."""
        self.world.record_transfer(self.rank, dst, nbytes)


class SimWorld:
    """An in-process MPI world of ``size`` ranks."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"world size must be positive, got {size}")
        self.size = size
        self.bytes_by_link: dict[tuple[int, int], float] = {}
        self.collective_log: list[str] = []

    # -- accounting -----------------------------------------------------------

    def record_transfer(self, src: int, dst: int, nbytes: float) -> None:
        """Tally ``nbytes`` moved from rank ``src`` to rank ``dst``."""
        for r in (src, dst):
            if not 0 <= r < self.size:
                raise ValueError(f"rank {r} outside [0, {self.size})")
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if src != dst:  # local "transfers" are free
            key = (src, dst)
            self.bytes_by_link[key] = self.bytes_by_link.get(key, 0.0) + nbytes
        self.collective_log.append(f"p2p {src}->{dst} {nbytes:.0f}B")

    @property
    def total_bytes(self) -> float:
        """All bytes that crossed the interconnect."""
        return sum(self.bytes_by_link.values())

    # -- collectives ------------------------------------------------------------

    def scatter(self, chunks: list[Any], root: int = 0) -> list[Any]:
        """Root distributes one chunk per rank; returns the per-rank values."""
        if len(chunks) != self.size:
            raise ValueError(
                f"scatter needs exactly {self.size} chunks, got {len(chunks)}"
            )
        for rank, chunk in enumerate(chunks):
            self.record_transfer(root, rank, _payload_bytes(chunk))
        self.collective_log.append(f"scatter root={root}")
        return list(chunks)

    def gather(self, per_rank: list[Any], root: int = 0) -> list[Any]:
        """Every rank sends its value to root; returns the gathered list."""
        if len(per_rank) != self.size:
            raise ValueError(
                f"gather needs exactly {self.size} values, got {len(per_rank)}"
            )
        for rank, value in enumerate(per_rank):
            self.record_transfer(rank, root, _payload_bytes(value))
        self.collective_log.append(f"gather root={root}")
        return list(per_rank)

    def bcast(self, value: Any, root: int = 0) -> list[Any]:
        """Root broadcasts ``value``; every rank receives it."""
        nbytes = _payload_bytes(value)
        for rank in range(self.size):
            self.record_transfer(root, rank, nbytes)
        self.collective_log.append(f"bcast root={root}")
        return [value for _ in range(self.size)]

    def allreduce(self, per_rank: list[Any], op: Callable[[Any, Any], Any]) -> Any:
        """Reduce across ranks; every rank gets the result (cost: ring)."""
        if len(per_rank) != self.size:
            raise ValueError(
                f"allreduce needs exactly {self.size} values, got {len(per_rank)}"
            )
        acc = per_rank[0]
        nbytes = _payload_bytes(per_rank[0])
        for rank in range(1, self.size):
            acc = op(acc, per_rank[rank])
            self.record_transfer(rank, (rank + 1) % self.size, nbytes)
        self.collective_log.append("allreduce")
        return acc

    # -- SPMD driver --------------------------------------------------------------

    def run(self, fn: Callable[[SimComm], Any]) -> list[Any]:
        """Run ``fn(comm)`` on every rank (sequentially); collect returns."""
        return [fn(SimComm(rank, self.size, self)) for rank in range(self.size)]


def _payload_bytes(value: Any) -> float:
    """Size of a payload as it would cross the wire."""
    if value is None:
        return 0.0
    if isinstance(value, np.ndarray):
        return float(value.nbytes)
    if isinstance(value, (list, tuple)):
        return float(sum(_payload_bytes(v) for v in value))
    if isinstance(value, (int, float, np.generic)):
        return 8.0
    if hasattr(value, "storage_bytes"):  # batched matrices
        return float(value.storage_bytes)
    raise TypeError(f"cannot size payload of type {type(value).__name__}")
