"""A mini batched BDF integrator (the SUNDIALS role in the paper's stack).

Section 2 of the paper describes the use case: reactive-flow codes
operator-split the chemistry, leaving one stiff ODE system per mesh cell;
implicit BDF time stepping solves a nonlinear system per step via Newton,
whose linear systems share a sparsity pattern across cells — the batched
linear solver's job. This module provides that outer loop:

* :class:`BatchedOde` — user-supplied batched right-hand side ``f(t, y)``
  and Jacobian ``J(t, y)`` (dense ``(nb, n, n)``),
* :class:`BdfIntegrator` — fixed-step BDF1/BDF2 with a modified-Newton
  inner loop whose linear systems ``(I - h*beta*J) d = rhs`` are solved
  by any configured batched solver, warm-started from the previous Newton
  iterate (the initial-guess advantage the paper argues for iterative
  batched solvers),
* :func:`robertson_batch` — the classic stiff Robertson kinetics problem
  with per-item rate constants, as a ready-made batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.dispatch import BatchSolverFactory
from repro.core.matrix import BatchCsr
from repro.exceptions import ConvergenceError


@dataclass
class BatchedOde:
    """A batch of ODE systems ``y' = f(t, y)`` sharing one structure."""

    num_batch: int
    num_dofs: int
    rhs: Callable[[float, np.ndarray], np.ndarray]
    jacobian: Callable[[float, np.ndarray], np.ndarray]
    y0: np.ndarray

    def __post_init__(self) -> None:
        self.y0 = np.asarray(self.y0, dtype=np.float64)
        if self.y0.shape != (self.num_batch, self.num_dofs):
            raise ValueError(
                f"y0 must have shape ({self.num_batch}, {self.num_dofs}), "
                f"got {self.y0.shape}"
            )


#: BDF coefficients: y_n = sum(alpha_j * y_{n-j}) + h * beta * f(t_n, y_n)
_BDF_COEFFS = {
    1: ((1.0,), 1.0),
    2: ((4.0 / 3.0, -1.0 / 3.0), 2.0 / 3.0),
}


@dataclass
class BdfResult:
    """Trajectory and solver statistics of one integration."""

    times: np.ndarray
    states: np.ndarray  # (num_steps + 1, nb, n)
    newton_iterations: int = 0
    linear_iterations_total: float = 0.0
    linear_solves: int = 0
    linear_iteration_history: list[float] = field(default_factory=list)
    steps_accepted: int = 0
    steps_rejected: int = 0
    step_sizes: list[float] = field(default_factory=list)

    @property
    def final_state(self) -> np.ndarray:
        """State at the last accepted time."""
        return self.states[-1]

    @property
    def mean_linear_iterations(self) -> float:
        """Average batched-solver iterations per Newton linear solve."""
        if self.linear_solves == 0:
            return 0.0
        return self.linear_iterations_total / self.linear_solves


class BdfIntegrator:
    """Fixed-step BDF1/BDF2 with modified Newton and a batched linear solver.

    Parameters
    ----------
    factory:
        The dispatch factory building the batched linear solver (e.g.
        BiCGSTAB + scalar Jacobi, as the paper's application uses).
    order:
        1 (backward Euler) or 2; order 2 self-starts with one BDF1 step.
    newton_tol / max_newton:
        Nonlinear convergence control (max norm of the Newton update).
    warm_start:
        Use the previous Newton update as the linear initial guess —
        switching this off is the ablation showing why iterative batched
        solvers fit the outer loop.
    refresh_jacobian:
        ``"iteration"`` (default) re-evaluates the iteration matrix every
        Newton iteration (full Newton — robust on very stiff kinetics like
        Robertson, whose dominant Jacobian terms only appear after the
        first correction); ``"step"`` freezes it per time step (classic
        modified Newton, cheaper, fine for mildly stiff problems).
    """

    def __init__(
        self,
        factory: BatchSolverFactory | None = None,
        order: int = 1,
        newton_tol: float = 1e-10,
        max_newton: int = 20,
        warm_start: bool = True,
        refresh_jacobian: str = "iteration",
    ) -> None:
        if order not in _BDF_COEFFS:
            raise ValueError(f"order must be one of {sorted(_BDF_COEFFS)}, got {order}")
        if refresh_jacobian not in ("iteration", "step"):
            raise ValueError(
                f"refresh_jacobian must be 'iteration' or 'step', got {refresh_jacobian!r}"
            )
        self.factory = factory if factory is not None else BatchSolverFactory(
            solver="bicgstab", preconditioner="jacobi", tolerance=1e-12
        )
        self.order = order
        self.newton_tol = float(newton_tol)
        self.max_newton = int(max_newton)
        self.warm_start = bool(warm_start)
        self.refresh_jacobian = refresh_jacobian

    def integrate(
        self, ode: BatchedOde, t_end: float, num_steps: int, t0: float = 0.0
    ) -> BdfResult:
        """Advance all batch items from ``t0`` to ``t_end`` in fixed steps."""
        if num_steps <= 0:
            raise ValueError(f"num_steps must be positive, got {num_steps}")
        if t_end <= t0:
            raise ValueError(f"t_end ({t_end}) must exceed t0 ({t0})")
        h = (t_end - t0) / num_steps
        times = t0 + h * np.arange(num_steps + 1)
        states = np.empty((num_steps + 1, ode.num_batch, ode.num_dofs))
        states[0] = ode.y0
        result = BdfResult(times=times, states=states)

        for step in range(1, num_steps + 1):
            order = 1 if step < self.order else self.order
            alphas, beta = _BDF_COEFFS[order]
            history = sum(
                alpha * states[step - 1 - j] for j, alpha in enumerate(alphas)
            )
            t_new = times[step]
            y = states[step - 1].copy()  # predictor: previous state
            self._newton(ode, t_new, h * beta, history, y, result)
            states[step] = y
        return result

    def integrate_adaptive(
        self,
        ode: BatchedOde,
        t_end: float,
        t0: float = 0.0,
        h0: float | None = None,
        rtol: float = 1e-6,
        atol: float = 1e-9,
        max_steps: int = 100_000,
        safety: float = 0.85,
    ) -> BdfResult:
        """Error-controlled integration with step-doubling estimation.

        The production-SUNDIALS behaviour in miniature: every step is taken
        once with ``h`` and twice with ``h/2`` (always BDF1 inside the
        controller — the extrapolation order is then known exactly); the
        difference yields a local-error estimate against the mixed
        tolerance ``atol + rtol * |y|``, steps are accepted/rejected and
        ``h`` is rescaled with the standard power law. The trajectory is
        recorded at the accepted (variable) times.
        """
        if t_end <= t0:
            raise ValueError(f"t_end ({t_end}) must exceed t0 ({t0})")
        if rtol <= 0 or atol <= 0:
            raise ValueError("rtol and atol must be positive")
        span = t_end - t0
        h = float(h0) if h0 is not None else span / 100.0
        h = min(h, span)

        times = [t0]
        states = [ode.y0.copy()]
        result = BdfResult(times=np.zeros(0), states=np.zeros(0))

        t = t0
        y = ode.y0.copy()
        order = 1  # the controller uses BDF1 sub-steps (known order)
        for _ in range(max_steps):
            if t >= t_end - 1e-14 * span:
                break
            h = min(h, t_end - t)

            y_full = self._be_step(ode, t, h, y, result)
            y_half = self._be_step(ode, t, h / 2, y, result)
            y_half = self._be_step(ode, t + h / 2, h / 2, y_half, result)

            scale = atol + rtol * np.maximum(np.abs(y), np.abs(y_half))
            err = np.max(np.abs(y_full - y_half) / scale) / (2.0**order - 1.0)

            if err <= 1.0:
                t += h
                # local extrapolation: the two-half-step solution is O(h^2)
                y = y_half
                times.append(t)
                states.append(y.copy())
                result.steps_accepted += 1
                result.step_sizes.append(h)
            else:
                result.steps_rejected += 1
            factor = safety * (1.0 / max(err, 1e-10)) ** (1.0 / (order + 1))
            h *= min(5.0, max(0.2, factor))
        else:
            raise ConvergenceError(
                f"adaptive BDF exceeded {max_steps} steps before reaching {t_end}"
            )

        result.times = np.asarray(times)
        result.states = np.asarray(states)
        return result

    def _be_step(
        self,
        ode: BatchedOde,
        t: float,
        h: float,
        y: np.ndarray,
        result: BdfResult,
    ) -> np.ndarray:
        """One backward-Euler step from (t, y); returns the new state."""
        _, beta = _BDF_COEFFS[1]
        y_new = y.copy()
        self._newton(ode, t + h, h * beta, y.copy(), y_new, result)
        return y_new

    def _newton(
        self,
        ode: BatchedOde,
        t_new: float,
        hbeta: float,
        history: np.ndarray,
        y: np.ndarray,
        result: BdfResult,
    ) -> None:
        """Newton with a batched linear solve per correction.

        The iteration matrix ``I - h*beta*J`` is rebuilt per Newton
        iteration (full Newton) or once per step (modified Newton),
        depending on ``refresh_jacobian``. Either way every rebuild keeps
        the shared sparsity pattern, which is what makes the batched
        formats applicable.
        """
        nb, n = y.shape
        eye = np.eye(n)

        def build_solver(state):
            jac = np.asarray(ode.jacobian(t_new, state))
            matrix = BatchCsr.from_dense(eye[None, :, :] - hbeta * jac)
            return self.factory.create(matrix)

        solver = build_solver(y)
        guess = None
        for newton_iter in range(self.max_newton):
            residual = y - history - hbeta * ode.rhs(t_new, y)
            if np.max(np.abs(residual)) <= self.newton_tol:
                return
            if self.refresh_jacobian == "iteration" and newton_iter > 0:
                solver = build_solver(y)
            solve = solver.solve(residual, x0=guess if self.warm_start else None)
            delta = solve.x
            result.newton_iterations += 1
            result.linear_solves += 1
            mean_iters = float(np.mean(solve.iterations))
            result.linear_iterations_total += mean_iters
            result.linear_iteration_history.append(mean_iters)
            y -= delta
            guess = delta
            if np.max(np.abs(delta)) <= self.newton_tol:
                return
        raise ConvergenceError(
            f"Newton failed to converge within {self.max_newton} iterations "
            f"at t = {t_new}"
        )


def robertson_batch(num_batch: int = 16, seed: int = 0, spread: float = 0.2) -> BatchedOde:
    """The Robertson stiff kinetics problem, batched with varied rates.

    ``y1' = -k1 y1 + k3 y2 y3``, ``y2' = k1 y1 - k2 y2^2 - k3 y2 y3``,
    ``y3' = k2 y2^2``; the canonical rates (4e-2, 3e7, 1e4) are perturbed
    per batch item by up to ``spread`` relative, so items are distinct but
    share the (dense 3x3) structure.
    """
    rng = np.random.default_rng(seed)
    factors = 1.0 + spread * (2.0 * rng.random((num_batch, 3)) - 1.0)
    k1 = 4.0e-2 * factors[:, 0]
    k2 = 3.0e7 * factors[:, 1]
    k3 = 1.0e4 * factors[:, 2]

    def rhs(t: float, y: np.ndarray) -> np.ndarray:
        y1, y2, y3 = y[:, 0], y[:, 1], y[:, 2]
        f = np.empty_like(y)
        f[:, 0] = -k1 * y1 + k3 * y2 * y3
        f[:, 1] = k1 * y1 - k2 * y2 * y2 - k3 * y2 * y3
        f[:, 2] = k2 * y2 * y2
        return f

    def jacobian(t: float, y: np.ndarray) -> np.ndarray:
        y1, y2, y3 = y[:, 0], y[:, 1], y[:, 2]
        jac = np.zeros((num_batch, 3, 3))
        jac[:, 0, 0] = -k1
        jac[:, 0, 1] = k3 * y3
        jac[:, 0, 2] = k3 * y2
        jac[:, 1, 0] = k1
        jac[:, 1, 1] = -2.0 * k2 * y2 - k3 * y3
        jac[:, 1, 2] = -k3 * y2
        jac[:, 2, 1] = 2.0 * k2 * y2
        return jac

    y0 = np.zeros((num_batch, 3))
    y0[:, 0] = 1.0
    return BatchedOde(num_batch=num_batch, num_dofs=3, rhs=rhs, jacobian=jacobian, y0=y0)
