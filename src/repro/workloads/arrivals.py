"""Shared arrival processes and request synthesis for serving benchmarks.

``bench_serve.py`` and ``bench_fleet_scaling.py`` drive services with
paced open-loop workloads; this module is their single source of truth
for *when* requests arrive (uniform, seeded Poisson, bursty) and *what*
arrives (perturbed shared-pattern stencil systems), so the two benches
measure the same traffic and only differ in the service under test.

All generators return **offsets in seconds from the workload start**, so
pacing is one loop: sleep until ``start + offset[i]``, submit request
``i`` (:func:`pace`).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "uniform_offsets",
    "poisson_offsets",
    "bursty_offsets",
    "diurnal_offsets",
    "pace",
    "stencil_pattern",
    "make_request",
    "keyed_requests",
]


def _check(rate_rps: float, num_requests: int) -> None:
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps}")
    if num_requests < 0:
        raise ValueError(f"num_requests must be non-negative, got {num_requests}")


def uniform_offsets(rate_rps: float, num_requests: int) -> np.ndarray:
    """Deterministic constant pacing: request ``i`` arrives at ``i/rate``."""
    _check(rate_rps, num_requests)
    return np.arange(num_requests, dtype=np.float64) / rate_rps


def poisson_offsets(
    rate_rps: float, num_requests: int, rng: np.random.Generator
) -> np.ndarray:
    """A seeded Poisson process: i.i.d. exponential interarrivals at ``rate``.

    The memoryless arrivals real open-loop traffic shows — short-term
    clumping around the same long-run rate as :func:`uniform_offsets`.
    """
    _check(rate_rps, num_requests)
    gaps = rng.exponential(scale=1.0 / rate_rps, size=num_requests)
    offsets = np.cumsum(gaps)
    return offsets - offsets[0] if num_requests else offsets


def bursty_offsets(
    rate_rps: float,
    num_requests: int,
    rng: np.random.Generator,
    burst_factor: float = 8.0,
    burst_fraction: float = 0.25,
    mean_phase_requests: int = 16,
) -> np.ndarray:
    """A two-state modulated Poisson process (quiet/burst phases).

    Requests arrive in alternating phases of geometric length
    (``mean_phase_requests`` each): quiet phases run below the nominal
    rate, burst phases at ``burst_factor`` times the quiet rate, with
    ``burst_fraction`` of requests landing in bursts on average. The
    long-run rate stays ``rate_rps``; the tails do not — exactly the
    traffic shape that makes admission control and autoscaling earn
    their keep.
    """
    _check(rate_rps, num_requests)
    if burst_factor <= 1.0:
        raise ValueError(f"burst_factor must be > 1, got {burst_factor}")
    if not 0.0 < burst_fraction < 1.0:
        raise ValueError(f"burst_fraction must be in (0, 1), got {burst_fraction}")
    if mean_phase_requests <= 0:
        raise ValueError(
            f"mean_phase_requests must be positive, got {mean_phase_requests}"
        )
    # Solve for the quiet rate so the request-weighted mean rate is rate_rps:
    # 1/rate = (1-f)/quiet + f/(factor*quiet)  =>  quiet = rate * ((1-f) + f/factor)
    quiet_rate = rate_rps * ((1.0 - burst_fraction) + burst_fraction / burst_factor)
    burst_rate = burst_factor * quiet_rate
    gaps = np.empty(num_requests, dtype=np.float64)
    produced = 0
    bursting = False
    while produced < num_requests:
        phase_len = 1 + rng.geometric(1.0 / mean_phase_requests)
        # size phases so bursts hold burst_fraction of requests on average
        if bursting:
            phase_len = max(1, int(round(
                phase_len * burst_fraction / (1.0 - burst_fraction)
            )))
        phase_len = min(phase_len, num_requests - produced)
        phase_rate = burst_rate if bursting else quiet_rate
        gaps[produced : produced + phase_len] = rng.exponential(
            scale=1.0 / phase_rate, size=phase_len
        )
        produced += phase_len
        bursting = not bursting
    offsets = np.cumsum(gaps)
    return offsets - offsets[0] if num_requests else offsets


def diurnal_offsets(
    rate_rps: float,
    num_requests: int,
    rng: np.random.Generator,
    period_s: float = 60.0,
    depth: float = 0.8,
    phase: float = 0.0,
) -> np.ndarray:
    """A sinusoidally modulated Poisson process (a compressed diurnal cycle).

    The instantaneous rate is ``rate * (1 + depth * sin(2π t/period +
    phase))`` — the day/night swing of real user traffic squeezed into
    ``period_s`` so load tests see whole cycles in seconds. Sampled with
    Lewis-Shedler thinning: candidate arrivals are drawn from a
    homogeneous process at the peak rate and kept with probability
    ``rate(t) / peak``, which is exact for any bounded intensity.
    """
    _check(rate_rps, num_requests)
    if not 0.0 <= depth < 1.0:
        raise ValueError(f"depth must be in [0, 1), got {depth}")
    if period_s <= 0:
        raise ValueError(f"period_s must be positive, got {period_s}")
    peak = rate_rps * (1.0 + depth)
    offsets = np.empty(num_requests, dtype=np.float64)
    t = 0.0
    kept = 0
    while kept < num_requests:
        t += rng.exponential(scale=1.0 / peak)
        lam = rate_rps * (1.0 + depth * np.sin(2.0 * np.pi * t / period_s + phase))
        if rng.uniform() * peak <= lam:
            offsets[kept] = t
            kept += 1
    return offsets - offsets[0] if num_requests else offsets


def pace(
    offsets: Sequence[float] | np.ndarray,
    submit: Callable[[int], object],
    clock: Callable[[], float] | None = None,
    sleep: Callable[[float], None] | None = None,
) -> list[object]:
    """Open-loop pacing: fire ``submit(i)`` at ``start + offsets[i]``.

    Returns whatever each ``submit`` call returned (tickets, usually).
    A submission running late is fired immediately — open-loop generators
    never let the service's slowness throttle the offered load.
    """
    import time

    clock = time.perf_counter if clock is None else clock
    sleep = time.sleep if sleep is None else sleep
    start = clock()
    results = []
    for i, offset in enumerate(offsets):
        delay = (start + float(offset)) - clock()
        if delay > 0:
            sleep(delay)
        results.append(submit(i))
    return results


# -- request synthesis --------------------------------------------------------


def stencil_pattern(size: int):
    """The benches' canonical system: a 3-point stencil as one scipy CSR."""
    from repro.workloads.stencil import three_point_stencil

    return three_point_stencil(size, 1).item_scipy(0)


def make_request(
    pattern,
    rng: np.random.Generator,
    size: int,
    solver: str = "bicgstab",
    **kwargs,
):
    """One request on the shared stencil pattern with perturbed values."""
    from repro.serve import SolveRequest

    matrix = pattern.copy()
    matrix.data = matrix.data * rng.uniform(0.9, 1.1, size=matrix.nnz)
    return SolveRequest(
        matrix,
        rng.standard_normal(size),
        solver=solver,
        preconditioner=kwargs.pop("preconditioner", "jacobi"),
        tolerance=kwargs.pop("tolerance", 1e-8),
        **kwargs,
    )


def keyed_requests(
    pattern,
    rng: np.random.Generator,
    size: int,
    num_requests: int,
    num_keys: int,
    solver: str = "cg",
    base_max_iterations: int = 500,
    layout: str = "interleaved",
    **kwargs,
) -> list:
    """Requests spread over ``num_keys`` distinct :class:`BatchKey`\\ s.

    Consistent-hash routing is keyed on the batch key, so a fleet
    workload needs key diversity to exercise more than one shard. The
    keys differ only in ``max_iterations`` (``base .. base+num_keys-1``)
    — far above what the well-conditioned stencil systems need, so the
    solves behave identically while the keys hash apart.

    ``layout="interleaved"`` gives request ``i`` key ``i % num_keys``
    (many clients round-robining); ``layout="grouped"`` keeps one key's
    requests adjacent (one client streaming a problem class), which lets
    the micro-batcher fill whole batches per key.
    """
    if num_keys <= 0:
        raise ValueError(f"num_keys must be positive, got {num_keys}")
    if layout not in ("interleaved", "grouped"):
        raise ValueError(f"layout must be interleaved|grouped, got {layout!r}")
    per_key = max(1, num_requests // num_keys)
    return [
        make_request(
            pattern,
            rng,
            size,
            solver=solver,
            max_iterations=base_max_iterations + (
                (i % num_keys) if layout == "interleaved"
                else min(i // per_key, num_keys - 1)
            ),
            **kwargs,
        )
        for i in range(num_requests)
    ]
