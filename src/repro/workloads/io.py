"""Batch I/O: MatrixMarket directories, as the paper's file-based bench.

The reproducibility appendix of the paper drives one benchmark from
matrices stored on disk (``examples/batched-solver-from-files`` in
Ginkgo): a directory holds one MatrixMarket file per unique batch item,
all sharing a sparsity pattern. This module writes and reads that layout:

* :func:`save_batch_dir` — one ``item_<k>.mtx`` per batch item (plus the
  optional right-hand sides as ``rhs.npy``);
* :func:`load_batch_dir` — reads every ``.mtx``, verifies the shared
  pattern, and assembles a :class:`~repro.core.matrix.BatchCsr`.

MatrixMarket parsing/writing is scipy's (``scipy.io.mmread/mmwrite``);
the pattern consistency checking is ours.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import scipy.io
import scipy.sparse as sp

from repro.core.matrix import BatchCsr
from repro.exceptions import BadSparsityPatternError


def save_batch_dir(
    directory: str | Path,
    matrix: BatchCsr,
    rhs: np.ndarray | None = None,
    stem: str = "item",
) -> list[Path]:
    """Write one MatrixMarket file per batch item into ``directory``.

    Returns the written paths. ``rhs`` (``(num_batch, n)``) is stored as
    ``rhs.npy`` alongside.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    width = len(str(matrix.num_batch - 1))
    paths = []
    for k in range(matrix.num_batch):
        path = directory / f"{stem}_{k:0{width}d}.mtx"
        scipy.io.mmwrite(path, matrix.item_scipy(k))
        paths.append(path)
    if rhs is not None:
        rhs = matrix.check_vector("rhs", rhs)
        np.save(directory / "rhs.npy", rhs)
    return paths


def load_batch_dir(
    directory: str | Path, stem: str = "item"
) -> tuple[BatchCsr, np.ndarray | None]:
    """Read a directory of same-pattern MatrixMarket files into a batch.

    Files are taken in sorted name order. Raises
    :class:`BadSparsityPatternError` when an item's pattern deviates
    (after normalizing explicit zeros), mirroring the constructor checks.
    Returns ``(matrix, rhs)`` with ``rhs`` None when no ``rhs.npy`` exists.
    """
    directory = Path(directory)
    paths = sorted(directory.glob(f"{stem}_*.mtx"))
    if not paths:
        raise FileNotFoundError(
            f"no '{stem}_*.mtx' files found in {directory}"
        )
    items: list[sp.csr_matrix] = []
    for path in paths:
        loaded = scipy.io.mmread(path)
        items.append(sp.csr_matrix(loaded))
    try:
        matrix = BatchCsr.from_scipy_batch(items)
    except BadSparsityPatternError as exc:
        raise BadSparsityPatternError(
            f"matrices in {directory} do not share one sparsity pattern: {exc}"
        ) from exc
    rhs_path = directory / "rhs.npy"
    rhs = np.load(rhs_path) if rhs_path.exists() else None
    return matrix, rhs
