"""Surrogates for the PeleLM + SUNDIALS chemistry matrices (Table 4).

The paper extracts, for five reaction mechanisms, the Newton-system
Jacobians ``A = I - gamma J`` that SUNDIALS' BDF integrator hands to the
linear solver, one system per mesh cell, all sharing the mechanism's
sparsity pattern; it then replicates a few cells' matrices to emulate a
larger mesh (Section 4.1). The real matrices are not shipped with the
paper, so this module builds surrogates that match Table 4 *exactly* —
mechanism name, number of unique matrices, matrix size, non-zeros per
matrix — and match the properties the solver actually sees:

* one shared sparsity pattern with a full diagonal (species always couple
  to themselves) and a symmetric *pattern* (if species a appears in a
  reaction with b, both Jacobian entries are structurally present) with
  nonsymmetric *values* — hence non-SPD, which is why the paper can only
  run BatchBicgstab on these inputs;
* strict diagonal dominance, mirroring the ``I - gamma J`` structure at
  practical BDF step sizes, so scalar-Jacobi-preconditioned BiCGSTAB
  converges in a realistic few-tens-of-iterations budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.matrix import BatchCsr, BatchEll


@dataclass(frozen=True)
class PeleMechanism:
    """One row of Table 4."""

    name: str
    num_unique: int
    num_rows: int
    nnz: int

    def __post_init__(self) -> None:
        if self.nnz < self.num_rows:
            raise ValueError(
                f"{self.name}: nnz ({self.nnz}) must cover the full diagonal "
                f"({self.num_rows})"
            )
        if self.nnz > self.num_rows * self.num_rows:
            raise ValueError(f"{self.name}: nnz exceeds the dense size")


#: Table 4 of the paper (the five PeleLM mechanisms).
MECHANISMS: dict[str, PeleMechanism] = {
    m.name: m
    for m in (
        PeleMechanism("drm19", num_unique=67, num_rows=22, nnz=438),
        PeleMechanism("gri12", num_unique=73, num_rows=33, nnz=978),
        PeleMechanism("gri30", num_unique=90, num_rows=54, nnz=2560),
        PeleMechanism("dodecane_lu", num_unique=78, num_rows=54, nnz=2332),
        PeleMechanism("isooctane", num_unique=72, num_rows=144, nnz=6135),
    )
}


def table4_rows() -> list[dict[str, object]]:
    """Table 4 as dict rows (including the 3-pt stencil formula row)."""
    rows: list[dict[str, object]] = [
        {
            "input": "3pt stencil",
            "num_unique": None,
            "matrix_size": None,
            "nnz_per_matrix": "3 x n_rows",
        }
    ]
    for m in MECHANISMS.values():
        rows.append(
            {
                "input": m.name,
                "num_unique": m.num_unique,
                "matrix_size": f"{m.num_rows} x {m.num_rows}",
                "nnz_per_matrix": m.nnz,
            }
        )
    return rows


def _mechanism_pattern(mech: PeleMechanism, rng: np.random.Generator):
    """Shared pattern: full diagonal + symmetric off-diagonal positions.

    Off-diagonal pairs are drawn with a bias toward low species indices
    (major species couple with everything, minor ones sparsely) to give
    the banded-plus-dense-rows look of chemistry Jacobians.
    """
    n = mech.num_rows
    off_needed = mech.nnz - n
    pairs_needed, extra = divmod(off_needed, 2)

    mask = np.zeros((n, n), dtype=bool)
    np.fill_diagonal(mask, True)

    # candidate upper-triangle pairs weighted toward small (i + j)
    iu, ju = np.triu_indices(n, k=1)
    weights = 1.0 / (1.0 + iu + ju).astype(np.float64)
    weights /= weights.sum()
    order = rng.choice(iu.shape[0], size=iu.shape[0], replace=False, p=weights)
    chosen = order[:pairs_needed]
    mask[iu[chosen], ju[chosen]] = True
    mask[ju[chosen], iu[chosen]] = True
    if extra:
        # odd nnz: one unpaired entry breaks the structural symmetry
        leftover = order[pairs_needed]
        mask[iu[leftover], ju[leftover]] = True

    rows, cols = np.nonzero(mask)
    row_ptrs = np.zeros(n + 1, dtype=np.int32)
    np.add.at(row_ptrs, rows + 1, 1)
    row_ptrs = np.cumsum(row_ptrs, dtype=np.int32)
    return row_ptrs, cols.astype(np.int32), rows.astype(np.int32)


def pele_batch(
    name: str,
    num_batch: int | None = None,
    fmt: str = "csr",
    seed: int = 0,
    gamma: float = 0.25,
):
    """Build a mechanism's batch, replicated to ``num_batch`` items.

    ``num_batch`` defaults to the mechanism's unique-matrix count; larger
    batches cycle the unique value sets, replicating the paper's
    emulate-a-larger-mesh procedure. ``gamma`` is the BDF step-scaled
    coefficient in ``A = I - gamma J``; smaller gamma means more
    diagonally dominant, faster-converging systems.
    """
    if name not in MECHANISMS:
        raise KeyError(f"unknown mechanism {name!r}; available: {sorted(MECHANISMS)}")
    if fmt not in ("csr", "ell"):
        raise ValueError(f"fmt must be 'csr' or 'ell', got {fmt!r}")
    if not 0.0 < gamma < 1.0:
        raise ValueError(f"gamma must be in (0, 1), got {gamma}")
    mech = MECHANISMS[name]
    nb = mech.num_unique if num_batch is None else int(num_batch)
    if nb <= 0:
        raise ValueError(f"num_batch must be positive, got {nb}")

    rng = np.random.default_rng(seed + hash(name) % 100003)
    row_ptrs, col_idxs, row_of = _mechanism_pattern(mech, rng)
    n, nnz = mech.num_rows, mech.nnz

    # Unique value sets: J entries ~ heavy-tailed around zero, then
    # A = I - gamma * J with the diagonal lifted to strict dominance.
    unique_vals = np.empty((mech.num_unique, nnz))
    off_mask = col_idxs != row_of
    for u in range(mech.num_unique):
        j_vals = rng.standard_normal(nnz) * np.abs(rng.standard_normal(nnz))
        a_vals = -gamma * j_vals
        # per-row off-diagonal magnitudes -> dominant diagonal
        row_abs = np.zeros(n)
        np.add.at(row_abs, row_of[off_mask], np.abs(a_vals[off_mask]))
        dominance = 1.0 + 0.5 * rng.random(n)
        diag_positions = np.flatnonzero(~off_mask)
        a_vals[diag_positions] = dominance * row_abs + 1.0
        unique_vals[u] = a_vals

    reps = np.resize(np.arange(mech.num_unique), nb)
    values = unique_vals[reps]
    csr = BatchCsr(row_ptrs, col_idxs, values, num_cols=n)
    if fmt == "ell":
        return BatchEll.from_batch_csr(csr)
    return csr


def pele_rhs(matrix, seed: int = 1) -> np.ndarray:
    """Right-hand sides shaped like chemistry residuals (positive, decaying)."""
    rng = np.random.default_rng(seed)
    nb, n = matrix.num_batch, matrix.num_rows
    scale = np.exp(-0.05 * np.arange(n))
    return scale[None, :] * (0.5 + rng.random((nb, n)))
