"""The synthetic 3-point-stencil input (Table 4, first row).

"Using a standard 3-point stencil problem, we can generate a batch of
symmetric, positive definite (SPD) matrices that allows us to do scaling
experiments in both the matrix size and the batch size" (Section 4.2).

The stencil is the classic [-1, 2, -1] second-difference operator;
``nnz = 3 * num_rows`` counting the truncated first/last rows' missing
neighbours as explicit (padded) zeros, exactly the nnz/matrix formula the
paper's Table 4 lists. Per-item diagonal shifts keep the batch entries
distinct (same pattern, different values) while preserving SPD-ness.
"""

from __future__ import annotations

import numpy as np

from repro.core.matrix import BatchCsr, BatchEll
from repro.core.matrix.batch_ell import PADDING


def three_point_stencil(
    num_rows: int,
    num_batch: int,
    fmt: str = "csr",
    jitter: float = 0.05,
    seed: int = 0,
):
    """Batch of SPD 3-point-stencil matrices.

    Parameters
    ----------
    num_rows:
        System size (the paper sweeps this for Fig. 4a).
    num_batch:
        Batch size (swept for Fig. 4b).
    fmt:
        ``"csr"`` or ``"ell"`` (ELL is the natural fit: every row has
        three stored entries after padding).
    jitter:
        Magnitude of the per-item random diagonal shift; 0 replicates one
        matrix across the batch.
    seed:
        RNG seed for the jitter.
    """
    if num_rows < 3:
        # 3 rows minimum so the explicit-zero padding columns of the CSR
        # boundary rows stay in range
        raise ValueError(f"the 3-point stencil needs at least 3 rows, got {num_rows}")
    if num_batch <= 0:
        raise ValueError(f"num_batch must be positive, got {num_batch}")
    if jitter < 0:
        raise ValueError(f"jitter must be non-negative, got {jitter}")
    if fmt not in ("csr", "ell"):
        raise ValueError(f"fmt must be 'csr' or 'ell', got {fmt!r}")

    rng = np.random.default_rng(seed)
    shifts = jitter * rng.random(num_batch) if jitter > 0 else np.zeros(num_batch)
    diag_vals = 2.0 + shifts  # SPD: strictly diagonally dominant-or-equal

    # ELL layout: slot 0 = left neighbour, slot 1 = diagonal, slot 2 = right.
    n = num_rows
    rows = np.arange(n)
    col_idxs = np.full((3, n), PADDING, dtype=np.int32)
    col_idxs[0, 1:] = rows[1:] - 1
    col_idxs[1, :] = rows
    col_idxs[2, :-1] = rows[:-1] + 1

    values = np.zeros((num_batch, 3, n))
    values[:, 0, 1:] = -1.0
    values[:, 1, :] = diag_vals[:, None]
    values[:, 2, :-1] = -1.0

    ell = BatchEll(col_idxs, values, num_cols=n)
    if fmt == "ell":
        return ell
    # CSR keeps exactly 3 entries per row as well so that nnz = 3 * num_rows
    # matches Table 4: boundary rows carry their missing neighbour as an
    # explicit zero parked two columns inward (a distinct, in-range column).
    row_ptrs = np.zeros(n + 1, dtype=np.int32)
    cols = []
    vals = np.zeros((num_batch, 3 * n))
    pos = 0
    for row in range(n):
        trio = [row - 1, row, row + 1]
        for offset, col in enumerate(trio):
            if col < 0:
                col = row + 2  # explicit zero beyond the right neighbour
            elif col >= n:
                col = row - 2  # explicit zero beyond the left neighbour
            cols.append(col)
            if offset == 0 and row > 0:
                vals[:, pos] = -1.0
            elif offset == 2 and row < n - 1:
                vals[:, pos] = -1.0
            elif offset == 1:
                vals[:, pos] = diag_vals
            pos += 1
        row_ptrs[row + 1] = pos
    return BatchCsr(row_ptrs, np.asarray(cols, dtype=np.int32), vals, num_cols=n)


def stencil_rhs(num_rows: int, num_batch: int, seed: int = 1) -> np.ndarray:
    """Smooth right-hand sides (a sampled sine plus per-item noise)."""
    rng = np.random.default_rng(seed)
    base = np.sin(np.linspace(0.0, np.pi, num_rows))
    return base[None, :] + 0.1 * rng.standard_normal((num_batch, num_rows))
