"""Workload generators for the paper's two input classes (Table 4).

* :mod:`repro.workloads.stencil` — the synthetic 3-point-stencil SPD
  batches used for the scaling studies (Figs. 4-5).
* :mod:`repro.workloads.pele` — surrogates for the PeleLM + SUNDIALS
  chemistry Jacobians (drm19, gri12, gri30, dodecane_lu, isooctane) with
  the exact sizes/non-zero counts of Table 4 (Figs. 6-8).
* :mod:`repro.workloads.general` — random batched test matrices
  (diagonally dominant, SPD, triangular) for the test suite.
* :mod:`repro.workloads.sundials` — a mini BDF integrator with modified
  Newton solves, the outer-loop use case motivating batched iterative
  solvers (Section 2).
* :mod:`repro.workloads.arrivals` — seeded arrival processes (uniform,
  Poisson, bursty) and shared request synthesis for the serving and
  fleet benchmarks.
"""

from repro.workloads.arrivals import (
    bursty_offsets,
    pace,
    poisson_offsets,
    uniform_offsets,
)

from repro.workloads.stencil import three_point_stencil, stencil_rhs
from repro.workloads.pele import (
    MECHANISMS,
    PeleMechanism,
    pele_batch,
    pele_rhs,
    table4_rows,
)
from repro.workloads.general import (
    random_diag_dominant_batch,
    random_spd_batch,
    random_triangular_batch,
)
from repro.workloads.sundials import BdfIntegrator, BdfResult, BatchedOde, robertson_batch

__all__ = [
    "three_point_stencil",
    "stencil_rhs",
    "MECHANISMS",
    "PeleMechanism",
    "pele_batch",
    "pele_rhs",
    "table4_rows",
    "random_diag_dominant_batch",
    "random_spd_batch",
    "random_triangular_batch",
    "BdfIntegrator",
    "BdfResult",
    "BatchedOde",
    "robertson_batch",
    "uniform_offsets",
    "poisson_offsets",
    "bursty_offsets",
    "pace",
]
