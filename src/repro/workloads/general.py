"""Random batched test-matrix generators for the test suite.

All generators produce batches with one shared sparsity pattern and
controlled spectral properties so tests can rely on solver convergence:
diagonally dominant general matrices (BiCGSTAB/GMRES territory), SPD
matrices (CG), and triangular batches (TRSV).
"""

from __future__ import annotations

import numpy as np

from repro.core.matrix import BatchCsr


def _shared_mask(n: int, density: float, rng: np.random.Generator) -> np.ndarray:
    """Random off-diagonal mask + full diagonal, shared across the batch."""
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    mask = rng.random((n, n)) < density
    np.fill_diagonal(mask, True)
    return mask


def random_diag_dominant_batch(
    num_batch: int,
    num_rows: int,
    density: float = 0.3,
    seed: int = 0,
    dominance: float = 1.2,
) -> BatchCsr:
    """Strictly diagonally dominant, nonsymmetric values, shared pattern."""
    if dominance <= 1.0:
        raise ValueError(f"dominance must exceed 1.0, got {dominance}")
    rng = np.random.default_rng(seed)
    mask = _shared_mask(num_rows, density, rng)
    dense = rng.standard_normal((num_batch, num_rows, num_rows)) * mask
    off_sums = np.abs(dense).sum(axis=2) - np.abs(
        dense[:, np.arange(num_rows), np.arange(num_rows)]
    )
    dense[:, np.arange(num_rows), np.arange(num_rows)] = dominance * off_sums + 1.0
    return BatchCsr.from_dense(dense)


def random_spd_batch(
    num_batch: int,
    num_rows: int,
    density: float = 0.3,
    seed: int = 0,
) -> BatchCsr:
    """SPD batch: symmetrized diagonally dominant values on a symmetric pattern."""
    rng = np.random.default_rng(seed)
    mask = _shared_mask(num_rows, density, rng)
    mask = mask | mask.T
    dense = rng.standard_normal((num_batch, num_rows, num_rows)) * mask
    dense = 0.5 * (dense + dense.transpose(0, 2, 1))
    off_sums = np.abs(dense).sum(axis=2) - np.abs(
        dense[:, np.arange(num_rows), np.arange(num_rows)]
    )
    dense[:, np.arange(num_rows), np.arange(num_rows)] = off_sums + 1.0
    return BatchCsr.from_dense(dense)


def random_triangular_batch(
    num_batch: int,
    num_rows: int,
    uplo: str = "lower",
    density: float = 0.4,
    unit_diagonal: bool = False,
    seed: int = 0,
) -> BatchCsr:
    """Triangular batch with a well-conditioned (or unit) diagonal."""
    if uplo not in ("lower", "upper"):
        raise ValueError(f"uplo must be 'lower' or 'upper', got {uplo!r}")
    rng = np.random.default_rng(seed)
    mask = _shared_mask(num_rows, density, rng)
    tri = np.tril(mask, k=-1) if uplo == "lower" else np.triu(mask, k=1)
    dense = rng.standard_normal((num_batch, num_rows, num_rows)) * tri
    diag = np.arange(num_rows)
    if unit_diagonal:
        return BatchCsr.from_dense(dense + 0.0)  # strictly triangular, no diagonal
    dense[:, diag, diag] = 2.0 + rng.random((num_batch, num_rows))
    return BatchCsr.from_dense(dense)
