"""Shared utilities: validation helpers, unit formatting, and counters."""

from repro.utils.validation import (
    check_positive,
    check_power_of_two,
    ensure_2d_batch,
    round_up,
)
from repro.utils.units import format_bytes, format_flops, format_time

__all__ = [
    "check_positive",
    "check_power_of_two",
    "ensure_2d_batch",
    "round_up",
    "format_bytes",
    "format_flops",
    "format_time",
]
