"""Small validation helpers used across the library.

These helpers centralize argument checking so error messages are uniform
and so hot code paths can call a single tested function instead of
re-implementing ad-hoc checks.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionMismatchError


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_power_of_two(name: str, value: int) -> None:
    """Raise ``ValueError`` unless ``value`` is a positive power of two."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")


def round_up(value: int, multiple: int) -> int:
    """Round ``value`` up to the next multiple of ``multiple``.

    Used by the launch-configuration logic of Section 3.6 of the paper:
    the work-group size is the number of rows rounded up to the sub-group
    size.
    """
    check_positive("multiple", multiple)
    if value <= 0:
        return multiple
    return ((value + multiple - 1) // multiple) * multiple


def ensure_2d_batch(
    name: str,
    array: np.ndarray,
    num_batch: int,
    length: int,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """Validate and normalize a batched vector argument.

    Accepts ``(num_batch, length)`` arrays, or ``(length,)`` arrays which are
    broadcast across the batch. Returns a C-contiguous array of shape
    ``(num_batch, length)`` in the requested floating dtype (the dispatch
    mechanism's precision-format level — Section 3.4 of the paper).
    """
    arr = np.asarray(array)
    if arr.ndim == 1:
        if arr.shape[0] != length:
            raise DimensionMismatchError(
                f"{name}: expected length {length}, got {arr.shape[0]}"
            )
        arr = np.broadcast_to(arr, (num_batch, length))
    elif arr.ndim == 2:
        if arr.shape != (num_batch, length):
            raise DimensionMismatchError(
                f"{name}: expected shape ({num_batch}, {length}), got {arr.shape}"
            )
    else:
        raise DimensionMismatchError(
            f"{name}: expected 1- or 2-dimensional array, got ndim={arr.ndim}"
        )
    dtype = np.dtype(dtype)
    if dtype.kind != "f":
        raise ValueError(f"{name}: dtype must be a floating type, got {dtype}")
    return np.ascontiguousarray(arr, dtype=dtype)
