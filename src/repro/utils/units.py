"""Human-readable formatting of bytes, FLOP rates and times.

The benchmark harness prints paper-style tables; these formatters keep the
output consistent (engineering prefixes, fixed significant digits).
"""

from __future__ import annotations

_BYTE_PREFIXES = ["B", "KB", "MB", "GB", "TB", "PB"]
_FLOP_PREFIXES = ["FLOP/s", "KFLOP/s", "MFLOP/s", "GFLOP/s", "TFLOP/s", "PFLOP/s"]
_TIME_UNITS = [(1e-9, "ns"), (1e-6, "us"), (1e-3, "ms"), (1.0, "s")]


def _scale(value: float, base: float, prefixes: list[str]) -> str:
    value = float(value)
    if value < 0:
        raise ValueError(f"expected non-negative value, got {value}")
    idx = 0
    while value >= base and idx < len(prefixes) - 1:
        value /= base
        idx += 1
    return f"{value:.3g} {prefixes[idx]}"


def format_bytes(num_bytes: float) -> str:
    """Format a byte count with a binary-free 1000-based prefix (paper style)."""
    return _scale(num_bytes, 1000.0, _BYTE_PREFIXES)


def format_flops(flops_per_second: float) -> str:
    """Format a FLOP rate (e.g. ``'22.9 TFLOP/s'``)."""
    return _scale(flops_per_second, 1000.0, _FLOP_PREFIXES)


def format_time(seconds: float) -> str:
    """Format a duration using the largest unit that keeps the value >= 1."""
    seconds = float(seconds)
    if seconds < 0:
        raise ValueError(f"expected non-negative time, got {seconds}")
    for scale, unit in reversed(_TIME_UNITS):
        if seconds >= scale:
            return f"{seconds / scale:.3g} {unit}"
    return f"{seconds / 1e-9:.3g} ns"  # sub-nanosecond (and zero)
