"""Splitting logical traffic between SLM, L2 and HBM.

The solver's :class:`~repro.core.counters.TrafficLedger` attributes bytes
to named objects; the workspace plan of Section 3.5 says which of those
objects live in shared local memory. This module combines the two into a
per-level traffic split — the quantity Fig. 8's memory metrics report:

* objects planned into SLM -> SLM traffic;
* matrix values -> SLM when the ``A_cache`` copy was planned resident,
  otherwise the L2-served read-only stream (the paper: the system matrix
  and RHS are "cached into another level cache, for example, L2");
* the sparsity pattern, right-hand side and non-SLM preconditioner state
  -> L2 (shared, read-only, high reuse);
* spilled vectors (read/write, no reuse window) -> HBM;
* plus a one-time cold HBM footprint (first touch of A and b, final
  write of x).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.counters import TrafficLedger
from repro.core.workspace import SLM, WorkspacePlan

_VALUES_SUFFIX = "_values"
_PATTERN_SUFFIX = "_pattern"


@dataclass
class TrafficSplit:
    """Logical traffic per memory level, in bytes."""

    slm_bytes: float = 0.0
    l2_bytes: float = 0.0
    hbm_bytes: float = 0.0
    flops: float = 0.0
    by_object: dict[str, tuple[str, float]] = field(default_factory=dict)

    @property
    def total_bytes(self) -> float:
        """All traffic regardless of level."""
        return self.slm_bytes + self.l2_bytes + self.hbm_bytes

    def fraction(self, level: str) -> float:
        """Share of a level in the total traffic."""
        total = self.total_bytes
        if total == 0:
            return 0.0
        return {"slm": self.slm_bytes, "l2": self.l2_bytes, "hbm": self.hbm_bytes}[
            level
        ] / total

    def scaled(self, factor: float) -> "TrafficSplit":
        """A copy with every byte/FLOP count multiplied by ``factor``."""
        return TrafficSplit(
            slm_bytes=self.slm_bytes * factor,
            l2_bytes=self.l2_bytes * factor,
            hbm_bytes=self.hbm_bytes * factor,
            flops=self.flops * factor,
            by_object={k: (lvl, b * factor) for k, (lvl, b) in self.by_object.items()},
        )


def _classify(name: str, plan: WorkspacePlan) -> str:
    if name.endswith(_VALUES_SUFFIX):
        base = name[: -len(_VALUES_SUFFIX)]
        return "slm" if plan.level_of(f"{base}_cache") == SLM else "l2"
    if name.endswith(_PATTERN_SUFFIX):
        return "l2"
    if name == "b":
        return "l2"
    if name == "precond":
        return "slm" if plan.level_of("precond") == SLM else "l2"
    # an iteration vector: SLM when planned there, HBM spill otherwise
    return "slm" if plan.level_of(name) == SLM else "hbm"


def split_traffic(
    ledger: TrafficLedger,
    plan: WorkspacePlan,
    cold_bytes: float = 0.0,
) -> TrafficSplit:
    """Assign every ledger object's bytes to a memory level.

    ``cold_bytes`` is the one-time HBM footprint (matrix + RHS first
    touch, solution write-back), added to the HBM lane.
    """
    split = TrafficSplit(flops=ledger.flops)
    for name, nbytes in ledger.bytes_by_object.items():
        level = _classify(name, plan)
        split.by_object[name] = (level, nbytes)
        if level == "slm":
            split.slm_bytes += nbytes
        elif level == "l2":
            split.l2_bytes += nbytes
        else:
            split.hbm_bytes += nbytes
    if cold_bytes < 0:
        raise ValueError(f"cold_bytes must be non-negative, got {cold_bytes}")
    split.hbm_bytes += cold_bytes
    if cold_bytes:
        split.by_object["cold_footprint"] = ("hbm", cold_bytes)
    return split
