"""GPU performance specifications (Table 5) and calibration constants.

Each :class:`GpuSpec` combines

* the *published peaks* of the paper's Table 5 (FP64 TFLOP/s, HBM TB/s,
  SLM KB per compute unit), plus widely published L2 sizes/clocks, and
* a small set of *calibration constants* (achieved SLM bandwidth per
  compute unit, achieved L2/HBM fractions, per-kernel launch overhead,
  per-iteration synchronization latency).

Calibration methodology (see DESIGN.md §5): the constants below were fit
once against the averaged cross-device ratios the paper reports (PVC-1S =
1.7x A100 and 1.3x H100; PVC-2S = 3.1x A100 and 2.4x H100; 1.8-1.9x
implicit two-stack scaling), starting from physically plausible values
(NVIDIA shared memory sustains ~115-130 B/clk/SM; PVC's L1/SLM datapath is
512 B/clk/Xe-core of which the batched kernels sustain a fraction — the
paper's own roofline places the solver *below* the SLM bandwidth bound and
names unresolved bank conflicts as future work). No experiment hard-codes
its expected output; every figure is produced by running the solvers and
pushing their measured iteration counts and traffic through this one
model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cudasim.device import a100_device, h100_device
from repro.sycl.device import SyclDevice, pvc_stack_device

#: Table 1 of the paper: architecture terminology mapping.
TERMINOLOGY_MAP: dict[str, str] = {
    "CUDA Core": "XVE",
    "Streaming Multiprocessor": "Xe-Core (XC)",
    "Processor Cluster": "Xe-Slice",
    "N/A": "Xe-Stack",
}


@dataclass(frozen=True)
class GpuSpec:
    """Peaks + calibration constants for one evaluation platform."""

    key: str
    name: str
    backend: str  # "cuda" or "sycl"
    device: SyclDevice
    # ---- Table 5 peaks -------------------------------------------------
    fp64_peak_tflops: float
    hbm_bw_peak_tbs: float
    slm_kb_per_cu: int
    # ---- supplementary published specs ---------------------------------
    l2_bw_peak_tbs: float
    clock_ghz: float
    # ---- calibration constants (DESIGN.md §5) ---------------------------
    slm_eff_gbps_per_cu: float
    flop_efficiency: float
    l2_efficiency: float
    hbm_efficiency: float
    kernel_launch_overhead_us: float
    iter_latency_ns: float
    #: Throughput efficiency of implicit multi-stack scaling (1.0 for a
    #: single stack; the PVC two-stack driver split sustains ~95% of the
    #: doubled throughput, which is what caps Fig. 5's speedup below 2x).
    scaling_efficiency: float = 1.0

    @property
    def num_cus(self) -> int:
        """Compute units (SMs / Xe-cores) across all stacks."""
        return self.device.total_compute_units

    @property
    def num_stacks(self) -> int:
        """Stacks contributing compute (1 except for PVC-2S)."""
        return self.device.num_stacks

    @property
    def fp64_flops_per_cu(self) -> float:
        """Peak FP64 FLOP/s of one compute unit."""
        return self.fp64_peak_tflops * 1e12 / self.num_cus

    @property
    def slm_bw_total_tbs(self) -> float:
        """Aggregate achieved SLM bandwidth (TB/s) across all compute units."""
        return self.slm_eff_gbps_per_cu * 1e9 * self.num_cus / 1e12

    @property
    def slm_bytes_per_cu(self) -> int:
        """SLM capacity of one compute unit in bytes."""
        return self.slm_kb_per_cu * 1024


def _build_gpus() -> dict[str, GpuSpec]:
    a100 = GpuSpec(
        key="a100",
        name="NVIDIA A100 80GB PCIe",
        backend="cuda",
        device=a100_device(),
        fp64_peak_tflops=9.7,
        hbm_bw_peak_tbs=1.6,
        slm_kb_per_cu=192,
        l2_bw_peak_tbs=4.8,
        clock_ghz=1.41,
        slm_eff_gbps_per_cu=145.0,  # ~0.80 of the 128 B/clk/SM datapath
        flop_efficiency=0.70,
        l2_efficiency=0.80,
        hbm_efficiency=0.80,
        kernel_launch_overhead_us=8.0,
        iter_latency_ns=18.0,
    )
    h100 = GpuSpec(
        key="h100",
        name="NVIDIA H100 PCIe",
        backend="cuda",
        device=h100_device(),
        fp64_peak_tflops=26.0,
        hbm_bw_peak_tbs=2.0,
        slm_kb_per_cu=228,
        l2_bw_peak_tbs=5.5,
        clock_ghz=1.755,
        slm_eff_gbps_per_cu=200.0,  # ~0.89 of the 128 B/clk/SM datapath
        flop_efficiency=0.70,
        l2_efficiency=0.80,
        hbm_efficiency=0.80,
        kernel_launch_overhead_us=8.0,
        iter_latency_ns=15.0,
    )
    pvc1 = GpuSpec(
        key="pvc1",
        name="Intel Data Center GPU Max 1550 (1 stack)",
        backend="sycl",
        device=pvc_stack_device(1),
        fp64_peak_tflops=22.9,
        hbm_bw_peak_tbs=1.6,
        slm_kb_per_cu=128,
        l2_bw_peak_tbs=15.0,
        clock_ghz=1.6,
        slm_eff_gbps_per_cu=620.0,  # ~0.76 of the 512 B/clk/core L1 datapath
        flop_efficiency=0.70,       # (bank conflicts: paper Sec. 4.4 future work)
        l2_efficiency=0.80,
        hbm_efficiency=0.80,
        kernel_launch_overhead_us=20.0,
        iter_latency_ns=16.0,
    )
    pvc2 = GpuSpec(
        key="pvc2",
        name="Intel Data Center GPU Max 1550 (2 stacks)",
        backend="sycl",
        device=pvc_stack_device(2),
        fp64_peak_tflops=45.8,
        hbm_bw_peak_tbs=3.2,
        slm_kb_per_cu=128,
        l2_bw_peak_tbs=30.0,
        clock_ghz=1.6,
        slm_eff_gbps_per_cu=620.0,
        flop_efficiency=0.70,
        l2_efficiency=0.80,
        hbm_efficiency=0.80,
        # implicit scaling: the driver splits one submission across both
        # stacks, adding cross-stack coordination to the launch path —
        # this fixed cost is what bounds the observed speedup below 2x
        # (Fig. 5: 1.5x-2.0x, growing with problem size).
        kernel_launch_overhead_us=120.0,
        iter_latency_ns=16.0,
        scaling_efficiency=0.95,
    )
    return {spec.key: spec for spec in (a100, h100, pvc1, pvc2)}


#: The four evaluation platforms of the paper.
GPUS: dict[str, GpuSpec] = _build_gpus()


def gpu(key: str) -> GpuSpec:
    """Look up a platform by key (``a100``, ``h100``, ``pvc1``, ``pvc2``)."""
    try:
        return GPUS[key]
    except KeyError:
        raise KeyError(f"unknown GPU key {key!r}; available: {sorted(GPUS)}") from None


def table5_rows() -> list[dict[str, object]]:
    """Table 5 of the paper, one dict per column."""
    return [
        {
            "gpu": spec.key.upper().replace("PVC1", "PVC-1S").replace("PVC2", "PVC-2S"),
            "fp64_peak_tflops": spec.fp64_peak_tflops,
            "hbm_bw_peak_tbs": spec.hbm_bw_peak_tbs,
            "slm_kb": spec.slm_kb_per_cu,
        }
        for spec in GPUS.values()
    ]
