"""Occupancy model: resident work-groups and XVE threading occupancy.

Section 4.4 of the paper explains the solvers' ~50% XVE threading
occupancy: "we let each work-group use the maximum amount of shared local
memory available regardless of the work-group size", so SLM capacity — not
the thread slots — limits how many work-groups an Xe-core hosts. The
``greedy`` policy models exactly that (one group per compute unit); the
``exact`` policy allocates only the planned workspace bytes and lets
residency rise until the thread-capacity or SLM limit binds — this is the
knob the SLM-ablation bench turns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.launch import KernelLaunchPlan
from repro.hw.specs import GpuSpec

#: SLM allocation policies.
GREEDY = "greedy"
EXACT = "exact"


def resident_groups(spec: GpuSpec, plan: KernelLaunchPlan, policy: str = GREEDY) -> int:
    """Work-groups simultaneously resident on one compute unit."""
    if policy == GREEDY:
        # each group claims the whole SLM, so exactly one fits
        return 1
    if policy != EXACT:
        raise ValueError(f"unknown SLM policy {policy!r}; use 'greedy' or 'exact'")
    slm_limit = (
        spec.slm_bytes_per_cu // plan.slm_bytes_per_group
        if plan.slm_bytes_per_group > 0
        else spec.device.max_work_items_per_cu
    )
    thread_limit = spec.device.max_work_items_per_cu // plan.work_group_size
    return max(1, min(int(slm_limit), int(thread_limit)))


@dataclass(frozen=True)
class OccupancyReport:
    """Occupancy view of one launch on one platform (Fig. 8 metrics)."""

    resident_groups_per_cu: int
    hw_threads_per_group: int
    xve_threading_occupancy: float
    groups_in_flight: int
    waves: int

    def as_dict(self) -> dict[str, float]:
        """Flat dict for the report printers."""
        return {
            "resident_groups_per_cu": self.resident_groups_per_cu,
            "hw_threads_per_group": self.hw_threads_per_group,
            "xve_threading_occupancy": self.xve_threading_occupancy,
            "groups_in_flight": self.groups_in_flight,
            "waves": self.waves,
        }


def occupancy_report(
    spec: GpuSpec,
    plan: KernelLaunchPlan,
    num_batch: int,
    policy: str = GREEDY,
) -> OccupancyReport:
    """Residency, threading occupancy and wave count of a batched launch.

    A sub-group executes as one hardware thread (SIMD-``sg`` issue on an
    XVE), so a work-group of ``wg`` items occupies ``wg / sg`` hardware
    threads. XVE threading occupancy is the fraction of the compute
    unit's vector engines that have at least one of those threads to run
    — e.g. a 64-item group at sub-group size 16 puts 4 threads on the 8
    XVEs of a PVC Xe-core: 50%, matching the Advisor number the paper
    reports for dodecane_lu.
    """
    if num_batch <= 0:
        raise ValueError(f"num_batch must be positive, got {num_batch}")
    r = resident_groups(spec, plan, policy)
    threads_per_group = -(-plan.work_group_size // plan.sub_group_size)
    xve_per_cu = int(spec.device.extra.get("xve_per_core", 8))
    threads_resident = r * threads_per_group
    occupancy = min(1.0, threads_resident / xve_per_cu)
    groups_in_flight = r * spec.num_cus
    waves = -(-num_batch // groups_in_flight)
    return OccupancyReport(
        resident_groups_per_cu=r,
        hw_threads_per_group=threads_per_group,
        xve_threading_occupancy=occupancy,
        groups_in_flight=groups_in_flight,
        waves=waves,
    )
