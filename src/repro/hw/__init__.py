"""Analytic GPU performance models.

This package is the substitute for the paper's hardware measurements (see
DESIGN.md): it derives kernel runtimes for the four evaluation platforms
(A100, H100, PVC 1-stack, PVC 2-stack) from

* the device peaks of Table 5 (:mod:`repro.hw.specs`),
* the occupancy of the one-work-group-per-system launch
  (:mod:`repro.hw.occupancy`),
* the solver's instrumented FLOP/traffic ledger, split between SLM, L2
  and HBM by the workspace plan (:mod:`repro.hw.memmodel`), and
* a wave-scheduling bandwidth/latency model (:mod:`repro.hw.timing`).

:mod:`repro.hw.roofline` and :mod:`repro.hw.advisor` reproduce the Fig. 8
roofline/memory-metrics analysis that the paper obtained from the Intel
Advisor tool.
"""

from repro.hw.specs import GPUS, GpuSpec, TERMINOLOGY_MAP, gpu, table5_rows
from repro.hw.occupancy import OccupancyReport, occupancy_report, resident_groups
from repro.hw.memmodel import TrafficSplit, split_traffic
from repro.hw.timing import TimingBreakdown, estimate_runtime, estimate_solve
from repro.hw.roofline import Roofline, RooflinePoint
from repro.hw.advisor import AdvisorReport, analyze_solve

__all__ = [
    "GPUS",
    "GpuSpec",
    "TERMINOLOGY_MAP",
    "gpu",
    "table5_rows",
    "OccupancyReport",
    "occupancy_report",
    "resident_groups",
    "TrafficSplit",
    "split_traffic",
    "TimingBreakdown",
    "estimate_runtime",
    "estimate_solve",
    "Roofline",
    "RooflinePoint",
    "AdvisorReport",
    "analyze_solve",
]
