"""Advisor-style profiling report (the Fig. 8 analysis).

The paper profiles the BatchBicgstab / dodecane_lu solve with the Intel
Advisor tool and reports: XVE threading occupancy around 50%, the memory
subsystem dominated by SLM requests (~65% of memory-transaction time,
~3 TB of SLM traffic, ~11% of accesses from L3/L2), and a roofline
position on the L3 bandwidth roof but below the SLM roof.

:func:`analyze_solve` produces the same report shape from the model: it
runs the timing estimator, scales the traffic split to the full modeled
batch, evaluates the roofline, and packages the occupancy/memory/roofline
findings into an :class:`AdvisorReport`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.solver.base import BatchIterativeSolver, BatchSolveResult
from repro.hw.memmodel import TrafficSplit
from repro.hw.occupancy import GREEDY
from repro.hw.roofline import Roofline, RooflinePoint
from repro.hw.specs import GpuSpec
from repro.hw.timing import TimingBreakdown, estimate_solve
from repro.utils.units import format_bytes, format_time


@dataclass(frozen=True)
class AdvisorReport:
    """Model-derived counterpart of the Intel Advisor GPU report."""

    spec_key: str
    timing: TimingBreakdown
    total_split: TrafficSplit
    roofline_point: RooflinePoint
    xve_threading_occupancy: float
    xve_active_fraction: float
    memory_time_fractions: dict[str, float]

    def lines(self) -> list[str]:
        """Human-readable report, printed by the Fig. 8 bench."""
        t = self.timing
        out = [
            f"platform                : {self.spec_key}",
            f"modeled runtime         : {format_time(t.total_seconds)}",
            f"XVE threading occupancy : {self.xve_threading_occupancy:.0%}",
            f"XVE array active        : {self.xve_active_fraction:.0%}",
            f"binding component       : {t.binding_component}",
            "memory traffic:",
            f"  SLM : {format_bytes(self.total_split.slm_bytes):>10s}"
            f"  ({self.total_split.fraction('slm'):.0%} of bytes,"
            f" {self.memory_time_fractions.get('slm', 0.0):.0%} of memory time)",
            f"  L2  : {format_bytes(self.total_split.l2_bytes):>10s}"
            f"  ({self.total_split.fraction('l2'):.0%} of bytes,"
            f" {self.memory_time_fractions.get('l2', 0.0):.0%} of memory time)",
            f"  HBM : {format_bytes(self.total_split.hbm_bytes):>10s}"
            f"  ({self.total_split.fraction('hbm'):.0%} of bytes,"
            f" {self.memory_time_fractions.get('hbm', 0.0):.0%} of memory time)",
            "roofline:",
            f"  achieved   : {self.roofline_point.achieved_gflops:8.1f} GFLOP/s",
            f"  binding roof : {self.roofline_point.binding_roof}",
        ]
        for level, gf in sorted(self.roofline_point.attainable_gflops_by_level.items()):
            out.append(f"  {level:>4s} roof  : {gf:8.1f} GFLOP/s attainable")
        out.append(
            f"  compute roof : {self.roofline_point.compute_roof_gflops:6.1f} GFLOP/s"
        )
        return out


def analyze_solve(
    spec: GpuSpec,
    solver: BatchIterativeSolver,
    result: BatchSolveResult,
    num_batch: int | None = None,
    policy: str = GREEDY,
) -> AdvisorReport:
    """Produce the Fig. 8-style report for a measured solve on ``spec``."""
    timing = estimate_solve(spec, solver, result, num_batch=num_batch, policy=policy)
    groups_total = num_batch if num_batch is not None else solver.matrix.num_batch
    total_split = timing.split_per_group_iter.scaled(groups_total * timing.iterations)
    # the one-time cold footprint (first touch of A and b, write of x) is
    # HBM traffic the per-iteration split does not carry
    total_split.hbm_bytes += timing.cold_bytes
    total_split.by_object["cold_footprint"] = ("hbm", timing.cold_bytes)

    roofline = Roofline(spec)
    point = roofline.evaluate(total_split, timing.total_seconds)

    components = timing.component_seconds
    t_iter_total = max(components.values()) + spec.iter_latency_ns * 1e-9
    xve_active = components["compute"] / t_iter_total if t_iter_total > 0 else 0.0

    return AdvisorReport(
        spec_key=spec.key,
        timing=timing,
        total_split=total_split,
        roofline_point=point,
        xve_threading_occupancy=timing.occupancy.xve_threading_occupancy,
        xve_active_fraction=xve_active,
        memory_time_fractions=timing.memory_time_fractions(),
    )
