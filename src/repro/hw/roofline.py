"""Roofline analysis (Fig. 8 of the paper).

A :class:`Roofline` holds the compute roof and the bandwidth roofs of one
platform (SLM, L2 — which Advisor labels "L3" on PVC — and HBM). Given a
kernel's arithmetic intensity per level and its achieved GFLOP/s, it
reports the attainable performance under each roof and which bound the
kernel sits on — the paper's finding being that the batched BiCGSTAB lies
on the L3(L2) bandwidth roof, below the SLM bandwidth bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.memmodel import TrafficSplit
from repro.hw.specs import GpuSpec


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel plotted against a roofline."""

    flops: float
    achieved_gflops: float
    intensity_by_level: dict[str, float]  # FLOP/byte per memory level
    attainable_gflops_by_level: dict[str, float]
    compute_roof_gflops: float

    @property
    def attainable_gflops(self) -> float:
        """The binding attainable performance (lowest applicable roof)."""
        candidates = [self.compute_roof_gflops, *self.attainable_gflops_by_level.values()]
        return min(candidates)

    @property
    def binding_roof(self) -> str:
        """Name of the roof that bounds this kernel."""
        best = "compute"
        best_val = self.compute_roof_gflops
        for level, val in self.attainable_gflops_by_level.items():
            if val < best_val:
                best, best_val = level, val
        return best

    def efficiency_vs(self, level: str) -> float:
        """Achieved performance as a fraction of a level's roof."""
        if level == "compute":
            roof = self.compute_roof_gflops
        else:
            roof = self.attainable_gflops_by_level[level]
        return self.achieved_gflops / roof if roof > 0 else 0.0


class Roofline:
    """Compute + multi-level bandwidth roofs of one platform."""

    def __init__(self, spec: GpuSpec) -> None:
        self.spec = spec
        self.compute_roof_gflops = spec.fp64_peak_tflops * 1e3 * spec.flop_efficiency
        self.bandwidth_gbs = {
            "slm": spec.slm_eff_gbps_per_cu * spec.num_cus,
            "l2": spec.l2_bw_peak_tbs * 1e3 * spec.l2_efficiency,
            "hbm": spec.hbm_bw_peak_tbs * 1e3 * spec.hbm_efficiency,
        }

    def attainable_gflops(self, level: str, intensity: float) -> float:
        """Bandwidth roof: attainable GFLOP/s at a given FLOP/byte."""
        if intensity < 0:
            raise ValueError(f"negative arithmetic intensity: {intensity}")
        return min(self.compute_roof_gflops, self.bandwidth_gbs[level] * intensity)

    def evaluate(self, split: TrafficSplit, runtime_seconds: float) -> RooflinePoint:
        """Place a kernel with the given traffic/runtime on the roofline."""
        if runtime_seconds <= 0:
            raise ValueError(f"runtime must be positive, got {runtime_seconds}")
        achieved = split.flops / runtime_seconds / 1e9
        intensities: dict[str, float] = {}
        attainable: dict[str, float] = {}
        for level, nbytes in (
            ("slm", split.slm_bytes),
            ("l2", split.l2_bytes),
            ("hbm", split.hbm_bytes),
        ):
            if nbytes > 0:
                intensity = split.flops / nbytes
                intensities[level] = intensity
                attainable[level] = self.attainable_gflops(level, intensity)
        return RooflinePoint(
            flops=split.flops,
            achieved_gflops=achieved,
            intensity_by_level=intensities,
            attainable_gflops_by_level=attainable,
            compute_roof_gflops=self.compute_roof_gflops,
        )
