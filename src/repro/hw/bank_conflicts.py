"""SLM bank-conflict analysis (the paper's stated future work).

Section 4.4 closes with: "Further optimizations to improve SLM accesses,
for example identifying possible bank-conflicts and resolving them, will
be part of our future work." This module implements that analysis on the
model:

Shared local memory is physically banked; a sub-group's access is
serialized by the *conflict factor* — the largest number of lanes whose
addresses fall into the same bank with distinct addresses (same-address
accesses broadcast for free). The analyzer computes factors for

* strided accesses (the BLAS-1 sweeps: stride 1; transposed/interleaved
  layouts: larger strides) — :func:`strided_conflict_factor`;
* the SpMV ``x``-gather, whose columns are data-dependent — estimated by
  Monte Carlo over the actual sparsity pattern
  (:func:`gather_conflict_factor`);

and :func:`analyze_solver_conflicts` rolls them into an average factor
over a solver's SLM traffic, from which the projected runtime with
conflicts fully resolved follows (the headroom between the calibrated
achieved SLM bandwidth and the datapath peak).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.matrix.batch_csr import BatchCsr
from repro.hw.specs import GpuSpec

#: Default bank geometry: 4-byte banks, count per vendor convention.
DEFAULT_BANK_BYTES = 4
DEFAULT_NUM_BANKS = {"intel": 64, "nvidia": 32, "host": 32}


def strided_conflict_factor(
    stride_elems: int,
    lanes: int,
    elem_bytes: int = 8,
    num_banks: int = 32,
    bank_bytes: int = DEFAULT_BANK_BYTES,
) -> float:
    """Conflict factor of ``lanes`` work-items accessing ``a[i * stride]``.

    Lane ``i`` touches bytes ``[i*stride*elem_bytes, +elem_bytes)``; every
    distinct address in the same bank serializes. Returns the serialization
    factor (1.0 = conflict-free).
    """
    if stride_elems <= 0 or lanes <= 0 or elem_bytes <= 0:
        raise ValueError("stride, lanes and element size must be positive")
    if num_banks <= 0 or bank_bytes <= 0:
        raise ValueError("bank geometry must be positive")
    # collect the set of (bank, address) pairs touched by the sub-group
    per_bank: dict[int, set[int]] = {}
    for lane in range(lanes):
        base = lane * stride_elems * elem_bytes
        for word in range(0, elem_bytes, bank_bytes):
            addr = base + word
            bank = (addr // bank_bytes) % num_banks
            per_bank.setdefault(bank, set()).add(addr)
    worst = max(len(addrs) for addrs in per_bank.values())
    # a conflict-free wide access still needs ceil(total_bytes / (banks*bank_bytes))
    # cycles; normalize so unit-stride is 1.0
    total_bytes = lanes * elem_bytes
    baseline = -(-total_bytes // (num_banks * bank_bytes))
    return worst / max(1, baseline)


def gather_conflict_factor(
    matrix: BatchCsr,
    lanes: int,
    elem_bytes: int = 8,
    num_banks: int = 32,
    bank_bytes: int = DEFAULT_BANK_BYTES,
    max_rows: int = 256,
) -> float:
    """Average conflict factor of the SpMV ``x[col]`` gather.

    Walks the shared pattern the way the sub-group-per-row kernel does
    (lanes stride a row's column indices) and averages the serialization
    factor over rows. Deterministic: uses the actual pattern, no RNG.
    """
    factors = []
    words_per_elem = max(1, elem_bytes // bank_bytes)
    rows = min(matrix.num_rows, max_rows)
    for row in range(rows):
        start, end = int(matrix.row_ptrs[row]), int(matrix.row_ptrs[row + 1])
        cols = matrix.col_idxs[start:end]
        for chunk_start in range(0, cols.shape[0], lanes):
            chunk = cols[chunk_start : chunk_start + lanes]
            if chunk.size == 0:
                continue
            per_bank: dict[int, set[int]] = {}
            for col in chunk:
                base = int(col) * elem_bytes
                for word in range(words_per_elem):
                    addr = base + word * bank_bytes
                    bank = (addr // bank_bytes) % num_banks
                    per_bank.setdefault(bank, set()).add(addr)
            worst = max(len(a) for a in per_bank.values())
            baseline = -(-int(chunk.size) * elem_bytes // (num_banks * bank_bytes))
            factors.append(worst / max(1, baseline))
    return float(np.mean(factors)) if factors else 1.0


@dataclass(frozen=True)
class ConflictReport:
    """Bank-conflict view of one solver/matrix/platform combination."""

    spec_key: str
    lanes: int
    num_banks: int
    streaming_factor: float
    gather_factor: float
    gather_share: float
    average_factor: float
    achieved_slm_gbps_per_cu: float
    resolved_slm_gbps_per_cu: float

    @property
    def projected_speedup(self) -> float:
        """Runtime gain on SLM-bound kernels if conflicts were resolved."""
        return self.average_factor


def analyze_solver_conflicts(
    spec: GpuSpec,
    matrix: BatchCsr,
    lanes: int | None = None,
    gather_share: float = 0.4,
) -> ConflictReport:
    """Estimate the solver's average SLM serialization on ``spec``.

    ``gather_share`` is the fraction of SLM traffic that is the SpMV
    ``x``-gather (the rest is unit-stride vector sweeps); the BiCGSTAB
    ledger puts it near 0.4 for the Pele matrices.
    """
    if not 0.0 <= gather_share <= 1.0:
        raise ValueError(f"gather_share must be in [0, 1], got {gather_share}")
    if lanes is None:
        lanes = min(spec.device.sub_group_sizes)
    num_banks = DEFAULT_NUM_BANKS.get(spec.device.vendor, 32)
    elem_bytes = 8

    streaming = strided_conflict_factor(1, lanes, elem_bytes, num_banks)
    gather = gather_conflict_factor(matrix, lanes, elem_bytes, num_banks)
    average = (1.0 - gather_share) * streaming + gather_share * gather

    return ConflictReport(
        spec_key=spec.key,
        lanes=lanes,
        num_banks=num_banks,
        streaming_factor=streaming,
        gather_factor=gather,
        gather_share=gather_share,
        average_factor=average,
        achieved_slm_gbps_per_cu=spec.slm_eff_gbps_per_cu,
        resolved_slm_gbps_per_cu=spec.slm_eff_gbps_per_cu * average,
    )
