"""Wave-scheduled runtime estimation.

The batched kernel assigns one work-group per linear system; the device
executes ``groups_in_flight = num_cus x resident_groups`` systems at a
time, and the batch drains in waves (Section 4.2's observation that the
runtime grows linearly once the GPU is saturated is exactly this model).
Each wave-iteration costs the maximum of four bandwidth terms — per-CU
compute and SLM, chip-wide L2 and HBM — plus a fixed synchronization
latency; a per-kernel launch overhead and the one-time cold-footprint HBM
time complete the estimate::

    total = launch_overhead
          + waves * iterations * (max(compute, slm, l2, hbm) + latency)
          + cold_footprint / hbm_bandwidth

:func:`estimate_solve` wires a real solve (its measured iteration counts
and instrumented traffic ledger) through the workspace planner, launch
configurator and occupancy model into this estimator — optionally scaling
to a larger modeled batch than was actually solved, the same
replicate-to-emulate-a-larger-mesh device the paper uses for the PeleLM
inputs (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.launch import KernelLaunchPlan, LaunchConfigurator
from repro.core.solver.base import BatchIterativeSolver, BatchSolveResult
from repro.core.workspace import SlmBudget, WorkspacePlan, plan_workspace
from repro.hw.memmodel import TrafficSplit, split_traffic
from repro.hw.occupancy import GREEDY, OccupancyReport, occupancy_report
from repro.hw.specs import GpuSpec
from repro.observability.tracer import current_tracer

_FP_BYTES = 8


@dataclass(frozen=True)
class TimingBreakdown:
    """Modeled runtime of one batched solve on one platform."""

    spec_key: str
    total_seconds: float
    launch_overhead_seconds: float
    iteration_seconds: float
    cold_seconds: float
    cold_bytes: float
    t_iter_seconds: float
    component_seconds: dict[str, float]
    iterations: float
    occupancy: OccupancyReport
    launch_plan: KernelLaunchPlan
    workspace_plan: WorkspacePlan
    split_per_group_iter: TrafficSplit

    @property
    def binding_component(self) -> str:
        """The bandwidth/compute term that bounds the iteration time."""
        return max(self.component_seconds, key=self.component_seconds.get)

    def memory_time_fractions(self) -> dict[str, float]:
        """Share of the memory subsystem time per level (Fig. 8 breakdown)."""
        mem = {k: v for k, v in self.component_seconds.items() if k != "compute"}
        total = sum(mem.values())
        if total == 0.0:
            return {k: 0.0 for k in mem}
        return {k: v / total for k, v in mem.items()}


def estimate_runtime(
    spec: GpuSpec,
    per_group_iter: TrafficSplit,
    iterations: float,
    num_batch: int,
    plan: KernelLaunchPlan,
    workspace: WorkspacePlan,
    policy: str = GREEDY,
    cold_bytes_total: float = 0.0,
    flop_rate_scale: float = 1.0,
) -> TimingBreakdown:
    """Core estimator; all traffic arguments are per group per iteration.

    ``flop_rate_scale`` adjusts the compute roof for the precision format
    (2.0 for FP32 on these GPUs, whose single-precision vector peak is
    double the FP64 peak).
    """
    if iterations <= 0:
        raise ValueError(f"iterations must be positive, got {iterations}")
    if flop_rate_scale <= 0:
        raise ValueError(f"flop_rate_scale must be positive, got {flop_rate_scale}")
    occ = occupancy_report(spec, plan, num_batch, policy)
    r = occ.resident_groups_per_cu

    t_compute = per_group_iter.flops * r / (
        spec.fp64_flops_per_cu * spec.flop_efficiency * flop_rate_scale
    )
    t_slm = per_group_iter.slm_bytes * r / (spec.slm_eff_gbps_per_cu * 1e9)
    t_l2 = per_group_iter.l2_bytes * occ.groups_in_flight / (
        spec.l2_bw_peak_tbs * 1e12 * spec.l2_efficiency
    )
    t_hbm = per_group_iter.hbm_bytes * occ.groups_in_flight / (
        spec.hbm_bw_peak_tbs * 1e12 * spec.hbm_efficiency
    )
    components = {"compute": t_compute, "slm": t_slm, "l2": t_l2, "hbm": t_hbm}
    # implicit multi-stack scaling sustains only a fraction of the doubled
    # throughput (driver-level split, Section 4.2 / Fig. 5)
    t_iter = (
        max(components.values()) / spec.scaling_efficiency
        + spec.iter_latency_ns * 1e-9
    )

    iteration_seconds = occ.waves * iterations * t_iter
    cold_seconds = cold_bytes_total / (
        spec.hbm_bw_peak_tbs * 1e12 * spec.hbm_efficiency
    )
    launch_seconds = spec.kernel_launch_overhead_us * 1e-6
    return TimingBreakdown(
        spec_key=spec.key,
        total_seconds=launch_seconds + iteration_seconds + cold_seconds,
        launch_overhead_seconds=launch_seconds,
        iteration_seconds=iteration_seconds,
        cold_seconds=cold_seconds,
        cold_bytes=cold_bytes_total,
        t_iter_seconds=t_iter,
        component_seconds=components,
        iterations=iterations,
        occupancy=occ,
        launch_plan=plan,
        workspace_plan=workspace,
        split_per_group_iter=per_group_iter,
    )


def estimate_solve(
    spec: GpuSpec,
    solver: BatchIterativeSolver,
    result: BatchSolveResult,
    num_batch: int | None = None,
    policy: str = GREEDY,
    sub_group_threshold_rows: int | None = None,
) -> TimingBreakdown:
    """Model a measured solve on platform ``spec``.

    ``num_batch`` scales the model to a larger batch than was solved: the
    per-group work is taken from the measured solve (the batch being a
    replication, every group does the same work) while wave scheduling and
    cold footprint use the modeled batch size.
    """
    matrix = solver.matrix
    nb_solved = matrix.num_batch
    nb_model = int(num_batch) if num_batch is not None else nb_solved
    if nb_model <= 0:
        raise ValueError(f"num_batch must be positive, got {nb_model}")

    tracer = current_tracer()
    with tracer.span(
        "hw.estimate_solve",
        category="hw",
        platform=spec.key,
        solver=solver.solver_name,
        num_batch_modeled=nb_model,
        num_batch_solved=nb_solved,
    ) as span:
        budget = SlmBudget(spec.slm_bytes_per_cu)
        workspace = plan_workspace(
            solver.workspace_vectors(),
            budget,
            precond_doubles=solver.preconditioner.workspace_doubles_per_system(),
            bytes_per_value=matrix.value_bytes,
        )
        configurator = LaunchConfigurator(
            spec.device, sub_group_threshold_rows=sub_group_threshold_rows
        )
        plan = configurator.configure(matrix.num_rows, nb_model, workspace)

        iterations = solver.model_stages(result)
        full_split = split_traffic(result.ledger, workspace)
        per_group_iter = full_split.scaled(1.0 / (nb_solved * iterations))

        values_bytes_per_item = matrix.value_bytes * matrix.nnz_per_item
        pattern_bytes = matrix.storage_bytes - values_bytes_per_item * nb_solved
        cold_bytes = (
            values_bytes_per_item * nb_model
            + max(0, pattern_bytes)
            + 2.0 * matrix.value_bytes * matrix.num_rows * nb_model  # b read + x write
        )

        timing = estimate_runtime(
            spec,
            per_group_iter,
            iterations,
            nb_model,
            plan,
            workspace,
            policy=policy,
            cold_bytes_total=cold_bytes,
            flop_rate_scale=8.0 / matrix.value_bytes,
        )
        if tracer.enabled:
            # the modeled device time next to the host wall-clock spans —
            # a trace shows both what ran here and what the GPU would cost
            span.set_args(
                modeled_total_s=timing.total_seconds,
                modeled_iteration_s=timing.iteration_seconds,
                binding_component=timing.binding_component,
            )
            tracer.instant(
                "hw.modeled_device_time",
                platform=spec.key,
                solver=solver.solver_name,
                total_ms=timing.total_seconds * 1e3,
                iteration_ms=timing.iteration_seconds * 1e3,
                cold_ms=timing.cold_seconds * 1e3,
                launch_overhead_ms=timing.launch_overhead_seconds * 1e3,
                binding_component=timing.binding_component,
            )
            tracer.metrics.gauge(f"hw.modeled_ms.{spec.key}").set(
                timing.total_seconds * 1e3
            )
            tracer.metrics.histogram("hw.modeled_total_ms").observe(
                timing.total_seconds * 1e3
            )
    return timing
