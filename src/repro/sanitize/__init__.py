"""Kernel sanitizer for the simulated SYCL/CUDA execution model.

An opt-in checking layer over :mod:`repro.sycl` and :mod:`repro.cudasim`:
install a :class:`Sanitizer` with :func:`use_sanitizer` (or ``python -m
repro sanitize <cmd>``) and every kernel launch is executed under shadow
state detecting SLM data races, uninitialized and out-of-bounds SLM
accesses, barrier divergence, and group/sub-group collective misuse.
Violations raise subclasses of :class:`~repro.exceptions.SanitizerError`
carrying a structured :class:`SanitizerReport`.

The differential harness lives in :mod:`repro.sanitize.diff` and the
mutation self-test battery in :mod:`repro.sanitize.selftest`; both are
imported lazily (not here) to keep this package importable from inside
the executor without cycles.
"""

from repro.exceptions import (
    BarrierDivergenceError,
    CollectiveMisuseError,
    SanitizerError,
    SlmOutOfBoundsError,
    SlmRaceError,
    UninitializedSlmReadError,
)
from repro.sanitize.context import (
    current_sanitizer,
    sanitizing,
    set_sanitizer,
    use_sanitizer,
)
from repro.sanitize.report import (
    ALL_KINDS,
    BARRIER_DIVERGENCE,
    COLLECTIVE_MISUSE,
    OOB_ACCESS,
    SLM_RACE,
    UNINIT_READ,
    AccessSite,
    SanitizerReport,
)
from repro.sanitize.sanitizer import (
    GroupCheck,
    Sanitizer,
    SanitizerConfig,
    SanitizerStats,
    format_summary,
)
from repro.sanitize.shadow import ShadowArray, ShadowLocal

__all__ = [
    "Sanitizer",
    "SanitizerConfig",
    "SanitizerStats",
    "GroupCheck",
    "SanitizerReport",
    "AccessSite",
    "ShadowArray",
    "ShadowLocal",
    "format_summary",
    "current_sanitizer",
    "set_sanitizer",
    "use_sanitizer",
    "sanitizing",
    "SanitizerError",
    "SlmRaceError",
    "UninitializedSlmReadError",
    "SlmOutOfBoundsError",
    "CollectiveMisuseError",
    "BarrierDivergenceError",
    "SLM_RACE",
    "UNINIT_READ",
    "OOB_ACCESS",
    "BARRIER_DIVERGENCE",
    "COLLECTIVE_MISUSE",
    "ALL_KINDS",
]
