"""Installation of the active sanitizer (mirrors the tracer's pattern).

The execution-model simulators never take a sanitizer parameter: the
executor asks :func:`current_sanitizer` at launch time and gets ``None``
when checking is off, so unsanitized launches pay a single attribute
lookup. Checked regions install a :class:`~repro.sanitize.Sanitizer`
with :func:`use_sanitizer` (a context manager, safely nestable) or
process-wide with :func:`set_sanitizer` (what the ``python -m repro
sanitize`` CLI does).
"""

from __future__ import annotations

import contextvars
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sanitize.sanitizer import Sanitizer

_SANITIZER: contextvars.ContextVar["Sanitizer | None"] = contextvars.ContextVar(
    "repro_sanitizer", default=None
)


def current_sanitizer() -> "Sanitizer | None":
    """The sanitizer installed for the current context (``None`` = off)."""
    return _SANITIZER.get()


def set_sanitizer(sanitizer: "Sanitizer | None") -> "Sanitizer | None":
    """Install ``sanitizer`` process-wide; returns the previous one."""
    previous = _SANITIZER.get()
    _SANITIZER.set(sanitizer)
    return previous


def sanitizing() -> bool:
    """True when a sanitizer is installed in the current context."""
    return _SANITIZER.get() is not None


class _UseSanitizer:
    """Context manager installing a sanitizer for a dynamic extent."""

    def __init__(self, sanitizer: "Sanitizer | None") -> None:
        self._sanitizer = sanitizer
        self._token: contextvars.Token | None = None

    def __enter__(self) -> "Sanitizer | None":
        self._token = _SANITIZER.set(self._sanitizer)
        return self._sanitizer

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            _SANITIZER.reset(self._token)
            self._token = None


def use_sanitizer(sanitizer: "Sanitizer | None") -> _UseSanitizer:
    """``with use_sanitizer(Sanitizer()): ...`` — scoped installation.

    Passing ``None`` disables checking inside the block (useful to carve
    an unchecked region out of a ``SANITIZE=1`` test run).
    """
    return _UseSanitizer(sanitizer)
