"""Mutation self-tests: seeded kernel bugs the sanitizer must catch.

Each case pairs a *mutant* kernel carrying one representative bug from the
paper's kernel idiom (SLM-staged vectors, barrier-separated phases,
sub-group collectives) with the detector class the sanitizer must flag it
as. A matching *clean* battery runs bug-free counterparts that must pass
without a report — the sanitizer's own false-positive regression test.

Run via ``python -m repro sanitize selftest`` or
:func:`run_selftest`; the CLI exits non-zero unless every mutant is
caught with the right diagnostic and every clean kernel passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import BarrierDivergenceError, SanitizerError

#: Everything the sanitizer raises: BarrierDivergenceError predates the
#: sanitizer (the bare executor raises it too) so it is not a SanitizerError.
SANITIZER_EXCEPTIONS = (SanitizerError, BarrierDivergenceError)
from repro.sanitize import report as _report
from repro.sanitize.context import use_sanitizer
from repro.sanitize.sanitizer import Sanitizer, SanitizerConfig
from repro.sycl.memory import LocalSpec
from repro.sycl.ndrange import NDRange
from repro.sycl.queue import Queue

#: Geometry shared by every self-test kernel: two sub-groups of four.
_WG, _SG, _GROUPS = 8, 4, 1


# -- mutant kernels ----------------------------------------------------------


def _racy_write_kernel(item, slm, out):
    """Every work-item writes SLM cell 0 — a classic reduction-gone-wrong."""
    slm.buf[0] = float(item.local_id)
    yield item.barrier()
    out[item.global_id] = slm.buf[0]


def _read_write_race_kernel(item, slm, out):
    """Work-item 0 reads a cell its neighbour writes in the same phase."""
    slm.buf[item.local_id] = 1.0
    yield item.barrier()
    if item.local_id == 0:
        out[item.global_id] = slm.buf[1]
    slm.buf[1] = 2.0
    yield item.barrier()


def _missing_barrier_kernel(item, slm, out):
    """Producer/consumer with the barrier between the phases deleted."""
    slm.buf[item.local_id] = 0.0
    yield item.barrier()
    slm.buf[item.local_id] = float(item.local_id)
    out[item.global_id] = slm.buf[(item.local_id + 1) % item.local_range]
    yield item.barrier()


def _divergent_barrier_count_kernel(item, slm, out):
    """Half the group executes one extra barrier (divergent loop trip)."""
    slm.buf[item.local_id] = 1.0
    yield item.barrier()
    if item.local_id < item.local_range // 2:
        yield item.barrier()
    out[item.global_id] = slm.buf[item.local_id]


def _split_site_barrier_kernel(item, slm, out):
    """Both halves barrier the same number of times — at different lines."""
    slm.buf[item.local_id] = 1.0
    if item.local_id % 2 == 0:
        yield item.barrier()
    else:
        yield item.barrier()
    out[item.global_id] = slm.buf[item.local_id]


def _uninit_read_kernel(item, slm, out):
    """Reads an SLM cell nothing ever wrote (zero-fill would mask it)."""
    slm.buf[item.local_id] = 1.0
    yield item.barrier()
    out[item.global_id] = slm.buf[item.local_id] + slm.extra[0]


def _oob_kernel(item, slm, out):
    """Indexes one cell past the declared accessor shape."""
    slm.buf[item.local_id + 1] = 1.0
    yield item.barrier()
    out[item.global_id] = 0.0


def _negative_index_kernel(item, slm, out):
    """Negative SLM index: NumPy would wrap, hardware would corrupt."""
    slm.buf[item.local_id - item.local_range] = 1.0
    yield item.barrier()
    out[item.global_id] = 0.0


def _partial_reduce_kernel(item, slm, out):
    """One lane skips the sub-group reduction its siblings entered."""
    if item.lane == 0:
        out[item.global_id] = 0.0
        return
    total = yield item.reduce_over_sub_group(1.0, "sum")
    out[item.global_id] = total


def _wide_shuffle_kernel(item, slm, out):
    """Shuffle delta equal to the sub-group size: no lane can supply it."""
    other = yield item.shift_sub_group_left(float(item.lane), item.sub_group_range)
    out[item.global_id] = other
    yield item.barrier()


def _wide_broadcast_kernel(item, slm, out):
    """Broadcast from a source lane outside the sub-group."""
    value = yield item.broadcast_over_sub_group(float(item.lane), item.sub_group_range + 1)
    out[item.global_id] = value


# -- clean counterparts ------------------------------------------------------


def _clean_staged_kernel(item, slm, out):
    """The correct producer/consumer shape with barriers between phases."""
    slm.buf[item.local_id] = float(item.local_id)
    yield item.barrier()
    out[item.global_id] = slm.buf[(item.local_id + 1) % item.local_range]
    yield item.barrier()
    slm.buf[(item.local_id + 3) % item.local_range] = 0.0
    yield item.barrier()


def _clean_reduce_kernel(item, slm, out):
    """Uniform-participation collectives at group and sub-group scope."""
    total = yield item.reduce_over_group(float(item.local_id), "sum")
    sub = yield item.reduce_over_sub_group(1.0, "sum")
    other = yield item.shift_sub_group_left(float(item.lane), 1)
    out[item.global_id] = total + sub + other


def _clean_master_slave_kernel(item, slm, out):
    """Single-writer then barrier then all-readers (scalar staging)."""
    if item.local_id == 0:
        slm.buf[0] = 42.0
    yield item.barrier()
    out[item.global_id] = slm.buf[0]


@dataclass(frozen=True)
class SelftestCase:
    """One seeded-mutation case: a kernel plus the expected detector."""

    name: str
    kernel: Callable
    expect: str | None  # detector kind, or None for the clean battery
    specs: tuple = (("buf", (_WG,)),)


MUTANT_CASES = (
    SelftestCase("racy-write", _racy_write_kernel, _report.SLM_RACE),
    SelftestCase("read-write-race", _read_write_race_kernel, _report.SLM_RACE),
    SelftestCase("missing-barrier", _missing_barrier_kernel, _report.SLM_RACE),
    SelftestCase(
        "divergent-barrier-count",
        _divergent_barrier_count_kernel,
        _report.BARRIER_DIVERGENCE,
    ),
    SelftestCase(
        "split-site-barrier", _split_site_barrier_kernel, _report.BARRIER_DIVERGENCE
    ),
    SelftestCase(
        "uninit-read",
        _uninit_read_kernel,
        _report.UNINIT_READ,
        specs=(("buf", (_WG,)), ("extra", (2,))),
    ),
    SelftestCase("oob-index", _oob_kernel, _report.OOB_ACCESS),
    SelftestCase("negative-index", _negative_index_kernel, _report.OOB_ACCESS),
    SelftestCase(
        "partial-reduce", _partial_reduce_kernel, _report.COLLECTIVE_MISUSE
    ),
    SelftestCase("wide-shuffle", _wide_shuffle_kernel, _report.COLLECTIVE_MISUSE),
    SelftestCase(
        "wide-broadcast", _wide_broadcast_kernel, _report.COLLECTIVE_MISUSE
    ),
)

CLEAN_CASES = (
    SelftestCase("clean-staged", _clean_staged_kernel, None),
    SelftestCase("clean-reduce", _clean_reduce_kernel, None),
    SelftestCase("clean-master-slave", _clean_master_slave_kernel, None),
)

ALL_CASES = MUTANT_CASES + CLEAN_CASES

_BY_NAME = {case.name: case for case in ALL_CASES}


@dataclass
class SelftestResult:
    """Outcome of one case: what was expected vs. what the sanitizer did."""

    name: str
    expect: str | None
    got: str | None
    message: str

    @property
    def passed(self) -> bool:
        """Mutants must be flagged with the right kind; clean must pass."""
        return self.got == self.expect


def run_case(case: SelftestCase, config: SanitizerConfig | None = None) -> SelftestResult:
    """Execute one self-test kernel under a fresh sanitizer."""
    queue = Queue()
    out = np.zeros(_WG * _GROUPS)
    specs = [LocalSpec(name, shape) for name, shape in case.specs]
    sanitizer = Sanitizer(config)
    got: str | None = None
    message = "no violation"
    try:
        with use_sanitizer(sanitizer):
            queue.parallel_for(
                NDRange(_WG * _GROUPS, _WG, _SG),
                case.kernel,
                args=(out,),
                local_specs=specs,
                name=f"selftest_{case.name}",
            )
    except SANITIZER_EXCEPTIONS as exc:
        got = exc.report.kind if exc.report is not None else "unclassified"
        message = str(exc).splitlines()[0]
    return SelftestResult(case.name, case.expect, got, message)


def case_by_name(name: str) -> SelftestCase:
    """Look up one self-test case (the ``sanitize check <name>`` CLI)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown selftest case {name!r}; known: {known}") from None


def run_selftest(config: SanitizerConfig | None = None) -> list[SelftestResult]:
    """Run the whole battery; the caller decides how to render results."""
    return [run_case(case, config) for case in ALL_CASES]
