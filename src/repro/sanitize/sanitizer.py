"""The kernel sanitizer: checking layer over the execution-model simulators.

Four detector classes, mirroring what hides in whole-solver-in-one-kernel
code (Section 3 of the paper: one work-group per system, SLM-staged
vectors, sub-group-size dispatch):

* **barrier divergence** — work-items of a scope reaching different
  barrier sites, executing different barrier counts, or deadlocking with
  siblings parked at different synchronization operations;
* **SLM data races** — two work-items touching the same SLM cell without
  an intervening barrier, at least one access being a write. The happens
  -before model is strict: only *barriers* order shared local memory
  (group barriers for the whole work-group, sub-group barriers within one
  sub-group). Group *collectives* (reduce/scan/broadcast) force converged
  execution but — per SYCL 2020, which gives group algorithms no local
  memory fence semantics — do **not** order SLM accesses;
* **uninitialized / out-of-bounds SLM accesses** — reads of cells no
  work-item has written (the simulator's zero-fill would mask them) and
  indices outside the declared accessor shape (negative included);
* **collective misuse** — shuffles/broadcasts whose width parameter
  cannot fit the dispatched sub-group size, collectives entered from
  different call sites, and non-uniform participation (part of a scope
  entering a collective while siblings exit or wait elsewhere).

The executor drives the sanitizer through :class:`GroupCheck`, one per
work-group; the :class:`Sanitizer` itself only carries configuration and
aggregated results, so one instance can observe many launches (including
concurrently, from the serving layer's worker threads).

Violations raise immediately (fail-fast) with a structured
:class:`~repro.sanitize.report.SanitizerReport` attached to the exception;
when a tracer is installed the report carries the enclosing span's name
and an ``sanitizer.violation`` instant event lands on the trace.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.exceptions import (
    BarrierDivergenceError,
    CollectiveMisuseError,
    SanitizerError,
    SlmOutOfBoundsError,
    SlmRaceError,
    UninitializedSlmReadError,
)
from repro.observability.context import current_trace_context
from repro.observability.tracer import current_tracer
from repro.sanitize import report as _report
from repro.telemetry.events import SANITIZER_TRIP, emit_event
from repro.sanitize.report import AccessSite, SanitizerReport
from repro.sanitize.shadow import (
    ACC_GEPOCH,
    ACC_ITEM,
    ACC_SG,
    ACC_SITE,
    ACC_SUBEPOCH,
    ShadowArray,
    ShadowLocal,
    caller_site,
    wrap_local,
)

#: Scope strings, kept as literals so this module never imports the
#: executor's world (the executor imports *us*).
_GROUP = "group"
_SUB_GROUP = "sub_group"


@dataclass(frozen=True)
class SanitizerConfig:
    """Which detectors run (all on by default) and how they behave.

    ``collectives_fence`` relaxes the race detector to treat group/sub-group
    collectives as memory fences — useful to confirm that a reported race
    is only hidden by collective convergence, not by a real barrier.
    ``record_sites`` disables source-site capture for a faster sweep.
    """

    check_races: bool = True
    check_uninit: bool = True
    check_bounds: bool = True
    check_collectives: bool = True
    check_barrier_sites: bool = True
    collectives_fence: bool = False
    record_sites: bool = True


@dataclass
class SanitizerStats:
    """Aggregate counters of one sanitizer instance."""

    launches: int = 0
    work_groups: int = 0
    slm_accesses: int = 0
    syncs: int = 0
    violations: dict[str, int] = field(default_factory=dict)


class Sanitizer:
    """Configuration + result sink shared by every checked launch."""

    def __init__(self, config: SanitizerConfig | None = None) -> None:
        self.config = config if config is not None else SanitizerConfig()
        self.stats = SanitizerStats()
        self.reports: list[SanitizerReport] = []
        self._lock = threading.Lock()

    @property
    def clean(self) -> bool:
        """True while no violation has been recorded."""
        return not self.reports

    def begin_launch(self, kernel_name: str, num_groups: int) -> None:
        """Account one checked kernel launch."""
        with self._lock:
            self.stats.launches += 1
            self.stats.work_groups += num_groups

    def begin_group(
        self,
        kernel_name: str,
        group_id: int,
        local_size: int,
        sub_group_size: int,
        sub_groups_per_group: int,
    ) -> "GroupCheck":
        """Fresh per-work-group shadow state (one per executed group)."""
        return GroupCheck(
            self, kernel_name, group_id, local_size, sub_group_size, sub_groups_per_group
        )

    def summary(self) -> dict[str, Any]:
        """Aggregate counters as a plain dict (CLI / smoke scripts)."""
        return {
            "launches": self.stats.launches,
            "work_groups": self.stats.work_groups,
            "slm_accesses": self.stats.slm_accesses,
            "syncs": self.stats.syncs,
            "violations": dict(self.stats.violations),
        }

    # -- violation sink ------------------------------------------------------

    def violation(self, exc_cls: type, rep: SanitizerReport) -> None:
        """Record ``rep``, attach trace context, raise ``exc_cls``.

        The report gets the enclosing tracer span's name (when tracing is
        active) so a failure inside ``python -m repro trace <cmd>`` can be
        located on the exported timeline; an instant event and a metrics
        counter mark the violation on the trace itself.
        """
        with self._lock:
            self.reports.append(rep)
            count = self.stats.violations.get(rep.kind, 0) + 1
            self.stats.violations[rep.kind] = count
        ctx = current_trace_context()
        if ctx is not None:
            rep.trace_id = ctx.trace_id
        emit_event(
            SANITIZER_TRIP,
            ctx=ctx,
            critical=True,
            kind=rep.kind,
            kernel=rep.kernel,
            group=rep.group_id,
        )
        tracer = current_tracer()
        if tracer.enabled:
            span = tracer.current_span()
            if span is not None:
                rep.span = span.name
                span.set("sanitizer_violation", rep.kind)
            tracer.instant(
                "sanitizer.violation",
                kind=rep.kind,
                kernel=rep.kernel,
                group=rep.group_id,
            )
            tracer.metrics.counter(f"sanitize.violations.{rep.kind}").inc()
            # a counter *track* sample, so violation traces carry a ph='C'
            # series (trace validation requires counters on every export)
            tracer.counter("sanitize.violations", **{rep.kind: float(count)})
        raise exc_cls(rep.format(), rep)


class GroupCheck:
    """Shadow state and detector logic for one executing work-group."""

    def __init__(
        self,
        sanitizer: Sanitizer,
        kernel_name: str,
        group_id: int,
        local_size: int,
        sub_group_size: int,
        sub_groups_per_group: int,
    ) -> None:
        self.sanitizer = sanitizer
        self.config = sanitizer.config
        self.kernel = kernel_name
        self.group_id = group_id
        self.local_size = local_size
        self.sub_group_size = sub_group_size
        #: the work-item currently advanced by the executor (None = host).
        self.current: Any = None
        #: barrier epochs: bumped on group barriers (group_epoch and every
        #: sub-group epoch) and on sub-group barriers (that sub-group only).
        self.group_epoch = 0
        self.sub_epochs = [0] * sub_groups_per_group
        #: completed synchronization operations per work-item (diagnostics).
        self.sync_counts = [0] * local_size
        self._arrays: list[ShadowArray] = []

    # -- wiring --------------------------------------------------------------

    def wrap_local(self, local) -> ShadowLocal:
        """Checked view over the group's SLM namespace."""
        return wrap_local(local, self)

    def track_array(self, array: ShadowArray) -> None:
        """Register an SLM array for epoch bookkeeping."""
        self._arrays.append(array)

    def set_current(self, item: Any) -> None:
        """Tell the shadow state which work-item executes next."""
        self.current = item

    # -- memory detectors ----------------------------------------------------

    def _access(self, site: AccessSite | None) -> tuple:
        item = self.current
        sg = item.sub_group_id
        return (item.local_id, sg, self.group_epoch, self.sub_epochs[sg], site)

    def _conflicting(self, a: tuple, b: tuple) -> bool:
        """No barrier orders ``a`` and ``b`` (items known to differ)."""
        if a[ACC_SG] == b[ACC_SG]:
            # same sub-group: a sub-group *or* group barrier between the two
            # accesses would have bumped the sub-group epoch
            return a[ACC_SUBEPOCH] == b[ACC_SUBEPOCH]
        # different sub-groups: only a group barrier orders them
        return a[ACC_GEPOCH] == b[ACC_GEPOCH]

    def on_read(self, array: ShadowArray, flats: Iterable[int]) -> None:
        """Validate and record one read access of ``array``."""
        if self.current is None:
            return  # host-side inspection (tests poking at SLM) is unchecked
        cfg = self.config
        self.sanitizer.stats.slm_accesses += 1
        site = caller_site() if cfg.record_sites else None
        acc = self._access(site)
        for flat in flats:
            if cfg.check_uninit and not array.init[flat]:
                self._raise_uninit(array, flat, acc)
            if cfg.check_races:
                w = array.writes.get(flat)
                if w is not None and w[ACC_ITEM] != acc[ACC_ITEM] and self._conflicting(w, acc):
                    self._raise_race(array, flat, w, acc, "write", "read")
            array.reads.setdefault(flat, {})[acc[ACC_ITEM]] = acc

    def on_write(self, array: ShadowArray, flats: Iterable[int]) -> None:
        """Validate and record one write access of ``array``."""
        if self.current is None:
            return
        cfg = self.config
        self.sanitizer.stats.slm_accesses += 1
        site = caller_site() if cfg.record_sites else None
        acc = self._access(site)
        for flat in flats:
            if cfg.check_races:
                w = array.writes.get(flat)
                if w is not None and w[ACC_ITEM] != acc[ACC_ITEM] and self._conflicting(w, acc):
                    self._raise_race(array, flat, w, acc, "write", "write")
                for r in array.reads.get(flat, {}).values():
                    if r[ACC_ITEM] != acc[ACC_ITEM] and self._conflicting(r, acc):
                        self._raise_race(array, flat, r, acc, "read", "write")
            array.writes[flat] = acc
            array.init[flat] = True

    def oob(self, array: ShadowArray, idx) -> None:
        """Out-of-bounds index on an SLM array (always fatal when checked)."""
        if not self.config.check_bounds:
            # still stop the access: NumPy would wrap negative indices,
            # silently corrupting a neighbouring cell
            raise SlmOutOfBoundsError(
                f"SLM index {idx!r} outside {array.name}{array.shape}", None
            )
        site = caller_site() if self.config.record_sites else None
        items = (self.current.local_id,) if self.current is not None else ()
        rep = SanitizerReport(
            kind=_report.OOB_ACCESS,
            kernel=self.kernel,
            group_id=self.group_id,
            message=(
                f"out-of-bounds SLM access: index {idx!r} outside the declared "
                f"shape {array.shape} of {array.name!r}"
            ),
            array=array.name,
            index=idx,
            items=items,
            sites=(str(site),) if site else (),
        )
        self.sanitizer.violation(SlmOutOfBoundsError, rep)

    def _raise_uninit(self, array: ShadowArray, flat: int, acc: tuple) -> None:
        import numpy as np

        index = tuple(int(c) for c in np.unravel_index(flat, array.shape))
        index = index[0] if len(index) == 1 else index
        rep = SanitizerReport(
            kind=_report.UNINIT_READ,
            kernel=self.kernel,
            group_id=self.group_id,
            message=(
                f"work-item {acc[ACC_ITEM]} read {array.name}[{index}] before any "
                f"work-item wrote it (SLM is uninitialized on real hardware)"
            ),
            array=array.name,
            index=index,
            items=(acc[ACC_ITEM],),
            sites=(str(acc[ACC_SITE]),) if acc[ACC_SITE] else (),
        )
        self.sanitizer.violation(UninitializedSlmReadError, rep)

    def _raise_race(
        self,
        array: ShadowArray,
        flat: int,
        first: tuple,
        second: tuple,
        first_kind: str,
        second_kind: str,
    ) -> None:
        import numpy as np

        index = tuple(int(c) for c in np.unravel_index(flat, array.shape))
        index = index[0] if len(index) == 1 else index
        sites = tuple(
            str(a[ACC_SITE]) for a in (first, second) if a[ACC_SITE] is not None
        )
        rep = SanitizerReport(
            kind=_report.SLM_RACE,
            kernel=self.kernel,
            group_id=self.group_id,
            message=(
                f"SLM data race on {array.name}[{index}]: {first_kind} by "
                f"work-item {first[ACC_ITEM]} and {second_kind} by work-item "
                f"{second[ACC_ITEM]} with no barrier between them"
            ),
            array=array.name,
            index=index,
            items=(first[ACC_ITEM], second[ACC_ITEM]),
            sites=sites,
            details={
                "first_access": f"{first_kind} @ group_epoch {first[ACC_GEPOCH]}",
                "second_access": f"{second_kind} @ group_epoch {second[ACC_GEPOCH]}",
            },
        )
        self.sanitizer.violation(SlmRaceError, rep)

    # -- synchronization detectors -------------------------------------------

    def check_assembly(self, op, member_states: list, scope_desc: str) -> None:
        """Checks at the moment a scope has fully assembled on one op.

        ``member_states`` are the executor's work-item states (carrying
        ``item``, ``pending`` and the captured yield ``site``).
        """
        cfg = self.config
        if cfg.check_barrier_sites:
            sites = {s.site for s in member_states if s.site is not None}
            if len(sites) > 1:
                self._raise_site_divergence(op, member_states, sites, scope_desc)
        if cfg.check_collectives:
            self._check_widths(op, member_states, scope_desc)

    def _raise_site_divergence(self, op, member_states, sites, scope_desc) -> None:
        items = tuple(s.item.local_id for s in member_states)
        rendered = tuple(sorted(str(site) for site in sites))
        if op.kind == "barrier":
            rep = SanitizerReport(
                kind=_report.BARRIER_DIVERGENCE,
                kernel=self.kernel,
                group_id=self.group_id,
                message=(
                    f"work-items of {scope_desc} synchronized on *different* "
                    f"barrier statements (undefined behaviour: every work-item "
                    f"must execute the same barrier)"
                ),
                items=items,
                sites=rendered,
            )
            self.sanitizer.violation(BarrierDivergenceError, rep)
        rep = SanitizerReport(
            kind=_report.COLLECTIVE_MISUSE,
            kernel=self.kernel,
            group_id=self.group_id,
            message=(
                f"{op.kind} collective over {scope_desc} entered from different "
                f"call sites — group functions must be encountered in converged "
                f"control flow"
            ),
            items=items,
            sites=rendered,
        )
        self.sanitizer.violation(CollectiveMisuseError, rep)

    def _check_widths(self, op, member_states, scope_desc) -> None:
        width = self.sub_group_size if op.scope == _SUB_GROUP else self.local_size
        bad: str | None = None
        if op.kind == "shuffle":
            direction, delta = op.params
            if not 0 <= int(delta) < width:
                bad = (
                    f"shuffle ({direction}) with delta/mask {delta} cannot address "
                    f"any lane of a sub-group of size {width} — the kernel "
                    f"assumes a different dispatched sub-group width"
                )
        elif op.kind == "broadcast":
            src = int(op.params[0])
            if not 0 <= src < width:
                bad = (
                    f"broadcast source {src} outside the {scope_desc} "
                    f"(size {width})"
                )
        if bad is None:
            return
        items = tuple(s.item.local_id for s in member_states)
        sites = tuple(
            sorted({str(s.site) for s in member_states if s.site is not None})
        )
        rep = SanitizerReport(
            kind=_report.COLLECTIVE_MISUSE,
            kernel=self.kernel,
            group_id=self.group_id,
            message=bad,
            items=items,
            sites=sites,
            details={"op": op.kind, "params": op.params, "scope_size": width},
        )
        self.sanitizer.violation(CollectiveMisuseError, rep)

    def on_sync_complete(self, op, member_local_ids: Iterable[int], sg_id: int | None) -> None:
        """Advance the happens-before epochs after one completed sync op."""
        self.sanitizer.stats.syncs += 1
        for lid in member_local_ids:
            self.sync_counts[lid] += 1
        fences = op.kind == "barrier" or self.config.collectives_fence
        if not fences:
            return
        if op.scope == _GROUP:
            self.group_epoch += 1
            self.sub_epochs = [epoch + 1 for epoch in self.sub_epochs]
            for array in self._arrays:
                array.writes.clear()
                array.reads.clear()
        elif sg_id is not None:
            self.sub_epochs[sg_id] += 1

    def classify_deadlock(self, states: list) -> None:
        """Diagnose a stuck work-group (no scope can assemble) and raise.

        Pure collective non-participation gets the collective-misuse class;
        anything involving a barrier (or mixed sync ops) is barrier
        divergence, reported with per-item completed-barrier counts.
        """
        done = [s.item.local_id for s in states if s.pending is None]
        waiting = {
            s.item.local_id: (s.pending.signature(), str(s.site) if s.site else "?")
            for s in states
            if s.pending is not None
        }
        kinds = {sig[0] for sig, _ in waiting.values()}
        items = tuple(sorted(waiting))
        sites = tuple(sorted({site for _, site in waiting.values()}))
        if kinds and "barrier" not in kinds:
            rep = SanitizerReport(
                kind=_report.COLLECTIVE_MISUSE,
                kernel=self.kernel,
                group_id=self.group_id,
                message=(
                    f"non-uniform participation in {sorted(kinds)} collective(s): "
                    f"work-items {sorted(waiting)} entered the operation while "
                    f"work-items {done} exited or diverged — every member of the "
                    f"scope must participate"
                ),
                items=items,
                sites=sites,
                details={"finished_items": done, "waiting": _render_waiting(waiting)},
            )
            self.sanitizer.violation(CollectiveMisuseError, rep)
        rep = SanitizerReport(
            kind=_report.BARRIER_DIVERGENCE,
            kernel=self.kernel,
            group_id=self.group_id,
            message=(
                "barrier divergence: work-items of the group executed different "
                "barrier counts or stopped at different synchronization "
                "operations, so no scope can assemble"
            ),
            items=items,
            sites=sites,
            details={
                "finished_items": done,
                "waiting": _render_waiting(waiting),
                "completed_syncs_per_item": list(self.sync_counts),
            },
        )
        self.sanitizer.violation(BarrierDivergenceError, rep)


def _render_waiting(waiting: dict) -> dict:
    """Compact ``{local_id: 'op @ site'}`` rendering for reports."""
    return {
        lid: f"{sig[0]}:{sig[1]} @ {site}" for lid, (sig, site) in sorted(waiting.items())
    }


def format_summary(sanitizer: Sanitizer) -> str:
    """One-paragraph text summary (CLI footer)."""
    s = sanitizer.stats
    head = (
        f"sanitizer: {s.launches} launches / {s.work_groups} work-groups checked, "
        f"{s.slm_accesses} SLM accesses, {s.syncs} sync operations"
    )
    if not s.violations:
        return head + " — no violations"
    parts = ", ".join(f"{kind}: {count}" for kind, count in sorted(s.violations.items()))
    return head + f" — VIOLATIONS ({parts})"


# Re-exported detector-kind constants (stable public names).
SLM_RACE = _report.SLM_RACE
UNINIT_READ = _report.UNINIT_READ
OOB_ACCESS = _report.OOB_ACCESS
BARRIER_DIVERGENCE = _report.BARRIER_DIVERGENCE
COLLECTIVE_MISUSE = _report.COLLECTIVE_MISUSE

__all__ = [
    "Sanitizer",
    "SanitizerConfig",
    "SanitizerStats",
    "GroupCheck",
    "format_summary",
    "SanitizerError",
    "SLM_RACE",
    "UNINIT_READ",
    "OOB_ACCESS",
    "BARRIER_DIVERGENCE",
    "COLLECTIVE_MISUSE",
]
