"""Shadow state for shared local memory.

When a sanitizer is active, the executor hands kernels a namespace of
:class:`ShadowArray` objects instead of raw NumPy arrays. Each element
access goes through per-cell shadow state — an initialized bit plus the
last write and the per-item last reads since the previous barrier — which
is what lets the sanitizer diagnose uninitialized reads, out-of-bounds
indices and inter-work-item races *at the access site*, naming both
offending work-items and their source lines.

Only the element accesses kernels actually perform (integer and
integer-tuple indexing) take the exact fast path; slices and fancy
indexing fall back to an index-map expansion so tests and debugging
helpers that look at whole arrays still get checked.
"""

from __future__ import annotations

import sys
from types import SimpleNamespace
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.sanitize.report import AccessSite

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sanitize.sanitizer import GroupCheck

#: Index of the fields inside an access record tuple.
ACC_ITEM, ACC_SG, ACC_GEPOCH, ACC_SUBEPOCH, ACC_SITE = range(5)


def caller_site() -> AccessSite | None:
    """Source location of the kernel code performing the current access.

    Walks out of the sanitizer's own frames; the first foreign frame is
    the kernel (or kernel subroutine) line that touched SLM.
    """
    frame = sys._getframe(1)
    while frame is not None:
        module = frame.f_globals.get("__name__", "")
        if module not in ("repro.sanitize.shadow", "repro.sanitize.sanitizer"):
            return AccessSite(frame.f_code.co_filename, frame.f_lineno, frame.f_code.co_name)
        frame = frame.f_back
    return None  # pragma: no cover - only if called from sanitizer top-level


class ShadowArray:
    """A checked view over one work-group's SLM array.

    Mirrors the small slice of the ndarray interface the kernels use
    (shape/dtype/len plus element get/set); every access is validated and
    recorded through the owning :class:`GroupCheck`.
    """

    __slots__ = ("data", "name", "_check", "init", "writes", "reads", "_flat_map")

    def __init__(self, data: np.ndarray, name: str, check: "GroupCheck") -> None:
        self.data = data
        self.name = name
        self._check = check
        #: per-cell "some work-item wrote this" bits (flat layout).
        self.init = np.zeros(data.size, dtype=bool)
        #: flat index -> last write access record.
        self.writes: dict[int, tuple] = {}
        #: flat index -> {local_id: last read access record}.
        self.reads: dict[int, dict[int, tuple]] = {}
        self._flat_map: np.ndarray | None = None

    # -- ndarray surface -----------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying SLM array."""
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        """Dtype of the underlying SLM array."""
        return self.data.dtype

    @property
    def size(self) -> int:
        """Number of elements."""
        return self.data.size

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShadowArray({self.name!r}, shape={self.data.shape})"

    def fill(self, value) -> None:
        """Bulk host-side fill (poisoning); leaves the init bits untouched.

        ``poison_local`` uses this path: poisoning mimics *uninitialized*
        memory, so it must not count as kernel initialization.
        """
        self.data.fill(value)

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        """Whole-array read (e.g. ``np.asarray(slm.x)``): checked as such."""
        self._check.on_read(self, range(self.data.size))
        return np.asarray(self.data, dtype=dtype)

    # -- element access ------------------------------------------------------

    def __getitem__(self, idx):
        self._check.on_read(self, self._flat_indices(idx))
        return self.data[idx]

    def __setitem__(self, idx, value) -> None:
        self._check.on_write(self, self._flat_indices(idx))
        self.data[idx] = value

    # -- index handling ------------------------------------------------------

    def _flat_indices(self, idx) -> Iterable[int]:
        """Flat cell indices touched by ``idx``, with strict bounds checks.

        Integer components must lie in ``[0, dim)``: SLM accessors have no
        Python-style negative wrap-around on hardware, so a negative index
        is out of bounds here even though NumPy would accept it.
        """
        shape = self.data.shape
        if isinstance(idx, (int, np.integer)):
            i = int(idx)
            if i < 0 or i >= shape[0]:
                self._check.oob(self, idx)
            if self.data.ndim == 1:
                return (i,)
            row = self.data.size // shape[0]
            return range(i * row, (i + 1) * row)
        if (
            isinstance(idx, tuple)
            and len(idx) == self.data.ndim
            and all(isinstance(c, (int, np.integer)) for c in idx)
        ):
            coords = tuple(int(c) for c in idx)
            for c, dim in zip(coords, shape):
                if c < 0 or c >= dim:
                    self._check.oob(self, idx)
            return (int(np.ravel_multi_index(coords, shape)),)
        # Generic path (slices, fancy indexing): NumPy semantics, every
        # selected cell tracked.
        if self._flat_map is None:
            self._flat_map = np.arange(self.data.size).reshape(shape)
        try:
            selected = self._flat_map[idx]
        except IndexError:
            self._check.oob(self, idx)
        return np.ravel(selected).tolist()


class ShadowLocal(SimpleNamespace):
    """The sanitized replacement for the plain SLM namespace.

    Attribute layout matches :func:`repro.sycl.memory.allocate_local`; each
    attribute is a :class:`ShadowArray` over the original storage, so the
    kernel's results land in the very same buffers.
    """


def wrap_local(local: SimpleNamespace, check: "GroupCheck") -> ShadowLocal:
    """Wrap every array of one work-group's SLM namespace for checking."""
    wrapped = ShadowLocal()
    for name, array in vars(local).items():
        shadow = ShadowArray(array, name, check)
        check.track_array(shadow)
        setattr(wrapped, name, shadow)
    return wrapped
