"""Differential harness: device kernels vs. the NumPy reference path.

The harness runs one batched problem through several implementations of
the same algorithm —

* the **reference** path: the vectorized NumPy solvers behind the
  multi-level dispatch mechanism (:func:`repro.core.dispatch`), with the
  full residual history recorded;
* the **sycl** backend: the fused work-group kernels of
  :mod:`repro.kernels` executed on the SYCL simulator;
* the **cuda** backend: the same kernels executed on a
  :mod:`repro.cudasim` device (and, for BiCGSTAB, the warp-shuffle
  reduction structure instead of the group-reduce primitive);
* the **wide** backend: the same kernel sources executed in lockstep as
  NumPy array operations (:mod:`repro.wide`) —

and compares per-system iteration counts, solutions and convergence
histories. The per-work-item backends run under an installed sanitizer;
the wide backend runs bare, because its lockstep execution falls back to
the faithful interpreter under a sanitizer (per-item shadow checking has
no meaning over a collapsed lane axis — see ``docs/wide_backend.md``),
which would make the differential comparison vacuous. Exact bitwise
equality across paths is *not* the contract: the paths reduce in
different orders (NumPy pairwise summation, the SYCL group primitive
sequentially over lanes, the CUDA butterfly over warps, the wide
backend's vectorized lane-axis reduction), which is precisely the backend
difference Section 3.2 of the paper describes. What must hold — and what
:func:`run_differential` checks — is that residual histories track each
other to accumulation-error tolerance, iteration counts match within a
one-iteration threshold-crossing slack, and the returned solutions solve
the system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.dispatch import BatchSolverFactory
from repro.core.matrix.batch_csr import BatchCsr
from repro.cudasim.device import a100_device
from repro.kernels import (
    run_batch_bicgstab_on_device,
    run_batch_cg_on_device,
    run_batch_richardson_on_device,
)
from repro.sanitize.context import use_sanitizer
from repro.sanitize.sanitizer import Sanitizer, SanitizerConfig
from repro.sycl.device import pvc_stack_device

#: Solvers with a fused device-kernel implementation.
KERNEL_SOLVERS = ("cg", "bicgstab", "richardson")

#: Preconditioners the fused kernels implement (identity / scalar Jacobi).
KERNEL_PRECONDITIONERS = ("identity", "jacobi")

BACKENDS = ("sycl", "cuda", "wide")

#: Comparison slack per precision: (history rtol, solution atol scale,
#: allowed iteration-count delta). Single precision stores the operators
#: in float32, so recurrences drift measurably faster.
_TOLERANCES = {
    "double": (1e-6, 1e-7, 1),
    "single": (5e-3, 5e-4, 3),
}


@dataclass(frozen=True)
class DiffCase:
    """One cell of the differential grid."""

    name: str
    solver: str
    preconditioner: str = "identity"
    precision: str = "double"
    backend: str = "sycl"
    tolerance: float = 1e-8
    max_iterations: int = 200
    omega: float = 0.9  # richardson relaxation

    def label(self) -> str:
        """Stable human-readable id (test ids, CLI output)."""
        return (
            f"{self.name}/{self.solver}+{self.preconditioner}"
            f"/{self.precision}/{self.backend}"
        )


@dataclass
class BackendRun:
    """Result of the device-kernel path of one case."""

    x: np.ndarray
    iterations: np.ndarray
    history: np.ndarray  # (nb, max_iterations + 1), NaN past convergence
    sanitizer_summary: dict[str, Any]


@dataclass
class DiffOutcome:
    """The comparison verdict of one differential case."""

    case: DiffCase
    agree: bool
    iterations_ref: np.ndarray
    iterations_dev: np.ndarray
    max_solution_diff: float
    max_history_rel_diff: float
    max_residual: float
    failures: list[str] = field(default_factory=list)

    def describe(self) -> str:
        """One line per verdict, with failure detail when disagreeing."""
        head = f"{self.case.label()}: {'agree' if self.agree else 'DISAGREE'}"
        if self.agree:
            return head
        return head + "\n  " + "\n  ".join(self.failures)


def _as_precision(array: np.ndarray, precision: str) -> np.ndarray:
    if precision == "single":
        return np.asarray(array, dtype=np.float32)
    return np.asarray(array, dtype=np.float64)


def run_reference(matrix: BatchCsr, b: np.ndarray, case: DiffCase):
    """The NumPy path through the dispatch mechanism, history enabled."""
    factory = BatchSolverFactory(
        solver=case.solver,
        preconditioner=case.preconditioner,
        precision=case.precision,
        criterion="relative",
        tolerance=case.tolerance,
        max_iterations=case.max_iterations,
        keep_history=True,
        solver_options={"omega": case.omega} if case.solver == "richardson" else {},
    )
    return factory.solve(matrix, _as_precision(b, case.precision))


def run_backend(
    matrix: BatchCsr,
    b: np.ndarray,
    case: DiffCase,
    config: SanitizerConfig | None = None,
) -> BackendRun:
    """The fused-kernel path of one case.

    The per-work-item backends (``sycl``, ``cuda``) execute under a fresh
    sanitizer; the ``wide`` backend executes bare on a lockstep
    :class:`~repro.wide.queue.WideQueue` (a sanitizer would force its
    faithful-interpreter fallback and the comparison would test nothing),
    with a summary noting the inapplicable checks.
    """
    device = a100_device() if case.backend == "cuda" else pvc_stack_device(1)
    values = _as_precision(matrix.values, case.precision)
    dev_matrix = BatchCsr(
        matrix.row_ptrs, matrix.col_idxs, values, num_cols=matrix.num_cols
    )
    dev_b = _as_precision(b, case.precision)
    nb = matrix.num_batch
    inv_diag = None
    if case.preconditioner == "jacobi":
        inv_diag = 1.0 / dev_matrix.diagonal()
    history = np.full((nb, case.max_iterations + 1), np.nan)

    queue = None
    if case.backend == "wide":
        from repro.wide.queue import WideQueue

        queue = WideQueue(device)

    def dispatch():
        if case.solver == "cg":
            return run_batch_cg_on_device(
                device,
                dev_matrix,
                dev_b,
                inv_diag=inv_diag,
                tolerance=case.tolerance,
                max_iterations=case.max_iterations,
                queue=queue,
                res_history=history,
            )
        if case.solver == "bicgstab":
            style = "cuda" if case.backend == "cuda" else "group"
            return run_batch_bicgstab_on_device(
                device,
                dev_matrix,
                dev_b,
                inv_diag=inv_diag,
                tolerance=case.tolerance,
                max_iterations=case.max_iterations,
                reduce_style=style,
                queue=queue,
                res_history=history,
            )
        if case.solver == "richardson":
            return run_batch_richardson_on_device(
                device,
                dev_matrix,
                dev_b,
                inv_diag=inv_diag,
                omega=case.omega,
                tolerance=case.tolerance,
                max_iterations=case.max_iterations,
                queue=queue,
                res_history=history,
            )
        raise ValueError(
            f"solver {case.solver!r} has no fused device kernel; "
            f"kernel-backed solvers: {KERNEL_SOLVERS}"
        )

    if case.backend == "wide":
        x, iters, event = dispatch()
        summary = {
            "launches": 1,
            "work_groups": event.stats.num_groups,
            "slm_accesses": 0,
            "syncs": 0,
            "violations": {},
            "note": "per-work-item sanitizer checks do not apply to the "
            "lockstep wide backend",
        }
        return BackendRun(x, iters, history, summary)

    sanitizer = Sanitizer(config)
    with use_sanitizer(sanitizer):
        x, iters, _ = dispatch()
    return BackendRun(x, iters, history, sanitizer.summary())


def run_differential(
    dense: np.ndarray,
    b: np.ndarray,
    case: DiffCase,
    config: SanitizerConfig | None = None,
) -> DiffOutcome:
    """Run one case through reference and device paths and compare.

    ``dense`` is the ``(nb, n, n)`` dense batch (the generator output);
    both paths consume the same shared-pattern CSR conversion of it.
    """
    matrix = BatchCsr.from_dense(dense)
    reference = run_reference(matrix, b, case)
    device = run_backend(matrix, b, case, config)

    hist_rtol, sol_scale, iter_slack = _TOLERANCES[case.precision]
    failures: list[str] = []

    # -- iteration counts ----------------------------------------------------
    it_ref = np.asarray(reference.iterations, dtype=np.int64)
    it_dev = np.asarray(device.iterations, dtype=np.int64)
    delta = np.abs(it_ref - it_dev)
    if delta.max(initial=0) > iter_slack:
        failures.append(
            f"iteration counts diverge: reference {it_ref.tolist()} vs "
            f"device {it_dev.tolist()} (allowed slack {iter_slack})"
        )

    # -- convergence histories ----------------------------------------------
    # Mixed relative/absolute comparison: once both recurrences drop below
    # the stopping threshold their exact values are roundoff noise, so the
    # per-system threshold doubles as the absolute floor.
    ref_hist = reference.logger.history  # (records, nb)
    b_norms_hist = np.linalg.norm(np.asarray(b, dtype=np.float64), axis=1)
    max_hist_diff = 0.0
    for sysid in range(matrix.num_batch):
        floor = case.tolerance * float(b_norms_hist[sysid])
        shared = min(ref_hist.shape[0] - 1, int(it_dev[sysid]))
        for k in range(shared + 1):
            ref_val = float(ref_hist[k, sysid])
            dev_val = float(device.history[sysid, k])
            if np.isnan(dev_val):
                break
            denom = max(abs(ref_val), abs(dev_val), 1e-300)
            rel = abs(ref_val - dev_val) / denom
            if abs(ref_val - dev_val) > hist_rtol * denom + floor:
                failures.append(
                    f"history mismatch: system {sysid} iteration {k}: "
                    f"reference |r| = {ref_val:.17g}, device |r| = "
                    f"{dev_val:.17g} (rel {rel:.2e} > {hist_rtol:.0e})"
                )
                break
            if abs(ref_val) > floor or abs(dev_val) > floor:
                max_hist_diff = max(max_hist_diff, rel)

    # -- solutions -----------------------------------------------------------
    x_ref = np.asarray(reference.x, dtype=np.float64)
    x_dev = np.asarray(device.x, dtype=np.float64)
    scale = max(float(np.max(np.abs(x_ref))), 1.0)
    sol_diff = float(np.max(np.abs(x_ref - x_dev))) / scale
    if sol_diff > sol_scale:
        failures.append(
            f"solutions diverge: max relative element difference {sol_diff:.2e} "
            f"> {sol_scale:.0e}"
        )

    # -- true residuals ------------------------------------------------------
    residual = np.einsum("bij,bj->bi", np.asarray(dense, dtype=np.float64), x_dev)
    residual -= np.asarray(b, dtype=np.float64)
    b_norms = np.linalg.norm(np.asarray(b, dtype=np.float64), axis=1)
    rel_res = np.linalg.norm(residual, axis=1) / np.maximum(b_norms, 1e-300)
    # converged systems must actually solve the system (tuning/sanitizer
    # overhead must never trade correctness — the acceptance criterion)
    converged = it_dev < case.max_iterations
    tol_slack = case.tolerance * (1e3 if case.precision == "single" else 10.0)
    bad = converged & (rel_res > tol_slack)
    if bad.any():
        failures.append(
            f"device solution does not solve the system: relative residuals "
            f"{rel_res[bad].tolist()} exceed {tol_slack:.1e} "
            f"for systems {np.nonzero(bad)[0].tolist()}"
        )

    return DiffOutcome(
        case=case,
        agree=not failures,
        iterations_ref=it_ref,
        iterations_dev=it_dev,
        max_solution_diff=sol_diff,
        max_history_rel_diff=max_hist_diff,
        max_residual=float(rel_res.max(initial=0.0)),
        failures=failures,
    )


def kernel_grid(
    name: str,
    precisions: tuple = ("double", "single"),
    backends: tuple = BACKENDS,
    tolerance: float = 1e-8,
    max_iterations: int = 200,
) -> list[DiffCase]:
    """Every kernel-backed solver x preconditioner x precision x backend."""
    cases = []
    for solver in KERNEL_SOLVERS:
        for precond in KERNEL_PRECONDITIONERS:
            for precision in precisions:
                for backend in backends:
                    cases.append(
                        DiffCase(
                            name=name,
                            solver=solver,
                            preconditioner=precond,
                            precision=precision,
                            backend=backend,
                            tolerance=tolerance,
                            max_iterations=max_iterations,
                        )
                    )
    return cases
