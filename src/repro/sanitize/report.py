"""Structured sanitizer diagnostics.

Every violation the sanitizer raises carries a :class:`SanitizerReport`
on the exception's ``report`` attribute: the detector class, the kernel
and work-group, the work-items and source sites involved, and — when a
tracer is installed — the name of the enclosing span, so a report can be
correlated with the trace of the launch that produced it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

#: Detector classes (the ``kind`` field of a report).
SLM_RACE = "slm-race"
UNINIT_READ = "uninit-read"
OOB_ACCESS = "oob-access"
BARRIER_DIVERGENCE = "barrier-divergence"
COLLECTIVE_MISUSE = "collective-misuse"

ALL_KINDS = (SLM_RACE, UNINIT_READ, OOB_ACCESS, BARRIER_DIVERGENCE, COLLECTIVE_MISUSE)


@dataclass(frozen=True)
class AccessSite:
    """A source location inside kernel code (file, line, function)."""

    filename: str
    lineno: int
    function: str

    def __str__(self) -> str:
        return f"{os.path.basename(self.filename)}:{self.lineno} in {self.function}"


@dataclass
class SanitizerReport:
    """One diagnosed violation.

    ``kind`` is one of the detector classes above; ``items`` holds the
    local ids of the offending work-items and ``sites`` the corresponding
    source locations (as strings). ``span`` is the name of the enclosing
    tracer span when tracing was active, else ``None``. Detector-specific
    facts (array name, cell index, epoch numbers, ...) live in
    ``details``.

    Request attribution: ``trace_id`` is the ambient
    :class:`~repro.observability.context.TraceContext` at trip time (when
    the launch ran under one request's context), and ``trace_ids`` /
    ``request_ids`` name *every* victim request of a batched flush — the
    serving layer stamps them when a trip aborts a shared launch, so the
    report identifies whose systems died, not just which batch.
    """

    kind: str
    kernel: str
    group_id: int
    message: str
    array: str | None = None
    index: Any = None
    items: tuple[int, ...] = ()
    sites: tuple[str, ...] = ()
    span: str | None = None
    trace_id: str | None = None
    trace_ids: tuple[str, ...] = ()
    request_ids: tuple[str, ...] = ()
    details: dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        """Human-readable multi-line rendering (used as the exception text)."""
        lines = [f"[sanitizer:{self.kind}] {self.message}"]
        lines.append(f"  kernel: {self.kernel}  work-group: {self.group_id}")
        if self.array is not None:
            cell = "" if self.index is None else f"[{self.index}]"
            lines.append(f"  slm array: {self.array}{cell}")
        if self.items:
            lines.append(f"  work-items (local ids): {list(self.items)}")
        for site in self.sites:
            lines.append(f"  at: {site}")
        if self.span is not None:
            lines.append(f"  span: {self.span}")
        if self.trace_id is not None:
            lines.append(f"  trace: {self.trace_id}")
        if self.request_ids:
            lines.append(f"  victim requests: {list(self.request_ids)}")
        elif self.trace_ids:
            lines.append(f"  victim traces: {list(self.trace_ids)}")
        for key, value in self.details.items():
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)
