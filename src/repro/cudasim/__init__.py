"""A CUDA-flavoured view of the execution-model simulator.

The paper's baseline is Ginkgo's CUDA implementation of the batched
solvers. Its kernels differ from the SYCL port in one important way
(Section 3.2): CUDA has no efficient *thread-block level* reduction
primitive, so reductions are composed from warp-level shuffles plus a
shared-memory combination stage, whereas SYCL offers
``reduce_over_group`` directly.

This package reuses the cooperative executor of :mod:`repro.sycl` but
exposes CUDA semantics and vocabulary:

* the warp width is fixed at 32 (``WARP_SIZE``);
* :class:`~repro.cudasim.thread.CudaItem` offers ``syncthreads``,
  ``shfl_down``/``shfl_up``/``shfl_xor`` and warp ``ballot``-style
  any/all — but deliberately **no** block-scope reduction primitive;
* :class:`~repro.cudasim.stream.Stream` plays the role of a queue and
  records launch statistics just like :class:`repro.sycl.queue.Queue`.

Block-level reductions must therefore be written the CUDA way — see
:func:`repro.kernels.blas1.block_reduce_cuda` — which is exactly the
code-structure difference the paper calls out between the two backends.
"""

from repro.cudasim.device import CudaDevice, a100_device, h100_device
from repro.cudasim.thread import WARP_SIZE, CudaItem
from repro.cudasim.stream import Stream, LaunchConfig

__all__ = [
    "CudaDevice",
    "a100_device",
    "h100_device",
    "WARP_SIZE",
    "CudaItem",
    "Stream",
    "LaunchConfig",
]
