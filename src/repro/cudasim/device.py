"""CUDA device descriptors for the simulator.

The execution-model attributes mirror :class:`repro.sycl.device.SyclDevice`
(a CUDA device *is* a SYCL device with a single supported sub-group size of
32). Performance attributes (Table 5 peaks) live in :mod:`repro.hw.specs`.
"""

from __future__ import annotations

from repro.sycl.device import SyclDevice


class CudaDevice(SyclDevice):
    """A CUDA-capable device: warp width 32 only, SMs as compute units."""

    @property
    def num_sms(self) -> int:
        """Streaming multiprocessor count (alias of ``num_compute_units``)."""
        return self.num_compute_units

    @property
    def warp_size(self) -> int:
        """The fixed CUDA warp width."""
        return 32


def a100_device() -> CudaDevice:
    """NVIDIA A100 80GB PCIe (CUDA 11.8), per Table 5 of the paper.

    The 192 KB figure is the combined L1/shared-memory capacity per SM that
    the paper's Table 5 reports as "Shared Local Mem.".
    """
    return CudaDevice(
        name="NVIDIA A100 80GB PCIe",
        vendor="nvidia",
        num_compute_units=108,
        sub_group_sizes=(32,),
        slm_bytes_per_cu=192 * 1024,
        max_work_group_size=1024,
        max_work_items_per_cu=2048,
        global_mem_bytes=80 * 1024**3,
        extra={"cuda_cores_per_sm": 64, "clock_ghz": 1.41},
    )


def h100_device() -> CudaDevice:
    """NVIDIA H100 PCIe Gen5 (CUDA 11.8), per Table 5 of the paper."""
    return CudaDevice(
        name="NVIDIA H100 PCIe",
        vendor="nvidia",
        num_compute_units=114,
        sub_group_sizes=(32,),
        slm_bytes_per_cu=228 * 1024,
        max_work_group_size=1024,
        max_work_items_per_cu=2048,
        global_mem_bytes=80 * 1024**3,
        extra={"cuda_cores_per_sm": 128, "clock_ghz": 1.755},
    )
