"""CUDA stream: kernel submission with launch statistics.

Mirrors :class:`repro.sycl.queue.Queue` for the CUDA backend. Launches are
specified with a :class:`LaunchConfig` (``<<<grid, block, shared_bytes>>>``)
and kernels written against :class:`~repro.cudasim.thread.CudaItem`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.cudasim.device import CudaDevice, a100_device
from repro.cudasim.thread import cuda_nd_range, wrap_cuda_kernel
from repro.observability.tracer import current_tracer
from repro.sycl.executor import LaunchStats, launch
from repro.sycl.memory import LocalSpec, total_local_bytes
from repro.sycl.queue import Event


@dataclass(frozen=True)
class LaunchConfig:
    """The execution configuration of a CUDA kernel launch."""

    grid_dim: int
    block_dim: int

    def __post_init__(self) -> None:
        if self.grid_dim <= 0 or self.block_dim <= 0:
            raise ValueError(
                f"grid and block dimensions must be positive, got "
                f"<<<{self.grid_dim}, {self.block_dim}>>>"
            )


class Stream:
    """An in-order CUDA stream bound to a device."""

    def __init__(self, device: CudaDevice | None = None) -> None:
        self.device = device if device is not None else a100_device()
        self.events: list[Event] = []

    def launch_kernel(
        self,
        config: LaunchConfig,
        kernel: Callable[..., Any],
        args: tuple = (),
        shared_specs: list[LocalSpec] | None = None,
        name: str | None = None,
    ) -> Event:
        """Launch a CUDA-style kernel and wait for completion."""
        ndrange = cuda_nd_range(config.grid_dim, config.block_dim)
        kernel_name = name or getattr(kernel, "__name__", "kernel")
        tracer = current_tracer()
        with tracer.span(
            kernel_name, category="kernel", device=self.device.name
        ) as span:
            # set geometry before the launch so an aborted launch (e.g. a
            # sanitizer violation) still leaves a valid kernel span
            span.set_args(
                num_groups=config.grid_dim,
                work_group_size=config.block_dim,
                sub_group_size=ndrange.sub_group_size,
                slm_bytes_per_group=total_local_bytes(list(shared_specs or [])),
            )
            submit = time.perf_counter_ns()
            stats: LaunchStats = launch(
                self.device,
                ndrange,
                wrap_cuda_kernel(kernel),
                args=args,
                local_specs=list(shared_specs or []),
                name=kernel_name,
            )
            end = time.perf_counter_ns()
            span.set_args(collectives=dict(stats.collective_counts))
        event = Event(
            name=kernel_name,
            submit_ns=submit,
            start_ns=submit,
            end_ns=end,
            stats=stats,
        )
        self.events.append(event)
        return event

    def submit_host_task(
        self, fn: Callable[[], Any], name: str = "host_task", **span_args: Any
    ) -> tuple[Any, Event]:
        """Run ``fn`` as a host task on this stream (``cudaLaunchHostFunc``).

        Mirrors :meth:`repro.sycl.queue.Queue.submit_host_task`: the task
        lands in the stream's in-order event log with profiling timestamps.
        Returns ``(fn(), event)``.
        """
        tracer = current_tracer()
        with tracer.span(
            name, category="host_task", device=self.device.name, **span_args
        ):
            submit = time.perf_counter_ns()
            result = fn()
            end = time.perf_counter_ns()
        event = Event(
            name=name,
            submit_ns=submit,
            start_ns=submit,
            end_ns=end,
            stats=LaunchStats(),
        )
        self.events.append(event)
        return result, event

    def synchronize(self) -> None:
        """Block until all submitted work completes (no-op: synchronous)."""

    def reset_events(self) -> None:
        """Clear the submission log (mirrors :meth:`repro.sycl.queue.Queue.reset_events`)."""
        self.events.clear()

    @property
    def num_launches(self) -> int:
        """Number of kernels submitted to this stream so far."""
        return len(self.events)
