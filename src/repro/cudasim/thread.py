"""The per-thread handle for CUDA-style kernels.

:class:`CudaItem` wraps the simulator's :class:`~repro.sycl.group.NDItem`
and exposes the CUDA vocabulary: ``threadIdx``/``blockIdx``, warp lane ids,
``syncthreads`` and the ``__shfl_*_sync`` family. It intentionally does
**not** expose a block-level reduction primitive — CUDA kernels build those
out of warp shuffles and shared memory, which is the structural difference
between the CUDA and SYCL solver kernels highlighted in Section 3.2 of the
paper.
"""

from __future__ import annotations

from typing import Any

from repro.sycl.group import NDItem, SyncOp
from repro.sycl.ndrange import NDRange

#: The fixed CUDA warp width.
WARP_SIZE = 32


class CudaItem:
    """CUDA thread view over an :class:`NDItem` (warp width fixed at 32)."""

    __slots__ = ("_item",)

    def __init__(self, item: NDItem) -> None:
        if item.ndrange.sub_group_size != WARP_SIZE:
            raise ValueError(
                f"CUDA kernels execute with warp width {WARP_SIZE}, got "
                f"sub-group size {item.ndrange.sub_group_size}"
            )
        self._item = item

    # -- identities -----------------------------------------------------

    @property
    def thread_idx(self) -> int:
        """``threadIdx.x``."""
        return self._item.local_id

    @property
    def block_idx(self) -> int:
        """``blockIdx.x``."""
        return self._item.group_id

    @property
    def block_dim(self) -> int:
        """``blockDim.x``."""
        return self._item.local_range

    @property
    def grid_dim(self) -> int:
        """``gridDim.x``."""
        return self._item.global_range // self._item.local_range

    @property
    def global_thread_id(self) -> int:
        """``blockIdx.x * blockDim.x + threadIdx.x``."""
        return self._item.global_id

    @property
    def lane_id(self) -> int:
        """Lane within the warp (``threadIdx.x % 32``)."""
        return self._item.lane

    @property
    def warp_id(self) -> int:
        """Warp index within the block (``threadIdx.x / 32``)."""
        return self._item.sub_group_id

    @property
    def num_warps(self) -> int:
        """Warps per block."""
        return self._item.num_sub_groups

    # -- synchronization (yielded) ---------------------------------------

    def syncthreads(self) -> SyncOp:
        """``__syncthreads()`` — block-wide barrier."""
        return self._item.barrier()

    def syncwarp(self) -> SyncOp:
        """``__syncwarp()`` — warp-wide barrier."""
        return self._item.sub_group_barrier()

    def shfl_down(self, value: Any, delta: int) -> SyncOp:
        """``__shfl_down_sync`` — lane ``i`` reads lane ``i + delta``."""
        return self._item.shift_sub_group_left(value, delta)

    def shfl_up(self, value: Any, delta: int) -> SyncOp:
        """``__shfl_up_sync`` — lane ``i`` reads lane ``i - delta``."""
        return self._item.shift_sub_group_right(value, delta)

    def shfl_xor(self, value: Any, mask: int) -> SyncOp:
        """``__shfl_xor_sync`` — butterfly exchange."""
        return self._item.permute_sub_group_xor(value, mask)

    def shfl(self, value: Any, src_lane: int) -> SyncOp:
        """``__shfl_sync`` — all lanes read ``src_lane``."""
        return self._item.broadcast_over_sub_group(value, src_lane)

    def any_sync(self, predicate: bool) -> SyncOp:
        """``__any_sync`` over the block (simulator widens to block scope)."""
        return self._item.any_of_group(predicate)

    def all_sync(self, predicate: bool) -> SyncOp:
        """``__all_sync`` over the block."""
        return self._item.all_of_group(predicate)


def wrap_cuda_kernel(kernel):
    """Adapt a CUDA-style kernel to the simulator's (item, slm, *args) ABI.

    The wrapped kernel receives ``(CudaItem, shared, *args)``; shared memory
    is the SLM namespace.
    """

    def _adapted(item: NDItem, slm, *args):
        return kernel(CudaItem(item), slm, *args)

    _adapted.__name__ = getattr(kernel, "__name__", "cuda_kernel")
    return _adapted


def cuda_nd_range(grid_dim: int, block_dim: int) -> NDRange:
    """Build the simulator ND-range for a ``<<<grid_dim, block_dim>>>`` launch."""
    if block_dim % WARP_SIZE != 0:
        raise ValueError(
            f"block dimension {block_dim} must be a multiple of the warp "
            f"width {WARP_SIZE} in the simulator"
        )
    return NDRange(grid_dim * block_dim, block_dim, WARP_SIZE)
