"""repro — batched sparse iterative solvers on a simulated SYCL stack.

A from-scratch Python reproduction of

    Nguyen, Nayak, Anzt. "Porting Batched Iterative Solvers onto Intel GPUs
    with SYCL." P3HPC @ SC, 2023.

Public entry points:

* :mod:`repro.core` — batched matrix formats (BatchDense/BatchCsr/BatchEll),
  solvers (Cg, Bicgstab, Gmres, Richardson, Trsv, direct LU baseline),
  preconditioners (scalar/block Jacobi, ILU(0), ISAI), stopping criteria,
  the multi-level dispatch mechanism, and launch configuration.
* :mod:`repro.sycl` / :mod:`repro.cudasim` — execution-model simulators.
* :mod:`repro.kernels` — work-item-level kernels on those simulators.
* :mod:`repro.hw` — GPU performance models, occupancy, roofline/advisor.
* :mod:`repro.workloads` — 3-pt stencil, PeleLM surrogates, mini-SUNDIALS.
* :mod:`repro.bench` — the experiment harness regenerating every paper
  table and figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
