"""The persistent tuning database: versioned JSON, atomic writes, metrics.

Tuned launch configurations are keyed by the tuple that determines the
optimum — ``(device, solver, preconditioner, num_rows bucket, precision)``
— in the style of Triton/TVM tuning caches. Row counts are bucketed to
the next power of two so a record tuned at 60 rows also serves 64-row
systems (the launch geometry is identical after sub-group rounding).

Durability contract:

* the on-disk format is versioned JSON; loading a file of a different
  schema version, or one failing validation, raises
  :class:`~repro.exceptions.TuningDBError` rather than silently steering
  launches with garbage;
* every mutation rewrites the file atomically (temp file +
  ``os.replace``), so a crash mid-write never corrupts the database;
* each record carries the :func:`~repro.tune.space.space_signature` of
  the device it was tuned on; lookups against a device whose capability
  surface changed count as *stale* and miss;
* a monotonically increasing **generation** number changes on every
  mutation — consumers that cache derived state (the serving layer's
  plan cache) watch it to invalidate.

Lookup/hit/stale counts land on a
:class:`~repro.observability.metrics.MetricsRegistry` so tuning-cache
effectiveness is visible next to the rest of the telemetry.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, replace
from pathlib import Path

from repro.core.launch import LaunchGeometry
from repro.exceptions import TuningDBError
from repro.observability.metrics import MetricsRegistry
from repro.sycl.device import SyclDevice
from repro.tune.space import TuneCandidate, space_signature

#: On-disk schema version; bump on incompatible format changes.
SCHEMA_VERSION = 1

#: Wildcard for key fields (device-wide records any solver may use).
ANY = "*"


def bucket_rows(num_rows: int) -> int:
    """Round a row count up to its power-of-two tuning bucket (min 4)."""
    if num_rows <= 0:
        raise ValueError(f"num_rows must be positive, got {num_rows}")
    return 1 << max(2, (num_rows - 1).bit_length())


@dataclass(frozen=True)
class TuningKey:
    """What a tuned configuration is keyed by."""

    device: str
    solver: str
    preconditioner: str
    rows_bucket: int
    precision: str

    @classmethod
    def for_problem(
        cls,
        device: str,
        solver: str,
        preconditioner: str,
        num_rows: int,
        precision: str,
    ) -> "TuningKey":
        """The key serving a concrete ``num_rows`` problem."""
        return cls(
            device=device,
            solver=solver,
            preconditioner=preconditioner,
            rows_bucket=bucket_rows(num_rows),
            precision=precision,
        )

    def generalized(self) -> "TuningKey":
        """The device-wide wildcard key of the same (device, rows) class."""
        return replace(self, solver=ANY, preconditioner=ANY, precision=ANY)

    def as_str(self) -> str:
        """The stable string form used as the JSON object key."""
        return "|".join(
            [
                self.device,
                self.solver,
                self.preconditioner,
                str(self.rows_bucket),
                self.precision,
            ]
        )

    @classmethod
    def from_str(cls, text: str) -> "TuningKey":
        """Parse an :meth:`as_str` key (raises :class:`TuningDBError`)."""
        parts = text.split("|")
        if len(parts) != 5:
            raise TuningDBError(f"malformed tuning key {text!r}")
        try:
            bucket = int(parts[3])
        except ValueError:
            raise TuningDBError(f"non-integer rows bucket in key {text!r}") from None
        return cls(parts[0], parts[1], parts[2], bucket, parts[4])


@dataclass(frozen=True)
class TuningRecord:
    """One tuned configuration plus the evidence that selected it."""

    key: TuningKey
    candidate: TuneCandidate
    modeled_seconds: float
    default_seconds: float
    strategy: str
    evaluations: int
    seed: int | None
    space_signature: str

    @property
    def speedup(self) -> float:
        """Default-over-tuned modeled time (>1 means the tuning won)."""
        if self.modeled_seconds <= 0:
            return 1.0
        return self.default_seconds / self.modeled_seconds

    def geometry(self) -> LaunchGeometry:
        """The launch geometry this record pins."""
        return self.candidate.geometry(self.key.device)

    def as_json(self) -> dict:
        """The on-disk payload (key excluded; it is the object key)."""
        return {
            "parameters": self.candidate.as_dict(),
            "modeled_seconds": self.modeled_seconds,
            "default_seconds": self.default_seconds,
            "strategy": self.strategy,
            "evaluations": self.evaluations,
            "seed": self.seed,
            "space_signature": self.space_signature,
        }

    @classmethod
    def from_json(cls, key: TuningKey, data: dict) -> "TuningRecord":
        """Validate + rebuild a record (raises :class:`TuningDBError`)."""
        if not isinstance(data, dict):
            raise TuningDBError(f"record for {key.as_str()!r} is not an object")
        required = (
            "parameters",
            "modeled_seconds",
            "default_seconds",
            "strategy",
            "evaluations",
            "space_signature",
        )
        missing = [field for field in required if field not in data]
        if missing:
            raise TuningDBError(
                f"record for {key.as_str()!r} is missing fields {missing}"
            )
        try:
            candidate = TuneCandidate.from_dict(data["parameters"])
            modeled = float(data["modeled_seconds"])
            default = float(data["default_seconds"])
            evaluations = int(data["evaluations"])
        except (KeyError, TypeError, ValueError) as exc:
            raise TuningDBError(
                f"record for {key.as_str()!r} failed validation: {exc}"
            ) from None
        if modeled <= 0 or default <= 0:
            raise TuningDBError(
                f"record for {key.as_str()!r} has non-positive modeled times"
            )
        seed = data.get("seed")
        return cls(
            key=key,
            candidate=candidate,
            modeled_seconds=modeled,
            default_seconds=default,
            strategy=str(data["strategy"]),
            evaluations=evaluations,
            seed=None if seed is None else int(seed),
            space_signature=str(data["space_signature"]),
        )


class TuningDB:
    """In-memory map of tuning records with optional JSON persistence.

    ``path=None`` keeps the database purely in memory (tests, throwaway
    searches); with a path, the file is loaded eagerly (validating the
    schema) and every mutation is persisted atomically.
    """

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        metrics: MetricsRegistry | None = None,
        event_log: object | None = None,
    ) -> None:
        self.path = None if path is None else Path(path)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.event_log = event_log
        self._records: dict[TuningKey, TuningRecord] = {}
        self._generation = 0
        if self.path is not None and self.path.exists():
            self._load()

    # -- persistence ---------------------------------------------------------

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise TuningDBError(f"cannot read tuning DB {self.path}: {exc}") from None
        if not isinstance(raw, dict):
            raise TuningDBError(f"tuning DB {self.path} is not a JSON object")
        version = raw.get("version")
        if version != SCHEMA_VERSION:
            raise TuningDBError(
                f"tuning DB {self.path} has schema version {version!r}, "
                f"this library reads version {SCHEMA_VERSION}"
            )
        entries = raw.get("entries")
        if not isinstance(entries, dict):
            raise TuningDBError(f"tuning DB {self.path} has no 'entries' object")
        records = {}
        for key_text, payload in entries.items():
            key = TuningKey.from_str(key_text)
            records[key] = TuningRecord.from_json(key, payload)
        self._records = records
        self._generation = int(raw.get("generation", 0))

    def _save(self) -> None:
        if self.path is None:
            return
        payload = {
            "version": SCHEMA_VERSION,
            "generation": self._generation,
            "entries": {
                key.as_str(): record.as_json()
                for key, record in sorted(
                    self._records.items(), key=lambda kv: kv[0].as_str()
                )
            },
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # atomic publish: a crash mid-write leaves the old file intact
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=f".{self.path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- mutation ------------------------------------------------------------

    def put(self, record: TuningRecord) -> None:
        """Insert/replace one record; bumps the generation and persists."""
        self._records[record.key] = record
        self._generation += 1
        self.metrics.counter("tune.db.writes").inc()
        self._emit_generation_bump("put", str(record.key))
        self._save()

    def clear(self, device: str | None = None, solver: str | None = None) -> int:
        """Drop records (all, or filtered by device and/or solver).

        Returns how many were removed; any removal bumps the generation so
        dependent caches re-resolve against the heuristic.
        """
        doomed = [
            key
            for key in self._records
            if (device is None or key.device == device)
            and (solver is None or key.solver == solver)
        ]
        for key in doomed:
            del self._records[key]
        if doomed:
            self._generation += 1
            self._emit_generation_bump("clear", f"{len(doomed)} records")
            self._save()
        return len(doomed)

    def _emit_generation_bump(self, reason: str, detail: str) -> None:
        """Record the mutation on the structured event log, when one exists.

        Pinned (critical) because a generation bump invalidates every
        dependent plan cache — exactly the control-plane change an SLO
        investigation wants on the timeline.
        """
        log = self.event_log
        if log is None:
            from repro.telemetry.events import current_event_log

            log = current_event_log()
        if log is not None:
            from repro.telemetry.events import TUNING_GENERATION_BUMP

            log.emit(
                TUNING_GENERATION_BUMP,
                critical=True,
                generation=self._generation,
                reason=reason,
                detail=detail,
            )

    # -- lookup --------------------------------------------------------------

    def lookup(self, key: TuningKey, signature: str | None = None) -> TuningRecord | None:
        """The record for ``key`` (exact, then device-wide wildcard).

        ``signature`` is the live device's space signature; a record tuned
        under a different signature is *stale*: counted, skipped, and the
        lookup falls through as a miss.
        """
        self.metrics.counter("tune.db.lookups").inc()
        for probe in (key, key.generalized()):
            record = self._records.get(probe)
            if record is None:
                continue
            if signature is not None and record.space_signature != signature:
                self.metrics.counter("tune.db.stale").inc()
                continue
            self.metrics.counter("tune.db.hits").inc()
            return record
        self.metrics.counter("tune.db.misses").inc()
        return None

    def lookup_geometry(
        self,
        device: SyclDevice,
        solver: str,
        preconditioner: str,
        num_rows: int,
        precision: str,
    ) -> LaunchGeometry | None:
        """The tuned launch geometry for a concrete problem, if any.

        This is the hook :class:`~repro.core.launch.LaunchConfigurator`
        consults before its heuristic: staleness is checked against the
        live device and the returned geometry is re-validated against its
        capabilities (a record can never force an illegal launch).
        """
        key = TuningKey.for_problem(
            device.name, solver, preconditioner, num_rows, precision
        )
        record = self.lookup(key, signature=space_signature(device))
        if record is None:
            return None
        candidate = record.candidate
        if not device.supports_sub_group_size(candidate.sub_group_size):
            return None
        if candidate.work_group_size > device.max_work_group_size:
            return None
        return LaunchGeometry(
            work_group_size=candidate.work_group_size,
            sub_group_size=candidate.sub_group_size,
            reduction_scope=candidate.reduction_scope,
            device_name=device.name,
        )

    # -- introspection -------------------------------------------------------

    @property
    def generation(self) -> int:
        """Mutation counter; changes whenever any record is added/removed."""
        return self._generation

    def records(self) -> list[TuningRecord]:
        """All records, sorted by key string."""
        return [
            self._records[key]
            for key in sorted(self._records, key=lambda k: k.as_str())
        ]

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: TuningKey) -> bool:
        return key in self._records
