"""Search strategies over the launch-parameter space.

Three strategies, all driving a ``candidate -> modeled seconds``
evaluation function (lower is better) and all recording their trajectory:

* :func:`grid_search` — exhaustive; the reference answer for the small
  per-problem spaces here (tens of candidates).
* :func:`coordinate_descent` — start from the heuristic default and
  improve one dimension at a time until a full sweep finds nothing
  better; cheap and deterministic.
* :func:`random_search` — seeded uniform sampling under an evaluation
  budget with early stopping after ``patience`` non-improving draws; the
  strategy that scales when the space grows.

Every strategy can be preceded by a **cost-model pre-pruning pass**
(:func:`prune_candidates`): candidates are ranked by the cheap analytic
model and only the best fraction graduates to measured evaluation — the
standard staged-fidelity trick of empirical autotuners.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.tune.evaluate import CandidateEvaluator, EvalFn
from repro.tune.space import ParameterSpace, TuneCandidate

#: Registered strategy names (CLI / Autotuner surface).
GRID = "grid"
COORDINATE = "coordinate"
RANDOM = "random"
STRATEGIES = (GRID, COORDINATE, RANDOM)


@dataclass
class SearchResult:
    """Outcome of one search: the winner plus the evidence trail."""

    strategy: str
    best: TuneCandidate
    best_seconds: float
    default: TuneCandidate
    default_seconds: float
    evaluations: int
    seed: int | None = None
    pruned_from: int | None = None
    history: list[tuple[TuneCandidate, float]] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Default-over-best modeled time (>= 1 when the default is in the
        evaluated set, since the best can only match or beat it)."""
        if self.best_seconds <= 0:
            return 1.0
        return self.default_seconds / self.best_seconds


def prune_candidates(
    candidates: list[TuneCandidate],
    cost_model: EvalFn,
    keep_fraction: float = 0.5,
    min_keep: int = 4,
) -> list[TuneCandidate]:
    """Rank by the cheap cost model, keep the best slice for measurement."""
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
    if keep_fraction == 1.0 or len(candidates) <= min_keep:
        return list(candidates)
    ranked = sorted(candidates, key=cost_model)
    keep = max(min_keep, int(len(ranked) * keep_fraction))
    return ranked[:keep]


def _evaluate(
    candidates: list[TuneCandidate],
    measure: EvalFn,
    history: list[tuple[TuneCandidate, float]],
    cache: dict[TuneCandidate, float],
) -> None:
    for candidate in candidates:
        if candidate in cache:
            continue
        seconds = measure(candidate)
        cache[candidate] = seconds
        history.append((candidate, seconds))


def _finish(
    strategy: str,
    space: ParameterSpace,
    measure: EvalFn,
    history: list[tuple[TuneCandidate, float]],
    cache: dict[TuneCandidate, float],
    seed: int | None = None,
    pruned_from: int | None = None,
) -> SearchResult:
    """Common epilogue: make sure the default was measured, pick the best."""
    default = space.default_candidate()
    _evaluate([default], measure, history, cache)
    best = min(cache, key=cache.get)
    return SearchResult(
        strategy=strategy,
        best=best,
        best_seconds=cache[best],
        default=default,
        default_seconds=cache[default],
        evaluations=len(cache),
        seed=seed,
        pruned_from=pruned_from,
        history=history,
    )


def grid_search(
    evaluator: CandidateEvaluator,
    prune_fraction: float = 1.0,
) -> SearchResult:
    """Measure every (optionally pre-pruned) legal candidate."""
    space = evaluator.space
    candidates = space.candidates()
    pruned_from = None
    if prune_fraction < 1.0:
        pruned_from = len(candidates)
        candidates = prune_candidates(
            candidates, evaluator.cost_model_seconds, keep_fraction=prune_fraction
        )
    history: list[tuple[TuneCandidate, float]] = []
    cache: dict[TuneCandidate, float] = {}
    _evaluate(candidates, evaluator.measured_seconds, history, cache)
    return _finish(
        GRID, space, evaluator.measured_seconds, history, cache, pruned_from=pruned_from
    )


def coordinate_descent(
    evaluator: CandidateEvaluator,
    max_rounds: int = 4,
) -> SearchResult:
    """Greedy one-dimension-at-a-time improvement from the default.

    Each round sweeps the four dimensions in order; within a dimension
    every legal alternative value (others held fixed) is measured and the
    best kept. Stops after a full round without improvement, or
    ``max_rounds``.
    """
    if max_rounds <= 0:
        raise ValueError(f"max_rounds must be positive, got {max_rounds}")
    space = evaluator.space
    history: list[tuple[TuneCandidate, float]] = []
    cache: dict[TuneCandidate, float] = {}
    current = space.default_candidate()
    _evaluate([current], evaluator.measured_seconds, history, cache)

    def neighbours(base: TuneCandidate, dim: str) -> list[TuneCandidate]:
        out = []
        if dim == "sub_group_size":
            values = space.sub_group_sizes()
        elif dim == "work_group_size":
            values = space.work_group_sizes(base.sub_group_size)
        elif dim == "reduction_scope":
            values = space.reduction_scopes(base.sub_group_size)
        else:
            values = list(space.slm_strategies())
        for value in values:
            moved = TuneCandidate(**{**base.as_dict(), dim: value})  # type: ignore[arg-type]
            if moved != base and space.is_legal(moved):
                out.append(moved)
        return out

    for _round in range(max_rounds):
        improved = False
        for dim in (
            "sub_group_size",
            "work_group_size",
            "reduction_scope",
            "slm_strategy",
        ):
            moves = neighbours(current, dim)
            _evaluate(moves, evaluator.measured_seconds, history, cache)
            best_move = min(moves, key=cache.get, default=None)
            if best_move is not None and cache[best_move] < cache[current]:
                current = best_move
                improved = True
        if not improved:
            break
    return _finish(COORDINATE, space, evaluator.measured_seconds, history, cache)


def random_search(
    evaluator: CandidateEvaluator,
    budget: int = 16,
    patience: int = 8,
    seed: int = 0,
    prune_fraction: float = 0.5,
) -> SearchResult:
    """Seeded random sampling under a measured-evaluation budget.

    The candidate pool is cost-model pre-pruned to ``prune_fraction``;
    sampling stops early after ``patience`` consecutive draws that fail
    to improve on the incumbent. The same seed replays the exact search.
    """
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    if patience <= 0:
        raise ValueError(f"patience must be positive, got {patience}")
    space = evaluator.space
    pool = space.candidates()
    pruned_from = None
    if prune_fraction < 1.0:
        pruned_from = len(pool)
        pool = prune_candidates(
            pool, evaluator.cost_model_seconds, keep_fraction=prune_fraction
        )
    rng = random.Random(seed)
    order = list(pool)
    rng.shuffle(order)

    history: list[tuple[TuneCandidate, float]] = []
    cache: dict[TuneCandidate, float] = {}
    best_seconds = float("inf")
    since_improvement = 0
    for candidate in order[:budget]:
        _evaluate([candidate], evaluator.measured_seconds, history, cache)
        if cache[candidate] < best_seconds:
            best_seconds = cache[candidate]
            since_improvement = 0
        else:
            since_improvement += 1
            if since_improvement >= patience:
                break
    return _finish(
        RANDOM,
        space,
        evaluator.measured_seconds,
        history,
        cache,
        seed=seed,
        pruned_from=pruned_from,
    )


def run_search(
    evaluator: CandidateEvaluator,
    strategy: str = GRID,
    budget: int = 16,
    patience: int = 8,
    seed: int = 0,
    prune_fraction: float = 1.0,
) -> SearchResult:
    """Dispatch to a strategy by name (the Autotuner/CLI entry point)."""
    if strategy == GRID:
        return grid_search(evaluator, prune_fraction=prune_fraction)
    if strategy == COORDINATE:
        return coordinate_descent(evaluator)
    if strategy == RANDOM:
        return random_search(
            evaluator,
            budget=budget,
            patience=patience,
            seed=seed,
            prune_fraction=prune_fraction if prune_fraction < 1.0 else 0.5,
        )
    raise ValueError(f"unknown search strategy {strategy!r}; available: {STRATEGIES}")
