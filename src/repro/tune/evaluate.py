"""Empirical evaluation of tuning candidates.

Two evaluation fidelities, mirroring how real autotuners stage their
search:

* :meth:`CandidateEvaluator.cost_model_seconds` — a *cheap analytic
  score*: synthetic per-iteration traffic derived from the matrix shape
  and the solver's declared workspace, priced by the
  :mod:`repro.hw.timing` wave model. No solver runs. Used by the
  pre-pruning pass that discards obviously-bad candidates before any
  measured run.
* :meth:`CandidateEvaluator.measured_seconds` — the *measured* score: the
  real solver runs once on the simulator (its iteration counts and
  per-object traffic ledger are cached and shared across candidates,
  since the numerics are launch-geometry independent), then each
  candidate's workspace placement and launch geometry are priced with the
  measured traffic through the same wave model. This is the modeled
  solve time the TuningDB records.

Both paths price occupancy with the ``exact`` SLM policy — residency is
precisely what the work-group sizing and SLM-placement knobs trade
against bandwidth locality, which the paper's default greedy policy
(every group claims the whole SLM) deliberately leaves on the table.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.core.dispatch import BatchSolverFactory
from repro.core.launch import WORK_GROUP_REDUCE
from repro.core.workspace import SlmBudget, WorkspacePlan, plan_workspace
from repro.hw.memmodel import TrafficSplit, split_traffic
from repro.hw.occupancy import EXACT
from repro.hw.specs import GpuSpec
from repro.hw.timing import estimate_runtime
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import current_tracer
from repro.tune.space import (
    SLM_HALF,
    SLM_LARGE_FIRST,
    SLM_OFF,
    SLM_PAPER,
    SLM_SMALL_FIRST,
    ParameterSpace,
    TuneCandidate,
)

#: Nominal iteration count of the analytic cost model: it scales every
#: candidate identically, so only the relative ranking matters.
_COST_MODEL_ITERATIONS = 10.0

#: Reductions per solver iteration assumed by the analytic cost model when
#: no measured ledger exists yet (CG: 2 dots + 1 norm; BiCGSTAB: 4 dots +
#: 2 norms). The measured path derives the true figure from the ledger.
_NOMINAL_REDUCTIONS = {"cg": 3.0, "bicgstab": 6.0}


def plan_candidate_workspace(
    vectors: list[tuple[str, int]],
    budget: SlmBudget,
    strategy: str,
    precond_doubles: int = 0,
    bytes_per_value: int = 8,
) -> WorkspacePlan:
    """The Section-3.5 allocation under one tuning strategy.

    ``paper`` keeps the solver-declared priority order; ``small_first`` /
    ``large_first`` reorder by size; ``half_capacity`` halves the budget
    (doubling the residency the occupancy model can reach); ``off``
    streams everything from global memory.
    """
    if strategy == SLM_OFF:
        budget = SlmBudget(0)
    elif strategy == SLM_HALF:
        budget = SlmBudget(budget.capacity_bytes // 2)
    elif strategy not in (SLM_PAPER, SLM_SMALL_FIRST, SLM_LARGE_FIRST):
        raise ValueError(f"unknown SLM strategy {strategy!r}")
    order = list(vectors)
    if strategy == SLM_SMALL_FIRST:
        order.sort(key=lambda item: item[1])
    elif strategy == SLM_LARGE_FIRST:
        order.sort(key=lambda item: item[1], reverse=True)
    return plan_workspace(
        order, budget, precond_doubles=precond_doubles, bytes_per_value=bytes_per_value
    )


@dataclass(frozen=True)
class TuneWorkload:
    """The problem the tuner measures candidates against.

    ``nb_solve`` systems are actually solved on the simulator (enough to
    measure iterations and traffic); ``num_batch_model`` is the batch
    size the wave model prices — the paper's replicate-to-emulate-a-
    larger-mesh device (Section 4.1).
    """

    kind: str  # "stencil" or "pele"
    name: str  # display name / mechanism name
    num_rows: int
    solver: str = "cg"
    preconditioner: str = "jacobi"
    criterion: str = "relative"
    precision: str = "double"
    tolerance: float = 1e-8
    max_iterations: int = 200
    nb_solve: int = 8
    num_batch_model: int = 2**15
    seed: int = 0

    def build(self):
        """The ``(matrix, b)`` pair of this workload (seeded)."""
        if self.kind == "stencil":
            from repro.workloads.stencil import stencil_rhs, three_point_stencil

            matrix = three_point_stencil(self.num_rows, self.nb_solve, seed=self.seed)
            return matrix, stencil_rhs(self.num_rows, self.nb_solve, seed=self.seed + 1)
        if self.kind == "pele":
            from repro.workloads.pele import pele_batch, pele_rhs

            matrix = pele_batch(self.name, self.nb_solve, seed=self.seed)
            return matrix, pele_rhs(matrix, seed=self.seed + 1)
        raise ValueError(f"unknown workload kind {self.kind!r}")


def stencil_workload(num_rows: int, **kwargs) -> TuneWorkload:
    """A 3-point-stencil tuning workload (SPD; CG by default)."""
    return TuneWorkload(kind="stencil", name=f"stencil{num_rows}", num_rows=num_rows, **kwargs)


def pele_workload(mechanism: str, **kwargs) -> TuneWorkload:
    """A PeleLM mechanism tuning workload (non-SPD; BiCGSTAB by default)."""
    from repro.workloads.pele import MECHANISMS

    if mechanism not in MECHANISMS:
        raise KeyError(
            f"unknown mechanism {mechanism!r}; available: {sorted(MECHANISMS)}"
        )
    kwargs.setdefault("solver", "bicgstab")
    return TuneWorkload(
        kind="pele",
        name=mechanism,
        num_rows=MECHANISMS[mechanism].num_rows,
        **kwargs,
    )


@dataclass
class _MeasuredSolve:
    """The once-per-workload simulator run shared by every candidate."""

    vectors: list[tuple[str, int]]
    precond_doubles: int
    value_bytes: int
    nnz_per_item: int
    pattern_bytes: float
    iterations: float
    ledger: object
    reductions_per_iter: float


class CandidateEvaluator:
    """Prices :class:`TuneCandidate` values for one (platform, workload)."""

    def __init__(
        self,
        spec: GpuSpec,
        workload: TuneWorkload,
        metrics: MetricsRegistry | None = None,
        policy: str = EXACT,
    ) -> None:
        self.spec = spec
        self.workload = workload
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.policy = policy
        self.space = ParameterSpace(spec.device, workload.num_rows)
        self._measured: _MeasuredSolve | None = None
        self._analytic: _MeasuredSolve | None = None

    # -- the one expensive simulator run ------------------------------------

    def _ensure_measured(self) -> _MeasuredSolve:
        if self._measured is not None:
            return self._measured
        w = self.workload
        tracer = current_tracer()
        with tracer.span(
            "tune.measure_workload",
            category="tune",
            workload=w.name,
            solver=w.solver,
            platform=self.spec.key,
            nb_solve=w.nb_solve,
        ):
            matrix, b = w.build()
            factory = BatchSolverFactory(
                solver=w.solver,
                preconditioner=w.preconditioner,
                criterion=w.criterion,
                precision=w.precision,
                tolerance=w.tolerance,
                max_iterations=w.max_iterations,
            )
            resolved = factory.resolve(matrix.format_name)
            matrix = resolved.prepare(matrix)
            solver = resolved.build(matrix)
            result = solver.solve(b)
            values_bytes_per_item = matrix.value_bytes * matrix.nnz_per_item
            iterations = solver.model_stages(result)
            calls = result.ledger.calls
            reduction_calls = calls.get("dot", 0) + calls.get("norm", 0)
            self._measured = _MeasuredSolve(
                vectors=solver.workspace_vectors(),
                precond_doubles=solver.preconditioner.workspace_doubles_per_system(),
                value_bytes=matrix.value_bytes,
                nnz_per_item=matrix.nnz_per_item,
                pattern_bytes=max(
                    0.0, matrix.storage_bytes - values_bytes_per_item * matrix.num_batch
                ),
                iterations=iterations,
                ledger=result.ledger,
                reductions_per_iter=reduction_calls / (w.nb_solve * iterations),
            )
        self.metrics.counter("tune.workload_solves").inc()
        return self._measured

    # -- shared pieces -------------------------------------------------------

    def _workspace_for(self, candidate: TuneCandidate, measured: _MeasuredSolve) -> WorkspacePlan:
        return plan_candidate_workspace(
            measured.vectors,
            SlmBudget(self.spec.slm_bytes_per_cu),
            candidate.slm_strategy,
            precond_doubles=measured.precond_doubles,
            bytes_per_value=measured.value_bytes,
        )

    def _cold_bytes(self, measured: _MeasuredSolve) -> float:
        nb = self.workload.num_batch_model
        n, vb = self.workload.num_rows, measured.value_bytes
        return (
            measured.value_bytes * measured.nnz_per_item * nb
            + measured.pattern_bytes
            + 2.0 * vb * n * nb  # b read + x write
        )

    def _price(
        self,
        candidate: TuneCandidate,
        workspace: WorkspacePlan,
        per_group_iter: TrafficSplit,
        iterations: float,
        cold_bytes: float,
        value_bytes: int,
        reductions_per_iter: float,
    ) -> float:
        # Section 3.6: work-group-scope reductions round-trip per-item
        # partials through SLM and synchronize at a work-group barrier;
        # sub-group-scope reductions stay in registers (shuffles) and cost
        # neither. This is the term that makes the sub-group fast path win
        # below the experimentally-determined threshold.
        work_group_scope = candidate.reduction_scope == WORK_GROUP_REDUCE
        if work_group_scope:
            reduce_slm = (
                2.0 * candidate.work_group_size * value_bytes * reductions_per_iter
            )
            per_group_iter = replace(
                per_group_iter, slm_bytes=per_group_iter.slm_bytes + reduce_slm
            )
        plan = candidate.geometry(self.spec.device.name).plan(
            self.workload.num_batch_model, slm_bytes_per_group=workspace.slm_bytes_used
        )
        timing = estimate_runtime(
            self.spec,
            per_group_iter,
            iterations,
            self.workload.num_batch_model,
            plan,
            workspace,
            policy=self.policy,
            cold_bytes_total=cold_bytes,
            flop_rate_scale=8.0 / value_bytes,
        )
        seconds = timing.total_seconds
        if work_group_scope:
            seconds += (
                timing.occupancy.waves
                * iterations
                * reductions_per_iter
                * self.spec.iter_latency_ns
                * 1e-9
            )
        return seconds

    # -- evaluation fidelities ----------------------------------------------

    def cost_model_seconds(self, candidate: TuneCandidate) -> float:
        """Analytic score from synthetic traffic (no solver run)."""
        measured = self._ensure_analytic()
        workspace = self._workspace_for(candidate, measured)
        n, vb = self.workload.num_rows, measured.value_bytes
        slm = hbm = 0.0
        for name, doubles in measured.vectors:
            nbytes = 2.0 * doubles * vb  # one read + one write per iteration
            if workspace.level_of(name) == "slm":
                slm += nbytes
            else:
                hbm += nbytes
        l2 = measured.nnz_per_item * (vb + 4.0) + n * vb  # SpMV values+pattern, b
        split = TrafficSplit(
            slm_bytes=slm,
            l2_bytes=l2,
            hbm_bytes=hbm,
            flops=2.0 * measured.nnz_per_item + 10.0 * n,
        )
        self.metrics.counter("tune.cost_model_evals").inc()
        return self._price(
            candidate,
            workspace,
            split,
            _COST_MODEL_ITERATIONS,
            0.0,
            vb,
            measured.reductions_per_iter,
        )

    def _ensure_analytic(self) -> _MeasuredSolve:
        """Workspace/shape facts for the cost model without solving.

        Reuses the measured run when one already happened; otherwise
        builds the solver (cheap: preconditioner generation only) and
        leaves the solve for a later measured evaluation.
        """
        if self._measured is not None:
            return self._measured
        if self._analytic is not None:
            return self._analytic
        w = self.workload
        matrix, _b = w.build()
        factory = BatchSolverFactory(
            solver=w.solver,
            preconditioner=w.preconditioner,
            criterion=w.criterion,
            precision=w.precision,
            tolerance=w.tolerance,
            max_iterations=w.max_iterations,
        )
        resolved = factory.resolve(matrix.format_name)
        matrix = resolved.prepare(matrix)
        solver = resolved.build(matrix)
        self._analytic = _MeasuredSolve(
            vectors=solver.workspace_vectors(),
            precond_doubles=solver.preconditioner.workspace_doubles_per_system(),
            value_bytes=matrix.value_bytes,
            nnz_per_item=matrix.nnz_per_item,
            pattern_bytes=0.0,
            iterations=_COST_MODEL_ITERATIONS,
            ledger=None,
            reductions_per_iter=_NOMINAL_REDUCTIONS.get(w.solver, 3.0),
        )
        return self._analytic

    def measured_seconds(self, candidate: TuneCandidate) -> float:
        """Modeled solve time from the real (measured) simulator run."""
        measured = self._ensure_measured()
        workspace = self._workspace_for(candidate, measured)
        full = split_traffic(measured.ledger, workspace)
        per_group_iter = full.scaled(
            1.0 / (self.workload.nb_solve * measured.iterations)
        )
        self.metrics.counter("tune.measurements").inc()
        return self._price(
            candidate,
            workspace,
            per_group_iter,
            measured.iterations,
            self._cold_bytes(measured),
            measured.value_bytes,
            measured.reductions_per_iter,
        )

    def default_candidate(self) -> TuneCandidate:
        """The untuned pipeline's choice (heuristic geometry, paper SLM)."""
        return self.space.default_candidate()


#: An evaluation function: candidate -> modeled seconds (lower is better).
EvalFn = Callable[[TuneCandidate], float]
