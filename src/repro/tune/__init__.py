"""Empirical autotuning of the Section 3.5/3.6 launch parameters.

The paper deliberately leaves its launch knobs open — the small/large
sub-group threshold "needs to be determined experimentally for each
targeted device", SLM placement is a capacity-bounded priority order —
and this subsystem determines them experimentally, in the style of
Triton/TVM tuning caches:

* :mod:`repro.tune.space` — the legal launch-parameter space per
  ``(device, num_rows)``;
* :mod:`repro.tune.evaluate` — cheap cost-model scoring and measured
  (real solver run + wave model) scoring of candidates;
* :mod:`repro.tune.search` — exhaustive grid, coordinate descent, and
  seeded random search with budget/early stopping, all with optional
  cost-model pre-pruning;
* :mod:`repro.tune.db` — the persistent, versioned, atomically-written
  TuningDB keyed by (device, solver, preconditioner, rows bucket,
  precision), with staleness detection and a generation counter that
  downstream caches (``repro.serve.PlanCache``) watch;
* :mod:`repro.tune.tuner` — the :class:`Autotuner` orchestrator and the
  :func:`derive_threshold` device-threshold extractor.

Consumption: ``LaunchConfigurator(device, tuning_db=db)`` consults the
database before its heuristic, ``SolverService(..., tuning_db=db)``
serves tuned geometry through its plan cache, and ``python -m repro
tune`` drives searches from the command line.
"""

from repro.tune.db import ANY, TuningDB, TuningKey, TuningRecord, bucket_rows
from repro.tune.evaluate import (
    CandidateEvaluator,
    TuneWorkload,
    pele_workload,
    plan_candidate_workspace,
    stencil_workload,
)
from repro.tune.search import (
    COORDINATE,
    GRID,
    RANDOM,
    STRATEGIES,
    SearchResult,
    coordinate_descent,
    grid_search,
    prune_candidates,
    random_search,
    run_search,
)
from repro.tune.space import (
    SLM_STRATEGIES,
    ParameterSpace,
    TuneCandidate,
    space_signature,
)
from repro.tune.tuner import Autotuner, TuneOutcome, derive_threshold

__all__ = [
    "ANY",
    "Autotuner",
    "CandidateEvaluator",
    "COORDINATE",
    "GRID",
    "ParameterSpace",
    "RANDOM",
    "STRATEGIES",
    "SearchResult",
    "SLM_STRATEGIES",
    "TuneCandidate",
    "TuneOutcome",
    "TuneWorkload",
    "TuningDB",
    "TuningKey",
    "TuningRecord",
    "bucket_rows",
    "coordinate_descent",
    "derive_threshold",
    "grid_search",
    "pele_workload",
    "plan_candidate_workspace",
    "prune_candidates",
    "random_search",
    "run_search",
    "space_signature",
    "stencil_workload",
]
