"""The launch-parameter space the autotuner searches.

The paper leaves its launch parameters open on purpose: the small/large
sub-group threshold "needs to be determined experimentally for each
targeted device" (Section 3.6) and the SLM placement follows a priority
order bounded by device capacity (Section 3.5). A :class:`TuneCandidate`
pins every one of those free choices for one ``(device, num_rows)``
problem class:

* **sub-group size** — any width the device's compiler supports;
* **work-group size** — a sub-group-aligned size between one sub-group
  and the full row coverage (smaller groups process rows in strided
  chunks but raise work-group residency per compute unit);
* **reduction scope** — sub-group-scope reductions are only legal when a
  single sub-group covers the system (the paper's small-matrix fast
  path); work-group scope is always legal;
* **SLM strategy** — how the Section-3.5 priority list is ordered and
  bounded before the greedy allocator runs (the paper's order, size-based
  reorderings, a half-capacity cap that trades SLM locality for
  residency, or no SLM at all).

:class:`ParameterSpace` enumerates exactly the *legal* combinations for a
device, and :func:`space_signature` fingerprints the capability surface so
persisted tuning records can be detected as stale when the device
description (or the space itself) changes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.core.launch import (
    SUB_GROUP_REDUCE,
    WORK_GROUP_REDUCE,
    LaunchConfigurator,
    LaunchGeometry,
)
from repro.sycl.device import SyclDevice
from repro.utils.validation import round_up

#: Bumped whenever the space's shape or legality rules change; part of the
#: staleness signature of persisted records.
SPACE_VERSION = 1

#: SLM placement strategies (how the priority list reaches the allocator).
SLM_PAPER = "paper"  # the solver-declared Section-3.5 order
SLM_SMALL_FIRST = "small_first"  # pack many small vectors first
SLM_LARGE_FIRST = "large_first"  # keep the big bandwidth hogs resident
SLM_HALF = "half_capacity"  # cap at half the SLM -> double residency
SLM_OFF = "off"  # everything streams from global memory

SLM_STRATEGIES = (SLM_PAPER, SLM_SMALL_FIRST, SLM_LARGE_FIRST, SLM_HALF, SLM_OFF)


@dataclass(frozen=True)
class TuneCandidate:
    """One fully-pinned launch configuration under tuning."""

    sub_group_size: int
    work_group_size: int
    reduction_scope: str
    slm_strategy: str

    def geometry(self, device_name: str) -> LaunchGeometry:
        """The launch geometry this candidate realizes."""
        return LaunchGeometry(
            work_group_size=self.work_group_size,
            sub_group_size=self.sub_group_size,
            reduction_scope=self.reduction_scope,
            device_name=device_name,
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view (the TuningDB record payload)."""
        return {
            "sub_group_size": self.sub_group_size,
            "work_group_size": self.work_group_size,
            "reduction_scope": self.reduction_scope,
            "slm_strategy": self.slm_strategy,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TuneCandidate":
        """Rebuild a candidate from its :meth:`as_dict` payload."""
        return cls(
            sub_group_size=int(data["sub_group_size"]),
            work_group_size=int(data["work_group_size"]),
            reduction_scope=str(data["reduction_scope"]),
            slm_strategy=str(data["slm_strategy"]),
        )


def space_signature(device: SyclDevice) -> str:
    """Fingerprint of the tunable capability surface of ``device``.

    Persisted tuning records carry this; a record whose signature no
    longer matches the live device (different sub-group widths, SLM
    capacity, work-group or residency limits — or a newer space version)
    is *stale* and must not steer launches.
    """
    digest = hashlib.sha1(
        "|".join(
            [
                f"v{SPACE_VERSION}",
                device.name,
                ",".join(str(s) for s in sorted(device.sub_group_sizes)),
                str(device.max_work_group_size),
                str(device.slm_bytes_per_cu),
                str(device.max_work_items_per_cu),
            ]
        ).encode()
    )
    return digest.hexdigest()[:16]


class ParameterSpace:
    """All legal :class:`TuneCandidate` values for ``(device, num_rows)``."""

    def __init__(self, device: SyclDevice, num_rows: int) -> None:
        if num_rows <= 0:
            raise ValueError(f"num_rows must be positive, got {num_rows}")
        self.device = device
        self.num_rows = num_rows

    # -- per-dimension enumeration ------------------------------------------

    def sub_group_sizes(self) -> list[int]:
        """Supported sub-group widths (ascending)."""
        return sorted(self.device.sub_group_sizes)

    def work_group_sizes(self, sub_group_size: int) -> list[int]:
        """Sub-group-aligned work-group sizes from one sub-group up to
        full row coverage, clamped to the device maximum."""
        coverage = round_up(self.num_rows, sub_group_size)
        cap = self.device.max_work_group_size // sub_group_size * sub_group_size
        if cap <= 0:
            return []
        limit = min(coverage, cap)
        sizes = []
        wg = sub_group_size
        while wg < limit:
            sizes.append(wg)
            wg *= 2
        sizes.append(limit)
        return sizes

    def reduction_scopes(self, sub_group_size: int) -> list[str]:
        """Work-group scope always; sub-group scope only when one
        sub-group covers every row (the correctness condition of the
        paper's small-matrix fast path)."""
        scopes = [WORK_GROUP_REDUCE]
        if self.num_rows <= sub_group_size:
            scopes.insert(0, SUB_GROUP_REDUCE)
        return scopes

    def slm_strategies(self) -> tuple[str, ...]:
        """The SLM placement strategies (device-independent)."""
        return SLM_STRATEGIES

    # -- the space ----------------------------------------------------------

    def is_legal(self, candidate: TuneCandidate) -> bool:
        """True when the device can run ``candidate`` for this row count."""
        sg, wg = candidate.sub_group_size, candidate.work_group_size
        if not self.device.supports_sub_group_size(sg):
            return False
        if wg < sg or wg % sg != 0 or wg > self.device.max_work_group_size:
            return False
        if wg > round_up(self.num_rows, sg):
            return False
        if candidate.reduction_scope == SUB_GROUP_REDUCE and self.num_rows > sg:
            return False
        if candidate.reduction_scope not in (SUB_GROUP_REDUCE, WORK_GROUP_REDUCE):
            return False
        return candidate.slm_strategy in SLM_STRATEGIES

    def candidates(self) -> list[TuneCandidate]:
        """Every legal candidate, in deterministic enumeration order."""
        out = []
        for sg in self.sub_group_sizes():
            for wg in self.work_group_sizes(sg):
                for scope in self.reduction_scopes(sg):
                    for strategy in self.slm_strategies():
                        out.append(TuneCandidate(sg, wg, scope, strategy))
        return out

    def default_candidate(self) -> TuneCandidate:
        """What the untuned pipeline would pick: the Section-3.6 heuristic
        geometry with the paper's SLM priority order."""
        geo = LaunchConfigurator(self.device).geometry(self.num_rows)
        return TuneCandidate(
            sub_group_size=geo.sub_group_size,
            work_group_size=geo.work_group_size,
            reduction_scope=geo.reduction_scope,
            slm_strategy=SLM_PAPER,
        )

    def signature(self) -> str:
        """The staleness signature of this space's device."""
        return space_signature(self.device)

    def __len__(self) -> int:
        return len(self.candidates())
