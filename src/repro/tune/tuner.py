"""The autotuner: parameter space x search x evaluation x TuningDB.

:class:`Autotuner` is the one-call surface: given a platform and a
workload it checks the persistent :class:`~repro.tune.db.TuningDB`
first (same-key re-tunes are cache hits and run **no** measurements),
otherwise runs the configured search strategy and persists the winner.
Every tuning run emits a ``tune.search`` tracer span and counters on the
database's metrics registry, so a trace shows when serving-path latency
was spent re-tuning versus hitting the cache.

:func:`derive_threshold` turns a column of tuned records into the
paper's per-device small/large **sub-group threshold** ("needs to be
determined experimentally for each targeted device", Section 3.6): the
crossover row count where the tuned sub-group size switches from the
device's small width to its large one, ready to stamp into
``device.extra['sub_group_threshold_rows']``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.specs import GpuSpec
from repro.observability.tracer import current_tracer
from repro.tune.db import TuningDB, TuningKey, TuningRecord
from repro.tune.evaluate import CandidateEvaluator, TuneWorkload
from repro.tune.search import GRID, SearchResult, run_search
from repro.tune.space import space_signature


@dataclass
class TuneOutcome:
    """What one :meth:`Autotuner.tune` call produced."""

    record: TuningRecord
    from_cache: bool
    search: SearchResult | None = None

    @property
    def speedup(self) -> float:
        """Default-over-tuned modeled time of the stored record."""
        return self.record.speedup


class Autotuner:
    """Searches launch configurations and remembers the winners."""

    def __init__(
        self,
        spec: GpuSpec,
        db: TuningDB | None = None,
        strategy: str = GRID,
        budget: int = 16,
        patience: int = 8,
        seed: int = 0,
        prune_fraction: float = 1.0,
    ) -> None:
        self.spec = spec
        self.db = db if db is not None else TuningDB()
        self.strategy = strategy
        self.budget = budget
        self.patience = patience
        self.seed = seed
        self.prune_fraction = prune_fraction

    def key_for(self, workload: TuneWorkload) -> TuningKey:
        """The TuningDB key a workload tunes."""
        return TuningKey.for_problem(
            self.spec.device.name,
            workload.solver,
            workload.preconditioner,
            workload.num_rows,
            workload.precision,
        )

    def tune(
        self,
        workload: TuneWorkload,
        force: bool = False,
        store_generic: bool = False,
    ) -> TuneOutcome:
        """The tuned record for ``workload`` — cached, or freshly searched.

        ``force`` re-searches even on a database hit. ``store_generic``
        additionally stores the winner under the device-wide wildcard key,
        so launch paths without a full dispatch context still benefit.
        """
        key = self.key_for(workload)
        signature = space_signature(self.spec.device)
        tracer = current_tracer()
        if not force:
            cached = self.db.lookup(key, signature=signature)
            if cached is not None:
                self.db.metrics.counter("tune.runs_cached").inc()
                return TuneOutcome(record=cached, from_cache=True)

        evaluator = CandidateEvaluator(
            self.spec, workload, metrics=self.db.metrics
        )
        with tracer.span(
            "tune.search",
            category="tune",
            platform=self.spec.key,
            workload=workload.name,
            solver=workload.solver,
            strategy=self.strategy,
            num_rows=workload.num_rows,
        ) as span:
            result = run_search(
                evaluator,
                strategy=self.strategy,
                budget=self.budget,
                patience=self.patience,
                seed=self.seed,
                prune_fraction=self.prune_fraction,
            )
            span.set_args(
                evaluations=result.evaluations,
                best_seconds=result.best_seconds,
                default_seconds=result.default_seconds,
                speedup=round(result.speedup, 4),
            )
        record = TuningRecord(
            key=key,
            candidate=result.best,
            modeled_seconds=result.best_seconds,
            default_seconds=result.default_seconds,
            strategy=result.strategy,
            evaluations=result.evaluations,
            seed=result.seed,
            space_signature=signature,
        )
        self.db.put(record)
        if store_generic:
            self.db.put(
                TuningRecord(
                    key=key.generalized(),
                    candidate=result.best,
                    modeled_seconds=result.best_seconds,
                    default_seconds=result.default_seconds,
                    strategy=result.strategy,
                    evaluations=result.evaluations,
                    seed=result.seed,
                    space_signature=signature,
                )
            )
        self.db.metrics.counter("tune.runs_searched").inc()
        if tracer.enabled:
            tracer.instant(
                "tune.record_stored",
                key=key.as_str(),
                speedup=round(record.speedup, 4),
            )
        return TuneOutcome(record=record, from_cache=False, search=result)


def derive_threshold(db: TuningDB, device_name: str) -> int | None:
    """The experimentally-determined sub-group threshold for a device.

    Scans the device's tuned records across row buckets and returns the
    largest bucket whose winning sub-group size is still the *small*
    width — i.e. the paper's crossover point, suitable for
    ``device.extra['sub_group_threshold_rows']``. ``None`` when the
    device has no records or never tuned to more than one width.
    """
    by_bucket: dict[int, int] = {}
    for record in db.records():
        if record.key.device != device_name:
            continue
        bucket = record.key.rows_bucket
        sg = record.candidate.sub_group_size
        # several records per bucket (different solvers): keep the widest
        by_bucket[bucket] = max(by_bucket.get(bucket, 0), sg)
    if len(by_bucket) < 2 or len(set(by_bucket.values())) < 2:
        return None
    widths = sorted(set(by_bucket.values()))
    small = widths[0]
    small_buckets = [b for b, sg in by_bucket.items() if sg == small]
    return max(small_buckets) if small_buckets else None
