"""Seeded, deterministic fault plans for the chaos harness.

A :class:`FaultPlan` is a *pure function* from the flush sequence number
to the set of faults that fire on that flush. Determinism matters twice:
the CI fault battery must reproduce bit-identically across runs, and a
failure found under chaos must be replayable from nothing but the seed.
Probabilistic specs therefore draw from a keyed hash of
``(seed, spec index, flush index)`` — no shared RNG stream, so the
decision for flush 17 does not depend on which thread asked about
flush 16 first.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = [
    "WORKER_DIE",
    "POISON_BATCH",
    "SINGULAR_BATCH",
    "DEVICE_DELAY",
    "SANITIZER_TRIP_FAULT",
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
]

#: The fault vocabulary (see docs/chaos.md).
WORKER_DIE = "worker_die"
POISON_BATCH = "poison_batch"
SINGULAR_BATCH = "singular_batch"
DEVICE_DELAY = "device_delay"
SANITIZER_TRIP_FAULT = "sanitizer_trip"

FAULT_KINDS = (
    WORKER_DIE,
    POISON_BATCH,
    SINGULAR_BATCH,
    DEVICE_DELAY,
    SANITIZER_TRIP_FAULT,
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault kind plus its firing rule.

    Exactly one of the three triggers is consulted, in this order:
    explicit flush indices (``at``), a modular cadence (``every`` —
    fires on flush indices ``every-1, 2*every-1, ...``), or a keyed-hash
    ``probability`` draw. ``max_faults`` bounds the *total* number of
    firings of this spec within one injector run (the plan itself stays
    stateless; the injector enforces the budget).
    """

    kind: str
    at: tuple[int, ...] = ()
    every: int | None = None
    probability: float = 0.0
    delay_ms: float = 5.0
    max_faults: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; available: {list(FAULT_KINDS)}"
            )
        if self.every is not None and self.every <= 0:
            raise ValueError(f"every must be positive, got {self.every}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.delay_ms < 0:
            raise ValueError(f"delay_ms must be non-negative, got {self.delay_ms}")
        if self.max_faults is not None and self.max_faults <= 0:
            raise ValueError(f"max_faults must be positive, got {self.max_faults}")
        if not self.at and self.every is None and self.probability == 0.0:
            raise ValueError(
                f"FaultSpec({self.kind!r}) can never fire: set at=, every= or probability="
            )

    def fires_at(self, seed: int, spec_index: int, flush_index: int) -> bool:
        """Does this spec fire on ``flush_index``? Pure and deterministic."""
        if self.at:
            return flush_index in self.at
        if self.every is not None:
            return (flush_index + 1) % self.every == 0
        return _draw(seed, spec_index, flush_index) < self.probability

    def to_dict(self) -> dict:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "at": list(self.at),
            "every": self.every,
            "probability": self.probability,
            "delay_ms": self.delay_ms,
            "max_faults": self.max_faults,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(
            kind=data["kind"],
            at=tuple(int(i) for i in data.get("at", ())),
            every=data.get("every"),
            probability=float(data.get("probability", 0.0)),
            delay_ms=float(data.get("delay_ms", 5.0)),
            max_faults=data.get("max_faults"),
        )


def _draw(seed: int, spec_index: int, flush_index: int) -> float:
    """A uniform [0, 1) draw keyed on (seed, spec, flush) — no stream state."""
    digest = hashlib.sha256(f"{seed}:{spec_index}:{flush_index}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class FaultPlan:
    """A seeded schedule of faults over the flush sequence."""

    def __init__(self, seed: int, specs: Iterable[FaultSpec]) -> None:
        self.seed = int(seed)
        self.specs = tuple(specs)
        if not self.specs:
            raise ValueError("a FaultPlan needs at least one FaultSpec")

    def decide(self, flush_index: int) -> list[FaultSpec]:
        """Every spec that fires on ``flush_index`` (deterministic)."""
        return [
            spec
            for j, spec in enumerate(self.specs)
            if spec.fires_at(self.seed, j, flush_index)
        ]

    def firings(self, num_flushes: int) -> Iterator[tuple[int, FaultSpec]]:
        """Enumerate (flush_index, spec) firings over the first N flushes.

        Ignores ``max_faults`` budgets — this is the *schedule*, the
        injector applies budgets at runtime.
        """
        for i in range(num_flushes):
            for spec in self.decide(i):
                yield i, spec

    def to_dict(self) -> dict:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {"seed": self.seed, "specs": [s.to_dict() for s in self.specs]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            seed=int(data["seed"]),
            specs=[FaultSpec.from_dict(s) for s in data["specs"]],
        )

    @classmethod
    def battery(cls, seed: int = 0) -> "FaultPlan":
        """The standard seeded fault battery CI and the bench gate run.

        Worker deaths and batch corruption on fixed cadences (so every
        run exercises every kind), a probabilistic device delay, and one
        early sanitizer trip.
        """
        return cls(
            seed,
            (
                FaultSpec(WORKER_DIE, every=7),
                FaultSpec(POISON_BATCH, every=5),
                FaultSpec(SINGULAR_BATCH, every=11),
                FaultSpec(DEVICE_DELAY, probability=0.2, delay_ms=2.0),
                FaultSpec(SANITIZER_TRIP_FAULT, at=(3,)),
            ),
        )

    def __repr__(self) -> str:
        kinds = ",".join(s.kind for s in self.specs)
        return f"FaultPlan(seed={self.seed}, specs=[{kinds}])"
