"""Trace-replay load generation scored through the SLO monitor.

The chaos harness needs reproducible *traffic*, not just reproducible
faults: a seeded trace of per-tenant arrivals (diurnal or bursty, mixed
solver mechanisms, several batch keys) that can be replayed against a
:class:`~repro.serve.service.SolverService` or a
:class:`~repro.fleet.service.FleetService` — with or without a
:class:`~repro.chaos.injector.ChaosInjector` installed — and scored the
same way production is: through :func:`repro.telemetry.slo.default_slos`
evaluated over a :class:`~repro.telemetry.hub.TelemetryHub`.

Three layers:

* :func:`build_trace` — seed → ``list[ReplayItem]``. Arrival offsets come
  from :mod:`repro.workloads.arrivals` (``diurnal``/``bursty``/``poisson``
  /``uniform``); each item draws a tenant (weighted), inherits that
  tenant's priority, and picks a solver mechanism and batch key.
* :func:`save_trace` / :func:`load_trace` — the replay format: JSON
  Lines, one header object (``schema_version``, ``kind``, counts) then
  one object per item. Traces round-trip exactly, so a regression can be
  replayed from the artifact that caught it.
* :func:`run_replay` — paces the trace open-loop into a service built by
  the caller's factory *inside a hub scope*, waits out every ticket, and
  folds the results into a :class:`ReplayReport`: per-status-code and
  per-tenant outcome counts, client-observed latency percentiles, lost
  tickets (the invariant the chaos battery gates on: always zero), the
  injector's firing counts, and the SLO verdicts.

"Lost" is the one outcome that must never happen: a ticket neither
completed nor failed with a structured error within the wait budget.
Structured failures (429 quota, 503 breaker/worker-death, 422 singular)
are *accounted*, not lost — chaos turns crashes into status codes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.exceptions import ReproError
from repro.serve.qos import DEFAULT_TENANT, PRIORITIES

__all__ = [
    "DEFAULT_TENANTS",
    "PATTERNS",
    "ReplayItem",
    "ReplayReport",
    "TenantSpec",
    "build_trace",
    "load_trace",
    "run_replay",
    "save_trace",
    "trace_requests",
]

#: Arrival processes a trace can be built from.
PATTERNS = ("uniform", "poisson", "bursty", "diurnal")

TRACE_KIND = "repro.chaos.trace"
TRACE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's share of the synthetic traffic mix."""

    name: str
    weight: float = 1.0
    priority: str = "normal"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"tenant weight must be positive, got {self.weight}")
        if self.priority not in PRIORITIES:
            raise ValueError(
                f"priority must be one of {list(PRIORITIES)}, got {self.priority!r}"
            )


#: A three-class mix: a heavy low-priority free tier, a paid normal tier,
#: and a small latency-sensitive high-priority tier.
DEFAULT_TENANTS = (
    TenantSpec("free", weight=5.0, priority="low"),
    TenantSpec("pro", weight=3.0, priority="normal"),
    TenantSpec("enterprise", weight=2.0, priority="high"),
)


@dataclass(frozen=True)
class ReplayItem:
    """One arrival in a trace (what, when, and for whom)."""

    offset_s: float
    tenant: str
    priority: str
    solver: str
    key: int  # batch-key index (mapped to max_iterations at request build)

    def to_dict(self) -> dict:
        """One JSONL-ready record (inverse of :meth:`from_dict`)."""
        return {
            "offset_s": self.offset_s,
            "tenant": self.tenant,
            "priority": self.priority,
            "solver": self.solver,
            "key": self.key,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ReplayItem":
        return cls(
            offset_s=float(data["offset_s"]),
            tenant=str(data["tenant"]),
            priority=str(data["priority"]),
            solver=str(data["solver"]),
            key=int(data["key"]),
        )


def build_trace(
    seed: int,
    num_requests: int,
    rate_rps: float,
    pattern: str = "diurnal",
    tenants: Sequence[TenantSpec] = DEFAULT_TENANTS,
    num_keys: int = 4,
    solvers: Sequence[str] = ("cg", "bicgstab"),
    period_s: float = 4.0,
) -> list[ReplayItem]:
    """Deterministically synthesize a trace from a seed.

    ``period_s`` only applies to the diurnal pattern — the default 4 s
    compresses several day/night cycles into a short replay. Tenant draws
    are weight-proportional; solver and key draws are uniform, so a long
    enough trace exercises every mechanism x key bucket.
    """
    if pattern not in PATTERNS:
        raise ValueError(f"pattern must be one of {PATTERNS}, got {pattern!r}")
    if not tenants:
        raise ValueError("build_trace needs at least one tenant")
    if not solvers:
        raise ValueError("build_trace needs at least one solver mechanism")
    if num_keys <= 0:
        raise ValueError(f"num_keys must be positive, got {num_keys}")
    from repro.workloads import arrivals

    rng = np.random.default_rng(seed)
    if pattern == "uniform":
        offsets = arrivals.uniform_offsets(rate_rps, num_requests)
    elif pattern == "poisson":
        offsets = arrivals.poisson_offsets(rate_rps, num_requests, rng)
    elif pattern == "bursty":
        offsets = arrivals.bursty_offsets(rate_rps, num_requests, rng)
    else:
        offsets = arrivals.diurnal_offsets(
            rate_rps, num_requests, rng, period_s=period_s
        )
    weights = np.asarray([t.weight for t in tenants], dtype=np.float64)
    weights = weights / weights.sum()
    tenant_idx = rng.choice(len(tenants), size=num_requests, p=weights)
    solver_idx = rng.integers(len(solvers), size=num_requests)
    key_idx = rng.integers(num_keys, size=num_requests)
    return [
        ReplayItem(
            offset_s=float(offsets[i]),
            tenant=tenants[tenant_idx[i]].name,
            priority=tenants[tenant_idx[i]].priority,
            solver=str(solvers[solver_idx[i]]),
            key=int(key_idx[i]),
        )
        for i in range(num_requests)
    ]


# -- the replay format ---------------------------------------------------------


def save_trace(items: Iterable[ReplayItem], path: str | Path) -> Path:
    """Write a trace as JSON Lines: one header object, then one per item."""
    items = list(items)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        fh.write(
            json.dumps(
                {
                    "schema_version": TRACE_SCHEMA_VERSION,
                    "kind": TRACE_KIND,
                    "num_items": len(items),
                }
            )
            + "\n"
        )
        for item in items:
            fh.write(json.dumps(item.to_dict()) + "\n")
    return path


def load_trace(path: str | Path) -> list[ReplayItem]:
    """Read a trace written by :func:`save_trace` (validates the header)."""
    lines = Path(path).read_text().splitlines()
    if not lines:
        raise ValueError(f"empty trace file: {path}")
    header = json.loads(lines[0])
    if header.get("kind") != TRACE_KIND:
        raise ValueError(
            f"not a replay trace (kind={header.get('kind')!r}): {path}"
        )
    if header.get("schema_version") != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema_version {header.get('schema_version')!r}"
        )
    items = [ReplayItem.from_dict(json.loads(line)) for line in lines[1:] if line]
    declared = header.get("num_items")
    if declared is not None and declared != len(items):
        raise ValueError(
            f"trace header declares {declared} items but file holds {len(items)}"
        )
    return items


# -- request synthesis ---------------------------------------------------------


def trace_requests(
    items: Sequence[ReplayItem],
    seed: int,
    size: int = 24,
    base_max_iterations: int = 500,
) -> list:
    """Materialize one :class:`SolveRequest` per trace item.

    All requests share the 3-point-stencil sparsity pattern; values are
    perturbed per request by a symmetric congruence ``D A D`` (``D`` a
    random positive diagonal), which preserves SPD so the trace's ``cg``
    share converges like its ``bicgstab`` share. An item's ``key`` maps
    to ``base_max_iterations + key`` so distinct keys hash to distinct
    :class:`~repro.serve.request.BatchKey`\\ s — and, behind a fleet, to
    distinct shards — without changing solve behaviour.
    """
    from repro.serve import SolveRequest
    from repro.workloads.arrivals import stencil_pattern

    pattern = stencil_pattern(size)
    entry_rows = np.repeat(np.arange(size), np.diff(pattern.indptr))
    entry_cols = pattern.indices
    rng = np.random.default_rng(seed ^ 0x5EED)
    requests = []
    for item in items:
        scale = rng.uniform(0.95, 1.05, size=size)
        matrix = pattern.copy()
        matrix.data = pattern.data * scale[entry_rows] * scale[entry_cols]
        requests.append(
            SolveRequest(
                matrix,
                rng.standard_normal(size),
                solver=item.solver,
                preconditioner="jacobi",
                max_iterations=base_max_iterations + item.key,
                tenant=item.tenant,
                priority=item.priority,
            )
        )
    return requests


# -- the report ----------------------------------------------------------------


@dataclass
class ReplayReport:
    """What one replay run observed, client-side and telemetry-side."""

    total: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0  # refused at submit() (quota / saturation / breaker)
    lost: int = 0  # neither completed nor structurally failed — must be 0
    fallbacks: int = 0
    statuses: dict[int, int] = field(default_factory=dict)
    error_codes: dict[str, int] = field(default_factory=dict)
    per_tenant: dict[str, dict[str, int]] = field(default_factory=dict)
    latency_p50_ms: float = 0.0
    latency_p99_ms: float = 0.0
    duration_s: float = 0.0
    slo_rows: list[dict] = field(default_factory=list)
    injected: dict[str, int] = field(default_factory=dict)

    @property
    def slo_compliant(self) -> bool:
        """Every objective met over the whole run (vacuously true when idle)."""
        return all(row["compliant"] for row in self.slo_rows)

    @property
    def injected_total(self) -> int:
        return sum(self.injected.values())

    def to_metrics(self) -> dict:
        """Flat scalars for the bench schema / regression manifest."""
        metrics = {
            "total_requests": self.total,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "lost_requests": self.lost,
            "fallbacks": self.fallbacks,
            "latency_p50_ms": round(self.latency_p50_ms, 3),
            "latency_p99_ms": round(self.latency_p99_ms, 3),
            "duration_s": round(self.duration_s, 3),
            "slo_compliant": self.slo_compliant,
            "injected_total": self.injected_total,
        }
        for code, count in sorted(self.statuses.items()):
            metrics[f"status_{code}"] = count
        for row in self.slo_rows:
            metrics[f"slo_{row['name']}_good_fraction"] = round(
                row["good_fraction"], 6
            )
        return metrics

    def tenant_rows(self) -> list[dict]:
        """Table rows: one per tenant, for CLI reporting."""
        rows = []
        for tenant in sorted(self.per_tenant):
            counts = self.per_tenant[tenant]
            rows.append({"tenant": tenant, **counts})
        return rows


def _classify(report: ReplayReport, tenant: str, error: Exception | None) -> None:
    bucket = report.per_tenant.setdefault(
        tenant, {"completed": 0, "failed": 0, "rejected": 0, "lost": 0}
    )
    if error is None:
        report.completed += 1
        bucket["completed"] += 1
        return
    status = getattr(error, "status_code", 500)
    code = getattr(error, "error_code", "internal")
    report.statuses[status] = report.statuses.get(status, 0) + 1
    report.error_codes[code] = report.error_codes.get(code, 0) + 1
    report.failed += 1
    bucket["failed"] += 1


def run_replay(
    items: Sequence[ReplayItem],
    make_service: Callable[[], Any],
    *,
    seed: int = 0,
    size: int = 24,
    base_max_iterations: int = 500,
    latency_threshold_ms: float = 500.0,
    result_timeout_s: float = 30.0,
    hub: Any | None = None,
) -> ReplayReport:
    """Replay ``items`` against a freshly built service and score the run.

    ``make_service`` is called *inside* a :func:`~repro.telemetry.hub.use_hub`
    scope so every service it constructs (a single :class:`SolverService`
    or a whole fleet of shards) registers with one hub; the report's SLO
    rows are :func:`default_slos` evaluated across all of them. Install
    chaos by building the factory inside :func:`~repro.chaos.injector.use_chaos`
    or by passing ``chaos=`` to the factory's service — the report picks
    up firing counts from whatever injector the service carries.
    """
    import time

    from repro.telemetry.hub import TelemetryHub, use_hub
    from repro.telemetry.slo import default_slos

    report = ReplayReport(total=len(items))
    hub = TelemetryHub() if hub is None else hub
    with use_hub(hub):
        service = make_service()
    requests = trace_requests(
        items, seed, size=size, base_max_iterations=base_max_iterations
    )
    offsets = [item.offset_s for item in items]
    start = time.perf_counter()
    try:
        from repro.workloads.arrivals import pace

        def submit(i: int):
            try:
                return service.submit(requests[i])
            except ReproError as error:
                return error

        results = pace(offsets, submit)
        service.flush()
        for item, result in zip(items, results):
            if isinstance(result, ReproError):
                # refused at the front door: accounted, never waited on
                report.rejected += 1
                bucket = report.per_tenant.setdefault(
                    item.tenant,
                    {"completed": 0, "failed": 0, "rejected": 0, "lost": 0},
                )
                bucket["rejected"] += 1
                status = result.status_code
                report.statuses[status] = report.statuses.get(status, 0) + 1
                report.error_codes[result.error_code] = (
                    report.error_codes.get(result.error_code, 0) + 1
                )
                continue
            ticket = result
            try:
                error = ticket.exception(timeout=result_timeout_s)
            except TimeoutError:
                report.lost += 1
                bucket = report.per_tenant.setdefault(
                    item.tenant,
                    {"completed": 0, "failed": 0, "rejected": 0, "lost": 0},
                )
                bucket["lost"] += 1
                continue
            _classify(report, item.tenant, error)
            if error is None and ticket._outcome is not None:
                if ticket._outcome.used_fallback:
                    report.fallbacks += 1
    finally:
        report.duration_s = time.perf_counter() - start
        try:
            service.close(drain=True)
        except Exception:
            pass

    # client-observed end-to-end latency from ticket timing stamps is
    # service-side; score the telemetry instead (the SLO's source of truth)
    latencies = _latency_percentiles(hub)
    report.latency_p50_ms, report.latency_p99_ms = latencies
    for status in hub.slo_statuses(default_slos(latency_threshold_ms)):
        report.slo_rows.append(
            {
                "name": status.spec.name,
                "objective": status.spec.objective,
                "good_fraction": status.good_fraction,
                "compliant": status.compliant,
                "budget_consumed": status.budget_consumed,
            }
        )
    chaos = getattr(service, "chaos", None) or getattr(service, "_chaos", None)
    if chaos is not None:
        report.injected = chaos.injected_by_kind()
    return report


def _latency_percentiles(hub: Any) -> tuple[float, float]:
    """(p50, p99) over every registry's ``serve.latency_hdr_ms`` histogram."""
    p50s: list[float] = []
    p99s: list[float] = []
    counts: list[float] = []
    for registry in hub.registries:
        hist = registry.log_histogram("serve.latency_hdr_ms")
        if hist.count == 0:
            continue
        counts.append(float(hist.count))
        p50s.append(float(hist.percentile(50.0)))
        p99s.append(float(hist.percentile(99.0)))
    if not counts:
        return 0.0, 0.0
    total = sum(counts)
    # count-weighted p50; conservative max for p99 (a fleet's tail is
    # its worst shard's tail)
    p50 = sum(p * c for p, c in zip(p50s, counts)) / total
    return p50, max(p99s)
