"""The fault injector: where a :class:`FaultPlan` meets the serving stack.

:class:`~repro.serve.service.SolverService` calls
:meth:`ChaosInjector.on_flush` exactly once per executed flush, after
batch assembly and before the solve. The injector assigns the flush the
next index in its (thread-safe) sequence, asks the plan which faults
fire, and realizes them:

* ``device_delay`` — sleeps ``delay_ms`` on the worker thread (extra
  device occupancy), then lets the flush proceed.
* ``worker_die`` — raises :class:`~repro.exceptions.WorkerDiedError`:
  the flush dies mid-execution; the service's whole-flush rescue path
  must complete every ticket (fallback or structured 503).
* ``poison_batch`` — overwrites the *assembled* right-hand sides with
  NaN and raises :class:`~repro.exceptions.PoisonedBatchError` (the
  corruption-detected signal); the rescue path re-assembles from the
  pristine per-request payloads.
* ``singular_batch`` — zeroes the assembled matrix values and raises
  :class:`~repro.exceptions.SingularMatrixError`.
* ``sanitizer_trip`` — raises a
  :class:`~repro.exceptions.SanitizerError` carrying a synthetic report,
  exercising the service's victim-attribution path end to end.

Every firing is counted on the service's ``chaos.injected`` metric
(labelled by kind) and emitted as a pinned ``chaos.injected`` event, so
chaos shows up in the same telemetry the SLO monitor scores.

Injectors install either directly (``SolverService(..., chaos=inj)``)
or ambiently for a scope (:func:`use_chaos` — the ``repro chaos``
wrapper's mechanism): services pick up :func:`current_chaos` at
construction.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.chaos.plan import (
    DEVICE_DELAY,
    POISON_BATCH,
    SANITIZER_TRIP_FAULT,
    SINGULAR_BATCH,
    WORKER_DIE,
    FaultPlan,
    FaultSpec,
)
from repro.exceptions import (
    PoisonedBatchError,
    SanitizerError,
    SingularMatrixError,
    WorkerDiedError,
)

__all__ = [
    "ChaosInjector",
    "ChaosSanitizerReport",
    "current_chaos",
    "set_chaos",
    "use_chaos",
]


class ChaosSanitizerReport:
    """A synthetic sanitizer report carried by injected trips.

    Mirrors the attribute surface the service's victim-attribution path
    reads/writes (``kind``, ``kernel``, ``trace_ids``, ``request_ids``),
    without requiring a real sanitized kernel run.
    """

    def __init__(self, kind: str = "chaos.sanitizer_trip", kernel: str = "injected") -> None:
        self.kind = kind
        self.kernel = kernel
        self.trace_ids: tuple = ()
        self.request_ids: tuple = ()

    def __repr__(self) -> str:
        return f"ChaosSanitizerReport(kind={self.kind!r}, kernel={self.kernel!r})"


class ChaosInjector:
    """Applies one :class:`FaultPlan` to a live service's flush stream."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.injected: dict[str, int] = {}
        self._seq = 0
        self._spent: dict[int, int] = {}  # spec index -> firings so far
        self._lock = threading.Lock()

    @property
    def flushes_seen(self) -> int:
        """How many flushes have passed through this injector."""
        with self._lock:
            return self._seq

    @property
    def total_injected(self) -> int:
        """Total faults fired across all kinds."""
        with self._lock:
            return sum(self.injected.values())

    def injected_by_kind(self) -> dict[str, int]:
        """Copy of the per-kind firing counts."""
        with self._lock:
            return dict(self.injected)

    # -- the hook --------------------------------------------------------------

    def on_flush(self, service: Any, flush: Any, worker: Any, matrix: Any, b: Any) -> None:
        """Fire the plan's faults for the next flush index (may raise).

        Called by the service inside its flush try-block: exceptions
        raised here take the whole-flush failure path and must end in
        completed tickets, never crashes.
        """
        with self._lock:
            index = self._seq
            self._seq += 1
            firing: list[tuple[int, FaultSpec]] = []
            for j, spec in enumerate(self.plan.specs):
                if not spec.fires_at(self.plan.seed, j, index):
                    continue
                if spec.max_faults is not None and self._spent.get(j, 0) >= spec.max_faults:
                    continue
                self._spent[j] = self._spent.get(j, 0) + 1
                self.injected[spec.kind] = self.injected.get(spec.kind, 0) + 1
                firing.append((j, spec))
        # delays first, so a flush scheduled for both a delay and a kill
        # dwells before it dies (the nastier interleaving)
        firing.sort(key=lambda js: js[1].kind != DEVICE_DELAY)
        for _j, spec in firing:
            self._record(service, spec, flush, worker, index)
            self._realize(spec, flush, matrix, b)

    def _record(self, service: Any, spec: FaultSpec, flush: Any, worker: Any, index: int) -> None:
        from repro.recorder.recorder import TRIGGER_CHAOS_FAULT, current_recorder
        from repro.telemetry.events import CHAOS_INJECTED

        service.metrics.counter("chaos.injected").labels(kind=spec.kind).inc()
        service.events.emit(
            CHAOS_INJECTED,
            critical=True,
            kind=spec.kind,
            flush_index=index,
            flush_id=getattr(flush, "flush_id", ""),
            batch_size=getattr(flush, "size", 0),
            worker=getattr(worker, "name", ""),
        )
        recorder = getattr(service, "recorder", None) or current_recorder()
        if recorder is not None:
            # the authoritative victim list: every ticket co-batched into
            # the faulted flush, joined by trace id in the postmortem
            trace_ids = [
                t.trace_context.trace_id for t in getattr(flush, "tickets", ())
            ]
            recorder.trigger(
                TRIGGER_CHAOS_FAULT,
                trace_id=trace_ids[0] if trace_ids else None,
                kind=spec.kind,
                flush_index=index,
                flush_id=getattr(flush, "flush_id", ""),
                worker=getattr(worker, "name", ""),
                trace_ids=trace_ids,
            )

    def _realize(self, spec: FaultSpec, flush: Any, matrix: Any, b: Any) -> None:
        if spec.kind == DEVICE_DELAY:
            time.sleep(spec.delay_ms / 1e3)
            return
        if spec.kind == WORKER_DIE:
            raise WorkerDiedError(
                f"injected worker death mid-flush {flush.flush_id}", fault=WORKER_DIE
            )
        if spec.kind == POISON_BATCH:
            b[...] = float("nan")
            raise PoisonedBatchError(
                f"injected NaN payload in flush {flush.flush_id}", fault=POISON_BATCH
            )
        if spec.kind == SINGULAR_BATCH:
            values = getattr(matrix, "values", None)
            if values is None:
                values = getattr(matrix, "data", None)
            if values is not None:
                values[...] = 0.0
            raise SingularMatrixError(
                f"injected singular batch in flush {flush.flush_id}"
            )
        if spec.kind == SANITIZER_TRIP_FAULT:
            raise SanitizerError(
                f"injected sanitizer trip in flush {flush.flush_id}",
                report=ChaosSanitizerReport(),
            )
        raise AssertionError(f"unreachable fault kind {spec.kind!r}")

    def __repr__(self) -> str:
        return (
            f"ChaosInjector(plan={self.plan!r}, flushes={self.flushes_seen}, "
            f"injected={self.total_injected})"
        )


# -- ambient installation ------------------------------------------------------

_install_lock = threading.Lock()
_installed: ChaosInjector | None = None


def current_chaos() -> ChaosInjector | None:
    """The ambiently installed injector (None outside a chaos scope)."""
    return _installed


def set_chaos(injector: ChaosInjector | None) -> ChaosInjector | None:
    """Install ``injector`` process-wide; returns the previous one."""
    global _installed
    with _install_lock:
        previous = _installed
        _installed = injector
    return previous


class use_chaos:
    """Install an injector for a ``with`` scope, restoring the previous one.

    Services constructed inside the scope pick it up automatically —
    the mechanism behind ``repro chaos <command>``-style wrapping.
    """

    def __init__(self, injector: ChaosInjector | None) -> None:
        self._injector = injector
        self._previous: ChaosInjector | None = None

    def __enter__(self) -> ChaosInjector | None:
        self._previous = set_chaos(self._injector)
        return self._injector

    def __exit__(self, exc_type, exc, tb) -> None:
        set_chaos(self._previous)
