"""Layer 12: deterministic fault injection and trace-replay load testing.

The production-hardening layer: prove the serving stack degrades
*gracefully* — structured 4xx/5xx outcomes, zero lost tickets, SLOs
scored — rather than merely working on clean benches.

* :mod:`repro.chaos.plan` — :class:`FaultPlan`: a seeded, fully
  deterministic schedule of faults (worker death mid-flush, poisoned /
  singularized batches, device delays, sanitizer trips) keyed on the
  flush sequence number, so a chaos run replays bit-identically.
* :mod:`repro.chaos.injector` — :class:`ChaosInjector`: the hook the
  serving layer calls once per flush; fires the plan's faults as
  mutations and typed exceptions, counts them on ``chaos.injected``
  metrics and emits ``chaos.injected`` events.
* :mod:`repro.chaos.replay` — the trace-replay load generator: seeded
  multi-tenant request traces over :mod:`repro.workloads.arrivals`
  (diurnal/bursty/poisson, mixed mechanisms), paced open-loop into a
  service or fleet and scored through the PR-6 SLO monitor. Imported
  explicitly (``import repro.chaos.replay``) because it pulls in the
  serving layer, which itself consults :func:`current_chaos` from here.
"""

from repro.chaos.injector import (
    ChaosInjector,
    current_chaos,
    set_chaos,
    use_chaos,
)
from repro.chaos.plan import (
    DEVICE_DELAY,
    FAULT_KINDS,
    POISON_BATCH,
    SANITIZER_TRIP_FAULT,
    SINGULAR_BATCH,
    WORKER_DIE,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "ChaosInjector",
    "DEVICE_DELAY",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "POISON_BATCH",
    "SANITIZER_TRIP_FAULT",
    "SINGULAR_BATCH",
    "WORKER_DIE",
    "current_chaos",
    "set_chaos",
    "use_chaos",
]
