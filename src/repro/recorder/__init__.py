"""repro.recorder — black-box flight recording and convergence forensics.

Three pieces, layered bottom-up:

* :mod:`repro.recorder.classify` — pure-numpy classification of what a
  batched solve did (converged / breakdown / stagnation / divergence /
  NaN residual) from its residual trajectories.
* :mod:`repro.recorder.recorder` — the always-on, bounded
  :class:`FlightRecorder`: ring buffers of recent events, flushes,
  solves and metric deltas, dumped to a schema-versioned bundle
  (:mod:`repro.recorder.bundle`) when a trigger fires.
* :mod:`repro.recorder.postmortem` — cross-shard analysis over one or
  more bundles (``python -m repro postmortem {analyze,timeline,diff}``).

Nothing in this package imports the telemetry or serving layers: the
event log taps *into* the recorder, so the recorder must sit below it
in the import graph.
"""

from repro.recorder.bundle import (
    BUNDLE_KIND,
    BUNDLE_SCHEMA_VERSION,
    find_bundles,
    is_bundle,
    load_bundle,
    write_bundle,
)
from repro.recorder.classify import (
    BREAKDOWN,
    CLASSES,
    CONVERGED,
    CURVE_POINTS,
    DIVERGENCE,
    NAN_RESIDUAL,
    STAGNATION,
    classify_curve,
    classify_history,
    downsample_curve,
    solve_summary,
)
from repro.recorder.postmortem import (
    analyze_bundles,
    diff_bundles,
    load_bundles,
    render_analysis,
    render_diff,
    render_timeline,
    timeline_rows,
)
from repro.recorder.recorder import (
    TRIGGER_BREAKER_OPEN,
    TRIGGER_CHAOS_FAULT,
    TRIGGER_ERROR_5XX,
    TRIGGER_MANUAL,
    TRIGGER_REASONS,
    TRIGGER_SANITIZER_TRIP,
    TRIGGER_SLO_BURN,
    FlightRecorder,
    current_recorder,
    set_recorder,
    use_recorder,
)

__all__ = [
    "FlightRecorder",
    "current_recorder",
    "set_recorder",
    "use_recorder",
    "TRIGGER_ERROR_5XX",
    "TRIGGER_SANITIZER_TRIP",
    "TRIGGER_BREAKER_OPEN",
    "TRIGGER_SLO_BURN",
    "TRIGGER_CHAOS_FAULT",
    "TRIGGER_MANUAL",
    "TRIGGER_REASONS",
    "BUNDLE_SCHEMA_VERSION",
    "BUNDLE_KIND",
    "write_bundle",
    "load_bundle",
    "is_bundle",
    "find_bundles",
    "CONVERGED",
    "BREAKDOWN",
    "STAGNATION",
    "DIVERGENCE",
    "NAN_RESIDUAL",
    "CLASSES",
    "CURVE_POINTS",
    "classify_curve",
    "classify_history",
    "downsample_curve",
    "solve_summary",
    "load_bundles",
    "analyze_bundles",
    "render_analysis",
    "timeline_rows",
    "render_timeline",
    "diff_bundles",
    "render_diff",
]
