"""Diagnostic bundles: the flight recorder's on-disk snapshot format.

A bundle is one directory holding a ``manifest.json`` plus one JSONL
file per recorder stream (events, flushes, solves, metrics, triggers).
It is deliberately self-contained: schema-versioned, shard-stamped,
and pinned to the trigger's ``trace_id``, so a bundle copied off a
machine (or uploaded as a CI artifact) can be analyzed with nothing but
the ``python -m repro postmortem`` CLI.

Stdlib-only — both the recorder (writer) and the postmortem CLI
(reader) sit below the telemetry layer in the import graph.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any

__all__ = [
    "BUNDLE_SCHEMA_VERSION",
    "BUNDLE_KIND",
    "MANIFEST_NAME",
    "STREAMS",
    "write_bundle",
    "is_bundle",
    "load_bundle",
    "find_bundles",
]

#: Version stamped into every manifest; bump on incompatible change.
BUNDLE_SCHEMA_VERSION = 1

#: Discriminator so foreign JSON directories are rejected early.
BUNDLE_KIND = "repro.recorder.bundle"

MANIFEST_NAME = "manifest.json"

#: The recorder's ring buffers, in manifest order.
STREAMS = ("events", "flushes", "solves", "metrics", "triggers")


def write_bundle(
    path: str | Path,
    streams: dict[str, list[dict]],
    *,
    reason: str,
    trace_id: str | None = None,
    shard: str = "",
    recorder_schema_version: int = 1,
    created_s: float | None = None,
    extra: dict[str, Any] | None = None,
) -> Path:
    """Write one bundle directory; returns its path.

    ``streams`` maps stream names (a subset of :data:`STREAMS`) to
    record lists; missing streams are written empty so readers never
    special-case absence.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    counts: dict[str, int] = {}
    files: dict[str, str] = {}
    for name in STREAMS:
        records = streams.get(name, [])
        filename = f"{name}.jsonl"
        with (path / filename).open("w") as fh:
            for record in records:
                fh.write(json.dumps(record, default=str) + "\n")
        counts[name] = len(records)
        files[name] = filename
    manifest = {
        "schema_version": BUNDLE_SCHEMA_VERSION,
        "kind": BUNDLE_KIND,
        "recorder_schema_version": recorder_schema_version,
        "reason": reason,
        "trace_id": trace_id,
        "shard": shard,
        "created_unix": time.time() if created_s is None else float(created_s),
        "counts": counts,
        "streams": files,
    }
    if extra:
        manifest["extra"] = extra
    with (path / MANIFEST_NAME).open("w") as fh:
        json.dump(manifest, fh, indent=2, default=str)
        fh.write("\n")
    return path


def is_bundle(path: str | Path) -> bool:
    """Does ``path`` look like a bundle directory (manifest of our kind)?"""
    manifest = Path(path) / MANIFEST_NAME
    if not manifest.is_file():
        return False
    try:
        with manifest.open() as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return False
    return data.get("kind") == BUNDLE_KIND


def load_bundle(path: str | Path) -> dict[str, Any]:
    """Read one bundle back: ``{"path", "manifest", <stream>: [records]}``.

    Raises ``ValueError`` on a missing/foreign manifest and on a
    schema version newer than this reader understands.
    """
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise ValueError(f"not a recorder bundle (no {MANIFEST_NAME}): {path}")
    with manifest_path.open() as fh:
        manifest = json.load(fh)
    if manifest.get("kind") != BUNDLE_KIND:
        raise ValueError(f"not a recorder bundle (kind={manifest.get('kind')!r}): {path}")
    version = manifest.get("schema_version", 0)
    if version > BUNDLE_SCHEMA_VERSION:
        raise ValueError(
            f"bundle schema v{version} is newer than this reader "
            f"(v{BUNDLE_SCHEMA_VERSION}): {path}"
        )
    out: dict[str, Any] = {"path": str(path), "manifest": manifest}
    for name in STREAMS:
        filename = manifest.get("streams", {}).get(name, f"{name}.jsonl")
        stream_path = path / filename
        records: list[dict] = []
        if stream_path.is_file():
            with stream_path.open() as fh:
                for line in fh:
                    line = line.strip()
                    if line:
                        records.append(json.loads(line))
        out[name] = records
    return out


def find_bundles(root: str | Path) -> list[Path]:
    """Bundle directories at or directly under ``root``, sorted by name."""
    root = Path(root)
    if is_bundle(root):
        return [root]
    if not root.is_dir():
        return []
    return sorted(child for child in root.iterdir() if is_bundle(child))
