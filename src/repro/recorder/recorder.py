"""The black-box flight recorder: always on, bounded, trigger-dumped.

Aircraft keep a flight recorder running at all times precisely because
nobody knows *when* the interesting thirty seconds will happen. The
:class:`FlightRecorder` does the same for a solver shard: fixed-size
ring buffers of the most recent telemetry events, flush/span records,
per-solve convergence forensics, and metric-registry deltas. Normal
operation costs a few deque appends; nothing is written anywhere.

When something goes wrong — a 5xx :class:`~repro.exceptions.ReproError`,
a sanitizer trip, a breaker opening, an SLO burn alert, a chaos fault,
or an explicit :meth:`dump` — the :meth:`trigger` path snapshots every
ring into a self-contained, schema-versioned diagnostic bundle (JSONL
streams + a manifest, see :mod:`repro.recorder.bundle`) with the
trigger's ``trace_id`` pinned, so the postmortem CLI can start from a
concrete request.

Auto-dumps are bounded two ways: at most :attr:`max_dumps` bundles per
recorder, and at most one bundle per trigger *reason* per
``redump_interval_s`` — a burning SLO that stays burning does not fill
the disk.

This module is stdlib-only (plus :mod:`repro.recorder.bundle`): the
telemetry layer taps into it from :meth:`EventLog.emit
<repro.telemetry.events.EventLog.emit>`, so nothing here may import
telemetry or serving code back.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from pathlib import Path
from typing import Any

from repro.recorder.bundle import write_bundle

__all__ = [
    "FlightRecorder",
    "TRIGGER_ERROR_5XX",
    "TRIGGER_SANITIZER_TRIP",
    "TRIGGER_BREAKER_OPEN",
    "TRIGGER_SLO_BURN",
    "TRIGGER_CHAOS_FAULT",
    "TRIGGER_MANUAL",
    "TRIGGER_REASONS",
    "current_recorder",
    "set_recorder",
    "use_recorder",
]

# -- the trigger vocabulary ---------------------------------------------------

TRIGGER_ERROR_5XX = "error_5xx"
TRIGGER_SANITIZER_TRIP = "sanitizer_trip"
TRIGGER_BREAKER_OPEN = "breaker_open"
TRIGGER_SLO_BURN = "slo_burn"
TRIGGER_CHAOS_FAULT = "chaos_fault"
TRIGGER_MANUAL = "manual"

#: Every reason a bundle records; free-form reasons are also accepted.
TRIGGER_REASONS = (
    TRIGGER_ERROR_5XX,
    TRIGGER_SANITIZER_TRIP,
    TRIGGER_BREAKER_OPEN,
    TRIGGER_SLO_BURN,
    TRIGGER_CHAOS_FAULT,
    TRIGGER_MANUAL,
)


class FlightRecorder:
    """Bounded ring buffers of recent shard activity, dumpable on demand.

    Parameters
    ----------
    capacity:
        Ring size for telemetry events, flush records, metric deltas and
        triggers.
    solve_capacity:
        Ring size for per-solve convergence summaries (denser records,
        kept separately so a chatty event stream cannot evict them).
    metric_interval:
        :meth:`observe_registry` snapshots the registry on every
        ``metric_interval``-th call — per-flush observation stays O(1)
        almost always.
    dump_dir:
        When set, :meth:`trigger` auto-dumps a bundle here (subject to
        ``max_dumps`` and ``redump_interval_s``); when ``None``, triggers
        are recorded but nothing is written until an explicit
        :meth:`dump`.
    max_dumps:
        Hard cap on bundles this recorder will ever write on its own.
    redump_interval_s:
        Minimum seconds between two auto-dumps for the *same* reason.
    shard:
        Identity stamped into every bundle manifest (fleet shards set
        their shard name; a standalone service leaves it empty).
    clock:
        Wall-clock source (injectable for deterministic tests).
    """

    SCHEMA_VERSION = 1

    def __init__(
        self,
        *,
        capacity: int = 1024,
        solve_capacity: int = 256,
        metric_interval: int = 16,
        dump_dir: str | Path | None = None,
        max_dumps: int = 16,
        redump_interval_s: float = 60.0,
        shard: str = "",
        clock=time.time,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if solve_capacity <= 0:
            raise ValueError(f"solve_capacity must be positive, got {solve_capacity}")
        if metric_interval <= 0:
            raise ValueError(f"metric_interval must be positive, got {metric_interval}")
        self.capacity = capacity
        self.solve_capacity = solve_capacity
        self.metric_interval = metric_interval
        self.dump_dir = None if dump_dir is None else Path(dump_dir)
        self.max_dumps = max_dumps
        self.redump_interval_s = redump_interval_s
        self.shard = shard
        self._clock = clock
        self._events: deque[dict] = deque(maxlen=capacity)
        self._flushes: deque[dict] = deque(maxlen=capacity)
        self._solves: deque[dict] = deque(maxlen=solve_capacity)
        self._metrics: deque[dict] = deque(maxlen=capacity)
        self._triggers: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._metric_calls = 0
        self._last_metric_snapshot: dict[str, float] = {}
        self._last_dump_ts: dict[str, float] = {}
        self.events_seen = 0
        self.flushes_seen = 0
        self.solves_seen = 0
        self.dumps_written = 0
        self.triggers_fired: dict[str, int] = {}

    def for_shard(self, shard: str) -> "FlightRecorder":
        """A sibling recorder with this one's limits but its own rings.

        Fleet replicas call this to get per-shard black boxes: same
        capacities, dump policy and clock, stamped with the shard's
        name so every bundle it writes merges cleanly into the
        cross-shard postmortem.
        """
        return FlightRecorder(
            capacity=self.capacity,
            solve_capacity=self.solve_capacity,
            metric_interval=self.metric_interval,
            dump_dir=self.dump_dir,
            max_dumps=self.max_dumps,
            redump_interval_s=self.redump_interval_s,
            shard=shard,
            clock=self._clock,
        )

    # -- recording (the always-on hot path) -----------------------------------

    def record_event(self, record: dict) -> None:
        """Ring one telemetry-event wire record (called from the event log)."""
        with self._lock:
            self.events_seen += 1
            self._events.append(record)

    def record_flush(self, **fields: Any) -> None:
        """Ring one flush/span record (the serving layer's per-flush facts)."""
        record = {"ts": self._clock(), **fields}
        with self._lock:
            self.flushes_seen += 1
            self._flushes.append(record)

    def record_solve(self, summary: dict) -> None:
        """Ring one convergence-forensics record (see
        :func:`repro.recorder.classify.solve_summary`)."""
        record = {"ts": self._clock(), **summary}
        with self._lock:
            self.solves_seen += 1
            self._solves.append(record)

    def observe_registry(self, registry: Any) -> None:
        """Ring the registry's scalar deltas, one snapshot per
        ``metric_interval`` calls.

        Only instruments whose headline scalar (``value`` for counters
        and gauges, ``count`` for histograms) changed since the last
        snapshot are recorded, so the stream reads as "what moved".
        """
        with self._lock:
            self._metric_calls += 1
            if self._metric_calls % self.metric_interval:
                return
        snap = registry.snapshot()
        scalars: dict[str, float] = {}
        for name, summary in snap.items():
            value = summary.get("value")
            if value is None:
                value = summary.get("count")
            if value is None or value != value:  # skip NaN gauges
                continue
            scalars[name] = float(value)
        with self._lock:
            deltas = {
                name: value
                for name, value in scalars.items()
                if self._last_metric_snapshot.get(name) != value
            }
            self._last_metric_snapshot = scalars
            if deltas:
                self._metrics.append({"ts": self._clock(), "deltas": deltas})

    # -- triggers and dumps ----------------------------------------------------

    def trigger(
        self, reason: str, *, trace_id: str | None = None, **fields: Any
    ) -> Path | None:
        """Record one trigger; auto-dump a bundle when so configured.

        Returns the bundle path when a dump was written, else ``None``.
        The trigger's ``trace_id`` is pinned into the bundle manifest so
        a postmortem starts from the request that tripped the recorder.
        """
        now = self._clock()
        record = {"ts": now, "reason": reason, "trace_id": trace_id, **fields}
        with self._lock:
            self._triggers.append(record)
            self.triggers_fired[reason] = self.triggers_fired.get(reason, 0) + 1
            should_dump = (
                self.dump_dir is not None
                and self.dumps_written < self.max_dumps
                and now - self._last_dump_ts.get(reason, -float("inf"))
                >= self.redump_interval_s
            )
        if should_dump:
            return self.dump(reason=reason, trace_id=trace_id)
        return None

    def dump(
        self,
        out_dir: str | Path | None = None,
        *,
        reason: str = TRIGGER_MANUAL,
        trace_id: str | None = None,
        **extra: Any,
    ) -> Path:
        """Snapshot every ring into a diagnostic bundle; returns its path."""
        target = Path(out_dir) if out_dir is not None else self.dump_dir
        if target is None:
            raise ValueError("no dump directory: pass out_dir or set dump_dir")
        with self._lock:
            seq = self.dumps_written
            self.dumps_written += 1
            self._last_dump_ts[reason] = self._clock()
            streams = self._snapshot_locked()
        safe_reason = "".join(c if c.isalnum() or c in "-_" else "_" for c in reason)
        # the shard segment keeps sibling recorders (fleet replicas)
        # dumping into one directory from colliding on the sequence
        safe_shard = "".join(
            c if c.isalnum() or c in "-_" else "_" for c in self.shard
        )
        stem = f"bundle-{safe_shard}-" if safe_shard else "bundle-"
        path = target / f"{stem}{seq:03d}-{safe_reason}"
        return write_bundle(
            path,
            streams,
            reason=reason,
            trace_id=trace_id,
            shard=self.shard,
            recorder_schema_version=self.SCHEMA_VERSION,
            created_s=self._clock(),
            extra=extra or None,
        )

    # -- introspection ---------------------------------------------------------

    def _snapshot_locked(self) -> dict[str, list[dict]]:
        return {
            "events": list(self._events),
            "flushes": list(self._flushes),
            "solves": list(self._solves),
            "metrics": list(self._metrics),
            "triggers": list(self._triggers),
        }

    def snapshot(self) -> dict[str, list[dict]]:
        """Copy of every ring, stream name → records (oldest first)."""
        with self._lock:
            return self._snapshot_locked()

    def summary(self) -> dict[str, Any]:
        """Retention accounting for dashboards and the overhead bench."""
        with self._lock:
            return {
                "events_seen": self.events_seen,
                "flushes_seen": self.flushes_seen,
                "solves_seen": self.solves_seen,
                "events_retained": len(self._events),
                "flushes_retained": len(self._flushes),
                "solves_retained": len(self._solves),
                "metric_snapshots": len(self._metrics),
                "triggers": dict(self.triggers_fired),
                "dumps_written": self.dumps_written,
            }

    def __repr__(self) -> str:
        return (
            f"FlightRecorder(events={self.events_seen}, "
            f"solves={self.solves_seen}, dumps={self.dumps_written})"
        )


# -- ambient installation (mirrors tracer/event-log/chaos) --------------------

_install_lock = threading.Lock()
_installed: FlightRecorder | None = None


def current_recorder() -> FlightRecorder | None:
    """The installed recorder, or ``None`` when the black box is off."""
    return _installed


def set_recorder(recorder: FlightRecorder | None) -> FlightRecorder | None:
    """Install ``recorder`` process-wide; returns the previous one."""
    global _installed
    with _install_lock:
        previous = _installed
        _installed = recorder
    return previous


class use_recorder:
    """Install a recorder for a ``with`` scope, restoring the previous one."""

    __slots__ = ("recorder", "_previous", "_installed_here")

    def __init__(self, recorder: FlightRecorder | None) -> None:
        self.recorder = recorder
        self._previous: FlightRecorder | None = None
        self._installed_here = False

    def __enter__(self) -> FlightRecorder | None:
        if self.recorder is None:  # "no change" scope, like use_tracer(None)
            return current_recorder()
        self._previous = set_recorder(self.recorder)
        self._installed_here = True
        return self.recorder

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._installed_here:
            set_recorder(self._previous)
