"""Convergence forensics: classify what a batched Krylov solve *did*.

The paper's diagnostic signal is convergence behaviour, not kernel time:
a port that runs fast but stagnates, diverges, or breaks down is broken
in a way a latency histogram cannot show. This module turns the raw
per-system residual trajectories the solvers already produce into a
small, serialisable vocabulary:

* ``converged`` — the stopping criterion was met;
* ``breakdown`` — the recurrence died (a guarded divide froze the
  system, or the loop stopped early without converging);
* ``stagnation`` — the iteration budget ran out with the residual
  roughly where it started (no growth, no progress);
* ``divergence`` — the budget ran out with the residual grown by more
  than :data:`DIVERGENCE_FACTOR` over its initial value;
* ``nan_residual`` — a NaN or infinity appeared anywhere in the
  recorded residual trajectory (the numerics escaped).

Everything here is pure ``numpy`` + stdlib on plain arrays, importable
from the kernel layer, the recorder, and the postmortem CLI without
dragging in telemetry or serving code.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

__all__ = [
    "CONVERGED",
    "BREAKDOWN",
    "STAGNATION",
    "DIVERGENCE",
    "NAN_RESIDUAL",
    "CLASSES",
    "SEVERITY",
    "DIVERGENCE_FACTOR",
    "CURVE_POINTS",
    "downsample_curve",
    "classify_curve",
    "classify_history",
    "solve_summary",
]

CONVERGED = "converged"
BREAKDOWN = "breakdown"
STAGNATION = "stagnation"
DIVERGENCE = "divergence"
NAN_RESIDUAL = "nan_residual"

#: Every class the forensics vocabulary admits.
CLASSES = (CONVERGED, BREAKDOWN, STAGNATION, DIVERGENCE, NAN_RESIDUAL)

#: Triage order — higher is worse; the bundle keeps the worst system's curve.
SEVERITY = {
    CONVERGED: 0,
    STAGNATION: 1,
    BREAKDOWN: 2,
    DIVERGENCE: 3,
    NAN_RESIDUAL: 4,
}

#: Residual growth (final / initial) beyond which a budget-exhausted,
#: unconverged system counts as diverging rather than stagnating.
DIVERGENCE_FACTOR = 10.0

#: Default downsampled-curve length kept per recorded solve.
CURVE_POINTS = 32

#: Class name by severity code (the vectorized classifier's codebook).
_CLASS_BY_CODE = (CONVERGED, STAGNATION, BREAKDOWN, DIVERGENCE, NAN_RESIDUAL)


def downsample_curve(curve: Sequence[float], points: int = CURVE_POINTS) -> list[float]:
    """Decimate a residual trajectory to at most ``points`` samples.

    The first and last samples are always kept (the initial residual
    anchors relative criteria; the final residual is the verdict), and
    interior samples are taken at a uniform stride, so the curve's shape
    — plateau, monotone drop, blow-up — survives the compression.
    """
    if points < 2:
        raise ValueError(f"points must be >= 2, got {points}")
    # pure-Python decimation: this runs per recorded flush on the
    # always-on path, where ndarray round-trips on ~40-sample curves
    # cost more than the arithmetic
    values = curve.ravel().tolist() if isinstance(curve, np.ndarray) else list(curve)
    n = len(values)
    if n <= points:
        return [float(v) for v in values]
    step = (n - 1) / (points - 1)
    out: list[float] = []
    last = -1
    for k in range(points):
        idx = round(k * step)
        if idx != last:
            out.append(float(values[idx]))
            last = idx
    return out


def classify_curve(
    curve: Sequence[float],
    *,
    converged: bool,
    frozen: bool = False,
    iterations: int | None = None,
    max_iterations: int | None = None,
    divergence_factor: float = DIVERGENCE_FACTOR,
) -> str:
    """Classify one system's residual trajectory.

    ``curve`` is the recorded residual norms (initial residual first);
    ``frozen`` marks a guarded-divide breakdown; ``iterations`` against
    ``max_iterations`` separates budget exhaustion (stagnation or
    divergence) from an early stop (breakdown).
    """
    # stays off numpy: called once per system per flush on the always-on
    # path, where per-call ndarray construction would dominate. fsum is a
    # single C pass; NaN/inf anywhere poisons the total, and only then is
    # the per-element scan needed (fsum can also overflow on huge finite
    # samples, so the scan is the authority).
    values = curve.ravel().tolist() if isinstance(curve, np.ndarray) else curve
    try:
        total = math.fsum(values)
    except (OverflowError, ValueError):  # huge finite samples, or -inf + inf
        total = math.nan
    if not math.isfinite(total):
        for v in values:
            if not math.isfinite(v):
                return NAN_RESIDUAL
    if converged:
        return CONVERGED
    if frozen:
        return BREAKDOWN
    out_of_budget = (
        iterations is not None
        and max_iterations is not None
        and iterations >= max_iterations
    )
    if out_of_budget and len(values):
        initial, final = float(values[0]), float(values[-1])
        if initial > 0.0 and final > initial * divergence_factor:
            return DIVERGENCE
        return STAGNATION
    if out_of_budget:
        return STAGNATION
    return BREAKDOWN


def classify_history(
    history: np.ndarray,
    *,
    converged: np.ndarray,
    iterations: np.ndarray,
    max_iterations: int,
    frozen: np.ndarray | None = None,
    divergence_factor: float = DIVERGENCE_FACTOR,
) -> list[str]:
    """Classify every system from a dense residual-history matrix.

    ``history`` has shape ``(num_systems, slots)`` with NaN padding past
    each system's recorded iterations (the kernel path's layout), so only
    ``history[i, : iterations[i] + 1]`` is inspected per system — the
    padding must not read as a NaN residual.
    """
    history = np.asarray(history, dtype=np.float64)
    if history.ndim != 2:
        raise ValueError(f"history must be 2-D (systems, slots), got {history.shape}")
    converged = np.asarray(converged, dtype=bool)
    iterations = np.asarray(iterations, dtype=np.int64)
    frozen_mask = (
        np.zeros(history.shape[0], dtype=bool)
        if frozen is None
        else np.asarray(frozen, dtype=bool)
    )
    classes = []
    for i in range(history.shape[0]):
        stop = min(int(iterations[i]) + 1, history.shape[1])
        classes.append(
            classify_curve(
                history[i, :stop],
                converged=bool(converged[i]),
                frozen=bool(frozen_mask[i]),
                iterations=int(iterations[i]),
                max_iterations=max_iterations,
                divergence_factor=divergence_factor,
            )
        )
    return classes


def _finite_or_none(value: float) -> float | None:
    return float(value) if math.isfinite(value) else None


def _classify_stacked(
    stacked: np.ndarray,
    converged: np.ndarray,
    frozen: np.ndarray,
    iterations: np.ndarray,
    max_iterations: int,
    divergence_factor: float,
) -> list[str]:
    """Vectorized :func:`classify_curve` over a ``(systems, samples)``
    matrix — the always-on hot path when every curve has the same length.

    Assignments run in reverse priority order so the scalar rules'
    precedence (NaN > converged > frozen > budget > breakdown) holds.
    """
    initial = stacked[:, 0]
    final = stacked[:, -1]
    out_of_budget = iterations >= max_iterations
    codes = np.full(stacked.shape[0], SEVERITY[BREAKDOWN], dtype=np.int8)
    codes[out_of_budget] = SEVERITY[STAGNATION]
    codes[out_of_budget & (initial > 0.0) & (final > initial * divergence_factor)] = (
        SEVERITY[DIVERGENCE]
    )
    codes[frozen] = SEVERITY[BREAKDOWN]
    codes[converged] = SEVERITY[CONVERGED]
    codes[~np.isfinite(stacked).all(axis=1)] = SEVERITY[NAN_RESIDUAL]
    return [_CLASS_BY_CODE[c] for c in codes.tolist()]


def solve_summary(
    curves: Sequence[Sequence[float]],
    *,
    converged: np.ndarray,
    iterations: np.ndarray,
    max_iterations: int,
    frozen: np.ndarray | None = None,
    solver: str = "",
    backend: str = "",
    curve_points: int = CURVE_POINTS,
) -> dict[str, Any]:
    """Build one JSON-ready forensic record for a batched solve.

    ``curves`` is one residual trajectory per system (ragged is fine).
    The record carries per-system classes, class counts, iteration
    statistics, and the *worst* system's downsampled curve — enough for a
    postmortem to tell numerics from infrastructure without shipping the
    full history.
    """
    converged = np.asarray(converged, dtype=bool)
    iterations = np.asarray(iterations, dtype=np.int64)
    frozen_mask = (
        np.zeros(len(curves), dtype=bool)
        if frozen is None
        else np.asarray(frozen, dtype=bool)
    )
    num = len(curves)
    first_len = len(curves[0]) if curves else 0
    all_finite = False
    stacked = None
    if curves and first_len > 0 and iterations.size == num:
        try:
            stacked = np.stack(curves)
        except ValueError:  # ragged batch — classify system by system
            stacked = None
    if stacked is not None:
        # uniform curves — residual_curves()'s layout — classify in one
        # vectorized pass (this runs on every recorded flush)
        if converged.all() and not frozen_mask.any():
            # the steady state: every system converged. A single sum is
            # the cheapest finite probe — NaN/inf poison it (a huge
            # finite batch can overflow to inf; the slow path below
            # re-checks per element, so that is never misclassified).
            all_finite = math.isfinite(float(stacked.sum()))
        if all_finite:
            classes = [CONVERGED] * num
        else:
            classes = _classify_stacked(
                stacked,
                converged,
                frozen_mask,
                iterations,
                max_iterations,
                DIVERGENCE_FACTOR,
            )
        finals = stacked[:, -1].tolist()
    else:
        conv_list = converged.tolist()
        iter_list = iterations.tolist() if iterations.size else []
        frozen_list = frozen_mask.tolist()
        classes = [
            classify_curve(
                curves[i],
                converged=conv_list[i],
                frozen=frozen_list[i],
                iterations=iter_list[i] if iter_list else None,
                max_iterations=max_iterations,
            )
            for i in range(num)
        ]
        finals = [float(c[-1]) if len(c) else math.nan for c in curves]
    counts: dict[str, int] = {}
    for cls in classes:
        counts[cls] = counts.get(cls, 0) + 1
    if num and len(counts) == 1:
        worst_index = 0  # uniform batch: max() below would pick 0 anyway
    else:
        worst_index = max(
            range(num), key=lambda i: SEVERITY[classes[i]], default=None
        )
    it_list = iterations.tolist()
    record: dict[str, Any] = {
        "solver": solver,
        "backend": backend,
        "num_systems": num,
        "max_iterations": int(max_iterations),
        "classes": classes,
        "class_counts": counts,
        "num_converged": num if all_finite else int(converged.sum()),
        "iterations_max": max(it_list) if it_list else 0,
        "iterations_mean": sum(it_list) / len(it_list) if it_list else 0.0,
    }
    if worst_index is not None:
        record["worst_index"] = worst_index
        record["worst_class"] = classes[worst_index]
        down = downsample_curve(curves[worst_index], curve_points)
        record["worst_curve"] = (
            down if all_finite else [_finite_or_none(v) for v in down]
        )
        record["worst_final_residual"] = _finite_or_none(finals[worst_index])
    return record
