"""Cross-shard postmortem analysis over flight-recorder bundles.

Given one or more diagnostic bundles (each a shard's black box at the
moment a trigger fired), this module answers the incident-review
questions:

* **analyze** — what faults were injected or occurred, which requests
  were the victims (joined through trace links), and is each failure an
  *infrastructure* fault (chaos kind, sanitizer trip, breaker) or a
  *numerical* one (breakdown / stagnation / divergence / NaN residual)?
* **timeline** — the merged, time-ordered event stream across every
  shard's bundle, so a cross-shard incident reads as one story.
* **diff** — what changed between two bundles (event mix, convergence
  class mix, trigger counts, final metric values) — before/after a
  deploy, or healthy shard vs. sick shard.

The reader deliberately speaks the *wire* format: event types are the
literal strings the telemetry schema exports (``"chaos.injected"``,
``"request.failed"``, ...) rather than imports from
:mod:`repro.telemetry.events`, because the telemetry layer taps into
the recorder and must stay importable without us.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable

from repro.recorder.bundle import find_bundles, load_bundle
from repro.recorder.classify import CONVERGED, SEVERITY

__all__ = [
    "load_bundles",
    "analyze_bundles",
    "render_analysis",
    "timeline_rows",
    "render_timeline",
    "diff_bundles",
    "render_diff",
]

# -- wire-format event types (mirrors repro.telemetry.events) -----------------

EVT_FLUSHED = "request.flushed"
EVT_SOLVED = "request.solved"
EVT_FAILED = "request.failed"
EVT_TIMED_OUT = "request.timed_out"
EVT_FALLBACK = "request.fallback"
EVT_CHAOS = "chaos.injected"
EVT_SANITIZER = "sanitizer.trip"
EVT_BREAKER_OPEN = "breaker.open"
EVT_SLO_ALERT = "slo.alert"

#: Event types that count as request-level failures to attribute.
FAILURE_EVENTS = (EVT_FAILED, EVT_TIMED_OUT)

ATTR_INFRASTRUCTURE = "infrastructure"
ATTR_CONVERGENCE = "convergence"
ATTR_UNATTRIBUTED = "unattributed"


def load_bundles(paths: Iterable[str | Path]) -> list[dict[str, Any]]:
    """Load every bundle at or directly under each path (sorted, deduped)."""
    seen: set[str] = set()
    bundles: list[dict[str, Any]] = []
    for path in paths:
        found = find_bundles(path)
        if not found:
            raise ValueError(f"no recorder bundles at {path}")
        for bundle_path in found:
            key = str(Path(bundle_path).resolve())
            if key in seen:
                continue
            seen.add(key)
            bundles.append(load_bundle(bundle_path))
    return bundles


def _shard_of(bundle: dict[str, Any]) -> str:
    return bundle["manifest"].get("shard") or Path(bundle["path"]).name


# -- analyze ------------------------------------------------------------------


def analyze_bundles(bundles: list[dict[str, Any]]) -> dict[str, Any]:
    """Attribute every incident and failure across ``bundles``.

    Returns a JSON-ready analysis: the incident list (one per injected
    chaos fault / sanitizer trip / bad-convergence flush, deduplicated
    across bundles and joined to its victim trace ids), the failure
    attribution (each ``request.failed``/``request.timed_out`` event
    assigned to an infrastructure fault class, a convergence class, or
    left unattributed), and the aggregate convergence class mix.
    """
    # trace joins: flush_id -> victim traces, from flush events and
    # chaos triggers (the trigger carries the authoritative victim list)
    flush_traces: dict[str, list[str]] = {}
    for bundle in bundles:
        for ev in bundle["events"]:
            if ev.get("type") == EVT_FLUSHED and ev.get("trace_id"):
                fid = ev.get("fields", {}).get("flush_id", "")
                traces = flush_traces.setdefault(fid, [])
                if ev["trace_id"] not in traces:
                    traces.append(ev["trace_id"])
        for trig in bundle["triggers"]:
            if trig.get("reason") == "chaos_fault" and trig.get("trace_ids"):
                fid = trig.get("flush_id", "")
                traces = flush_traces.setdefault(fid, [])
                for tid in trig["trace_ids"]:
                    if tid not in traces:
                        traces.append(tid)

    # incidents: chaos faults first (deduped across bundles), then
    # sanitizer trips not already explained by a chaos fault, then
    # flushes whose numerics went bad
    incidents: list[dict[str, Any]] = []
    seen_faults: set[tuple] = set()
    chaos_flushes: set[str] = set()
    for bundle in bundles:
        shard = _shard_of(bundle)
        for ev in bundle["events"]:
            if ev.get("type") != EVT_CHAOS:
                continue
            fields = ev.get("fields", {})
            key = (fields.get("kind"), fields.get("flush_id"), fields.get("flush_index"))
            if key in seen_faults:
                continue
            seen_faults.add(key)
            fid = fields.get("flush_id", "")
            victims = flush_traces.get(fid, [])
            chaos_flushes.add(fid)
            incidents.append(
                {
                    "source": ATTR_INFRASTRUCTURE,
                    "fault_class": fields.get("kind", "unknown"),
                    "flush_id": fid,
                    "flush_index": fields.get("flush_index"),
                    "worker": fields.get("worker", ""),
                    "shard": shard,
                    "ts_ns": ev.get("ts_ns"),
                    "trace_id": victims[0] if victims else ev.get("trace_id"),
                    "trace_ids": victims,
                }
            )
    seen_trips: set[tuple] = set()
    for bundle in bundles:
        shard = _shard_of(bundle)
        for ev in bundle["events"]:
            if ev.get("type") != EVT_SANITIZER:
                continue
            fields = ev.get("fields", {})
            fid = fields.get("flush_id", "")
            key = (fid, fields.get("kind"))
            if key in seen_trips or fid in chaos_flushes:
                continue  # an injected sanitizer_trip already owns this flush
            seen_trips.add(key)
            victims = fields.get("trace_ids") or flush_traces.get(fid, [])
            incidents.append(
                {
                    "source": ATTR_INFRASTRUCTURE,
                    "fault_class": fields.get("kind", "sanitizer.trip"),
                    "flush_id": fid,
                    "shard": shard,
                    "ts_ns": ev.get("ts_ns"),
                    "trace_id": victims[0] if victims else ev.get("trace_id"),
                    "trace_ids": list(victims),
                }
            )

    # convergence: aggregate class mix, plus per-trace bad classes
    class_counts: dict[str, int] = {}
    trace_class: dict[str, str] = {}
    seen_solves: set[tuple] = set()
    bad_solves: list[dict[str, Any]] = []
    for bundle in bundles:
        shard = _shard_of(bundle)
        for rec in bundle["solves"]:
            key = (rec.get("flush_id"), rec.get("ts"))
            if key in seen_solves:
                continue
            seen_solves.add(key)
            for cls, n in rec.get("class_counts", {}).items():
                class_counts[cls] = class_counts.get(cls, 0) + int(n)
            classes = rec.get("classes", [])
            traces = rec.get("trace_ids", [])
            for i, cls in enumerate(classes):
                if cls == CONVERGED or i >= len(traces):
                    continue
                prev = trace_class.get(traces[i])
                if prev is None or SEVERITY.get(cls, 0) > SEVERITY.get(prev, 0):
                    trace_class[traces[i]] = cls
            worst = rec.get("worst_class", CONVERGED)
            if worst != CONVERGED and rec.get("flush_id") not in chaos_flushes:
                bad_solves.append(
                    {
                        "source": ATTR_CONVERGENCE,
                        "fault_class": worst,
                        "flush_id": rec.get("flush_id", ""),
                        "shard": shard,
                        "solver": rec.get("solver", ""),
                        "trace_id": (
                            traces[rec["worst_index"]]
                            if traces and rec.get("worst_index", 0) < len(traces)
                            else None
                        ),
                        "trace_ids": traces,
                        "worst_curve": rec.get("worst_curve"),
                    }
                )
    incidents.extend(bad_solves)

    # failure attribution: infrastructure (victim of a fault) beats
    # convergence (the request's own numerics went bad) beats nothing
    trace_fault: dict[str, dict] = {}
    for incident in incidents:
        if incident["source"] != ATTR_INFRASTRUCTURE:
            continue
        for tid in incident.get("trace_ids", []):
            trace_fault.setdefault(tid, incident)
    failures: list[dict[str, Any]] = []
    seen_failures: set[tuple] = set()
    attribution_counts = {
        ATTR_INFRASTRUCTURE: 0,
        ATTR_CONVERGENCE: 0,
        ATTR_UNATTRIBUTED: 0,
    }
    for bundle in bundles:
        shard = _shard_of(bundle)
        for ev in bundle["events"]:
            if ev.get("type") not in FAILURE_EVENTS:
                continue
            tid = ev.get("trace_id")
            key = (ev.get("type"), tid, ev.get("ts_ns"))
            if key in seen_failures:
                continue
            seen_failures.add(key)
            fields = ev.get("fields", {})
            if tid in trace_fault:
                attribution = ATTR_INFRASTRUCTURE
                fault_class = trace_fault[tid]["fault_class"]
            elif tid in trace_class:
                attribution = ATTR_CONVERGENCE
                fault_class = trace_class[tid]
            else:
                attribution = ATTR_UNATTRIBUTED
                fault_class = fields.get("error", "")
            attribution_counts[attribution] += 1
            failures.append(
                {
                    "type": ev.get("type"),
                    "trace_id": tid,
                    "shard": shard,
                    "ts_ns": ev.get("ts_ns"),
                    "error": fields.get("error", ""),
                    "status_code": fields.get("status_code"),
                    "attribution": attribution,
                    "fault_class": fault_class,
                }
            )

    total_failures = len(failures)
    attributed = total_failures - attribution_counts[ATTR_UNATTRIBUTED]
    incidents.sort(key=lambda inc: (inc.get("ts_ns") or 0, inc.get("flush_id") or ""))
    return {
        "bundles": [
            {
                "path": b["path"],
                "shard": _shard_of(b),
                "reason": b["manifest"].get("reason"),
                "trace_id": b["manifest"].get("trace_id"),
                "counts": b["manifest"].get("counts", {}),
            }
            for b in bundles
        ],
        "incidents": incidents,
        "failures": failures,
        "class_counts": class_counts,
        "attribution_counts": attribution_counts,
        "attributed_fraction": (attributed / total_failures) if total_failures else 1.0,
    }


def render_analysis(analysis: dict[str, Any]) -> str:
    """The human-facing markdown/ASCII report for :func:`analyze_bundles`."""
    from repro.bench.report import format_table

    lines = ["# Postmortem analysis", ""]
    lines.append(
        format_table(
            [
                {
                    "bundle": Path(b["path"]).name,
                    "shard": b["shard"],
                    "reason": b["reason"],
                    "pinned_trace": _short(b["trace_id"]),
                    "events": b["counts"].get("events", 0),
                    "solves": b["counts"].get("solves", 0),
                }
                for b in analysis["bundles"]
            ],
            title="## Bundles",
        )
    )
    lines.append("")
    incidents = analysis["incidents"]
    if incidents:
        lines.append(
            format_table(
                [
                    {
                        "source": inc["source"],
                        "class": inc["fault_class"],
                        "flush": _short(inc.get("flush_id")),
                        "shard": inc.get("shard", ""),
                        "worker": inc.get("worker", ""),
                        "trace": _short(inc.get("trace_id")),
                        "victims": len(inc.get("trace_ids", [])),
                    }
                    for inc in incidents
                ],
                title=f"## Incidents ({len(incidents)})",
            )
        )
    else:
        lines.append("## Incidents\n(none)")
    lines.append("")
    counts = analysis["attribution_counts"]
    lines.append(
        format_table(
            [
                {
                    "failures": len(analysis["failures"]),
                    "infrastructure": counts[ATTR_INFRASTRUCTURE],
                    "convergence": counts[ATTR_CONVERGENCE],
                    "unattributed": counts[ATTR_UNATTRIBUTED],
                    "attributed_pct": f"{100.0 * analysis['attributed_fraction']:.1f}",
                }
            ],
            title="## Failure attribution",
        )
    )
    lines.append("")
    if analysis["class_counts"]:
        lines.append(
            format_table(
                [
                    {"class": cls, "systems": n}
                    for cls, n in sorted(analysis["class_counts"].items())
                ],
                title="## Convergence class mix",
            )
        )
    else:
        lines.append("## Convergence class mix\n(no solve records)")
    return "\n".join(lines) + "\n"


# -- timeline -----------------------------------------------------------------


def timeline_rows(
    bundles: list[dict[str, Any]], limit: int | None = None
) -> list[dict[str, Any]]:
    """The merged cross-shard event stream, oldest first.

    Events from every bundle are deduplicated (two dumps of the same
    ring overlap) and ordered by their monotonic ``ts_ns``; rows carry
    the owning shard so interleavings across shards read directly.
    """
    merged: dict[tuple, dict[str, Any]] = {}
    for bundle in bundles:
        shard = _shard_of(bundle)
        for ev in bundle["events"]:
            key = (ev.get("ts_ns"), ev.get("type"), ev.get("trace_id"))
            if key not in merged:
                merged[key] = {"shard": shard, "event": ev}
    ordered = sorted(merged.values(), key=lambda row: row["event"].get("ts_ns") or 0)
    if limit is not None and len(ordered) > limit:
        ordered = ordered[-limit:]
    if not ordered:
        return []
    t0 = ordered[0]["event"].get("ts_ns") or 0
    rows = []
    for row in ordered:
        ev = row["event"]
        fields = ev.get("fields", {})
        detail = ", ".join(
            f"{k}={_compact(v)}"
            for k, v in list(fields.items())[:4]
        )
        rows.append(
            {
                "t_ms": f"{((ev.get('ts_ns') or 0) - t0) / 1e6:+.3f}",
                "shard": row["shard"],
                "type": ev.get("type", ""),
                "trace": _short(ev.get("trace_id")),
                "keep": ev.get("keep", ""),
                "detail": detail,
            }
        )
    return rows


def render_timeline(bundles: list[dict[str, Any]], limit: int | None = None) -> str:
    """ASCII timeline report for :func:`timeline_rows`."""
    from repro.bench.report import format_table

    rows = timeline_rows(bundles, limit=limit)
    names = ", ".join(sorted({_shard_of(b) for b in bundles}))
    title = f"# Incident timeline — shards: {names} ({len(rows)} events)"
    if not rows:
        return title + "\n(no events)\n"
    return format_table(rows, title=title) + "\n"


# -- diff ---------------------------------------------------------------------


def _event_counts(bundle: dict[str, Any]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for ev in bundle["events"]:
        counts[ev.get("type", "?")] = counts.get(ev.get("type", "?"), 0) + 1
    return counts


def _class_counts(bundle: dict[str, Any]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for rec in bundle["solves"]:
        for cls, n in rec.get("class_counts", {}).items():
            counts[cls] = counts.get(cls, 0) + int(n)
    return counts


def _trigger_counts(bundle: dict[str, Any]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for trig in bundle["triggers"]:
        counts[trig.get("reason", "?")] = counts.get(trig.get("reason", "?"), 0) + 1
    return counts


def _final_metrics(bundle: dict[str, Any]) -> dict[str, float]:
    finals: dict[str, float] = {}
    for rec in bundle["metrics"]:
        for name, value in rec.get("deltas", {}).items():
            finals[name] = value
    return finals


def diff_bundles(a: dict[str, Any], b: dict[str, Any]) -> dict[str, Any]:
    """What changed from bundle ``a`` to bundle ``b`` (counts and metrics)."""

    def table(left: dict, right: dict) -> list[dict[str, Any]]:
        keys = sorted(set(left) | set(right))
        rows = []
        for key in keys:
            lv, rv = left.get(key, 0), right.get(key, 0)
            if lv != rv:
                rows.append({"key": key, "a": lv, "b": rv, "delta": rv - lv})
        return rows

    return {
        "a": {"path": a["path"], "shard": _shard_of(a), "reason": a["manifest"].get("reason")},
        "b": {"path": b["path"], "shard": _shard_of(b), "reason": b["manifest"].get("reason")},
        "events": table(_event_counts(a), _event_counts(b)),
        "classes": table(_class_counts(a), _class_counts(b)),
        "triggers": table(_trigger_counts(a), _trigger_counts(b)),
        "metrics": table(_final_metrics(a), _final_metrics(b)),
    }


def render_diff(diff: dict[str, Any]) -> str:
    """ASCII report for :func:`diff_bundles`."""
    from repro.bench.report import format_table

    lines = [
        "# Bundle diff",
        f"a: {diff['a']['path']} (shard={diff['a']['shard']}, reason={diff['a']['reason']})",
        f"b: {diff['b']['path']} (shard={diff['b']['shard']}, reason={diff['b']['reason']})",
        "",
    ]
    for section in ("events", "classes", "triggers", "metrics"):
        rows = diff[section]
        if rows:
            lines.append(format_table(rows, title=f"## {section}"))
        else:
            lines.append(f"## {section}\n(no differences)")
        lines.append("")
    return "\n".join(lines)


# -- small renderers ----------------------------------------------------------


def _short(value: Any) -> str:
    text = str(value) if value else ""
    return text[:10]


def _compact(value: Any) -> str:
    text = str(value)
    return text if len(text) <= 24 else text[:21] + "..."
