"""Measured roofline placement and model-drift detection.

Two views of the same kernel exist in this repo: the *measured* counters
the profiler collects during simulated execution, and the *modeled*
traffic the analytic path derives (reference-solver
:class:`~repro.core.counters.TrafficLedger` classified by the Section 3.5
workspace plan into :func:`~repro.hw.memmodel.split_traffic`). Both
express arithmetic intensity in FLOP/byte, so they are directly
comparable — and *should* agree, because both count logical traffic with
the same FLOP convention. :func:`drift_report` quantifies the residual
disagreement per memory level and flags it against a tolerance: a red
drift means the hand-placed kernel counters, the kernel implementation
and the analytic model have diverged, which is exactly the silent rot the
detector exists to catch.

Level mapping: the profiler distinguishes SLM from global traffic but
(like a real GPU counter set) not L2 from HBM within global; the model's
``l2 + hbm`` lanes are therefore compared against measured ``global``.
The comparison bins the model's ledger the way the fused kernels are
actually written — iteration vectors staged in SLM, the operator values,
sparsity pattern, right-hand side and preconditioner state streamed from
global memory — rather than through :func:`~repro.hw.memmodel.split_traffic`'s
workspace plan, which may additionally promote the matrix values into an
SLM-resident ``A_cache`` the simulator kernels do not implement.
:func:`place_measured` plots the measured point on the
:class:`~repro.hw.roofline.Roofline` by assigning all measured global
bytes to the L2 lane — consistent with the workspace model for the fused
solvers, whose iteration vectors live in SLM and whose global traffic is
the L2-served operator/RHS stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dispatch import BatchSolverFactory
from repro.hw.memmodel import TrafficSplit
from repro.hw.roofline import Roofline, RooflinePoint
from repro.hw.specs import GpuSpec
from repro.profile.counters import KernelProfile

#: Default relative drift tolerance. The measured and modeled paths count
#: the same logical quantities but bucket a few edge flows differently
#: (per-item threshold/iteration bookkeeping, double row-pointer touches,
#: work-group-size-dependent scalar reads), so a few percent of drift is
#: structural; beyond this the two views no longer describe the same
#: kernel — someone changed a kernel, a counter or the analytic model
#: without updating the others.
DEFAULT_TOLERANCE = 0.25

LEVELS = ("slm", "global")


@dataclass(frozen=True)
class LevelDrift:
    """Measured vs. modeled arithmetic intensity at one memory level."""

    level: str
    measured: float
    modeled: float
    drift: float  # max/min ratio - 1; 0 = perfect agreement
    tolerance: float

    @property
    def ok(self) -> bool:
        return self.drift <= self.tolerance


@dataclass(frozen=True)
class DriftReport:
    """The drift verdict of one kernel against the analytic model."""

    kernel: str
    spec_key: str
    levels: tuple[LevelDrift, ...]

    @property
    def ok(self) -> bool:
        """Green iff every level's drift is within tolerance."""
        return all(level.ok for level in self.levels)

    def describe(self) -> str:
        """Human-readable per-level drift table ("green" or "DRIFT")."""
        lines = [f"{self.kernel} vs model on {self.spec_key}: "
                 f"{'green' if self.ok else 'DRIFT'}"]
        for lv in self.levels:
            mark = "ok" if lv.ok else "EXCEEDS"
            lines.append(
                f"  {lv.level:7s} measured {lv.measured:8.4f} FLOP/B  "
                f"modeled {lv.modeled:8.4f} FLOP/B  "
                f"drift {lv.drift:6.1%} ({mark} tol {lv.tolerance:.0%})"
            )
        return "\n".join(lines)


def measured_intensities(profile: KernelProfile) -> dict[str, float]:
    """Measured FLOP/byte per comparison level from collected counters."""
    return {level: profile.arithmetic_intensity(level) for level in LEVELS}


def modeled_intensities(
    spec: GpuSpec,
    matrix,
    b: np.ndarray,
    solver: str = "cg",
    preconditioner: str = "jacobi",
    tolerance: float = 1e-8,
    max_iterations: int = 200,
) -> dict[str, float]:
    """Model-side FLOP/byte per level, by the ``estimate_solve`` recipe.

    Runs the reference NumPy solver for its instrumented traffic ledger
    and bins it kernel-faithfully: operator values/pattern, ``b`` and
    ``precond`` are global traffic, iteration vectors are SLM (the fused
    kernels stage every vector in SLM via ``LocalSpec``).
    """
    factory = BatchSolverFactory(
        solver=solver,
        preconditioner=preconditioner,
        criterion="relative",
        tolerance=tolerance,
        max_iterations=max_iterations,
    )
    solver_obj = factory.create(matrix)
    result = solver_obj.solve(np.asarray(b, dtype=np.float64))
    slm_bytes = 0.0
    global_bytes = 0.0
    for name, nbytes in result.ledger.bytes_by_object.items():
        if (
            name.endswith(("_values", "_pattern"))
            or name == "b"
            or name == "precond"
        ):
            global_bytes += nbytes
        else:
            slm_bytes += nbytes
    flops = result.ledger.flops
    return {
        "slm": flops / slm_bytes if slm_bytes else 0.0,
        "global": flops / global_bytes if global_bytes else 0.0,
    }


def _drift(measured: float, modeled: float) -> float:
    if measured <= 0.0 or modeled <= 0.0:
        # one side has no traffic at this level: perfect agreement only
        # when both are empty, otherwise infinite drift
        return 0.0 if measured == modeled else float("inf")
    hi, lo = max(measured, modeled), min(measured, modeled)
    return hi / lo - 1.0


def drift_report(
    profile: KernelProfile,
    spec: GpuSpec,
    modeled: dict[str, float],
    tolerance: float = DEFAULT_TOLERANCE,
) -> DriftReport:
    """Compare measured vs. modeled intensities level by level."""
    measured = measured_intensities(profile)
    levels = tuple(
        LevelDrift(
            level=level,
            measured=measured[level],
            modeled=modeled.get(level, 0.0),
            drift=_drift(measured[level], modeled.get(level, 0.0)),
            tolerance=tolerance,
        )
        for level in LEVELS
    )
    return DriftReport(kernel=profile.name, spec_key=spec.key, levels=levels)


def place_measured(
    profile: KernelProfile, spec: GpuSpec, runtime_seconds: float
) -> RooflinePoint:
    """Plot the measured counters on the platform roofline.

    Measured global bytes take the L2 lane (see module docstring);
    ``runtime_seconds`` is whatever clock the caller trusts — modeled
    device time for simulator runs, wall clock for real ones.
    """
    totals = profile.totals()
    split = TrafficSplit(
        slm_bytes=float(totals.slm_bytes),
        l2_bytes=float(totals.global_bytes),
        hbm_bytes=0.0,
        flops=float(totals.flops),
    )
    return Roofline(spec).evaluate(split, runtime_seconds)
