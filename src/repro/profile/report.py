"""Top-down attribution report over collected profiler counters.

Turns a :class:`~repro.profile.profiler.Profiler` snapshot into the
per-kernel × per-phase rows the ``repro profile report`` command prints:
how the measured FLOPs, global/SLM bytes, synchronization and divergence
events distribute over the solver phases, plus per-kernel totals with the
measured arithmetic intensity at each memory level.
"""

from __future__ import annotations

from typing import Any

from repro.bench.report import format_table
from repro.profile.counters import KernelProfile, PhaseCounters
from repro.profile.profiler import Profiler


def _phase_row(
    kernel: KernelProfile,
    phase: str,
    counters: PhaseCounters,
    total_flops: int,
    backend: str | None = None,
) -> dict[str, Any]:
    row: dict[str, Any] = {}
    if backend is not None:
        row["backend"] = backend
    row.update(
        {
            "kernel": kernel.name,
            "phase": phase,
            "flops": counters.flops,
            "flop%": 100.0 * counters.flops / total_flops if total_flops else 0.0,
            "global_B": counters.global_bytes,
            "slm_B": counters.slm_bytes,
            "barriers": counters.barriers,
            "grp_coll": counters.group_collectives,
            "sg_coll": counters.sub_group_collectives,
            "diverge": counters.divergence_events,
        }
    )
    return row


def attribution_rows(
    profiler: Profiler, backend: str | None = None
) -> list[dict[str, Any]]:
    """One row per kernel × phase plus a ``total`` row per kernel.

    The total row carries the measured arithmetic intensity (FLOP/byte)
    against SLM and global memory — the numbers the roofline placement
    consumes.
    """
    rows: list[dict[str, Any]] = []
    for name in profiler.kernel_names():
        kernel = profiler.profile_for(name)
        totals = kernel.totals()
        for phase, counters in kernel.sorted_phases():
            rows.append(_phase_row(kernel, phase, counters, totals.flops, backend))
        total_row = _phase_row(kernel, "total", totals, totals.flops, backend)
        total_row["AI_slm"] = kernel.arithmetic_intensity("slm")
        total_row["AI_global"] = kernel.arithmetic_intensity("global")
        rows.append(total_row)
    # phase rows carry "-" in the intensity columns so every row shares keys
    for row in rows:
        row.setdefault("AI_slm", None)
        row.setdefault("AI_global", None)
    return rows


def format_report(
    profilers: dict[str, Profiler] | Profiler, title: str = "measured counters"
) -> str:
    """Render the attribution table for one profiler or a per-backend dict."""
    if isinstance(profilers, Profiler):
        rows = attribution_rows(profilers)
    else:
        rows = []
        for backend in sorted(profilers):
            rows.extend(attribution_rows(profilers[backend], backend=backend))
    return format_table(rows, title)
