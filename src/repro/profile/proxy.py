"""Access-counting array proxies for global memory and SLM.

The profiler measures memory traffic the same way the sanitizer checks
it: by substituting the arrays a kernel sees. A :class:`CountingArray`
forwards every element access to the wrapped array (which may itself be
the sanitizer's :class:`~repro.sanitize.shadow.ShadowArray` — the
profiler always wraps *outside* the sanitizer so both observe the same
accesses) and reports the byte count of each load/store to the launch's
:class:`~repro.profile.profiler.LaunchProfile`.

Counted traffic is *logical*: one ``dtype.itemsize`` per element touch,
exactly the convention of :class:`~repro.core.counters.TrafficLedger`.
Indexing that yields a subarray (e.g. ``values[sysid]`` selecting one
batch item's value row) counts nothing and returns a counting view, so
only the eventual element accesses are charged.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Any, Callable

import numpy as np


class CountingArray:
    """An array proxy charging each element access to a byte counter.

    ``on_read`` / ``on_write`` are the launch profile's bound accumulator
    methods for this array's memory space (global or SLM).
    """

    __slots__ = ("_data", "_on_read", "_on_write")

    def __init__(
        self,
        data: Any,
        on_read: Callable[[int], None],
        on_write: Callable[[int], None],
    ) -> None:
        self._data = data
        self._on_read = on_read
        self._on_write = on_write

    # -- shape/dtype surface the kernels use ---------------------------------

    @property
    def shape(self):
        return self._data.shape

    @property
    def dtype(self):
        return self._data.dtype

    @property
    def size(self) -> int:
        return self._data.size

    @property
    def ndim(self) -> int:
        return self._data.ndim

    def __len__(self) -> int:
        return len(self._data)

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        # a bulk materialization reads every element once
        self._on_read(int(self._data.size) * self._data.dtype.itemsize)
        array = np.asarray(self._data)
        if dtype is not None:
            array = array.astype(dtype, copy=False)
        return array

    def fill(self, value) -> None:
        """Fill the whole array, counted as one full-size write."""
        self._data.fill(value)
        self._on_write(int(self._data.size) * self._data.dtype.itemsize)

    # -- the counted accesses -------------------------------------------------

    def __getitem__(self, idx):
        value = self._data[idx]
        if isinstance(value, (np.ndarray, CountingArray)) or (
            not np.isscalar(value) and getattr(value, "ndim", 0) != 0
        ):
            # subarray selection: defer counting to its element accesses
            return CountingArray(value, self._on_read, self._on_write)
        self._on_read(self._data.dtype.itemsize)
        return value

    def __setitem__(self, idx, value) -> None:
        self._data[idx] = value
        self._on_write(self._data.dtype.itemsize * int(np.size(value)))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CountingArray({self._data!r})"


def wrap_args(
    args: tuple, on_read: Callable[[int], None], on_write: Callable[[int], None]
) -> tuple:
    """Wrap every ndarray argument of a launch in a :class:`CountingArray`."""
    return tuple(
        CountingArray(a, on_read, on_write) if isinstance(a, np.ndarray) else a
        for a in args
    )


def wrap_local(
    local: Any, on_read: Callable[[int], None], on_write: Callable[[int], None]
) -> SimpleNamespace:
    """Wrap a work-group's SLM namespace (possibly already shadow-wrapped).

    Each named SLM array — a plain ndarray, or the sanitizer's
    ``ShadowArray`` when checking is on — becomes a counting proxy; the
    namespace shape (``slm.r``, ``slm.p`` ...) is preserved.
    """
    wrapped = SimpleNamespace()
    for name, array in vars(local).items():
        setattr(wrapped, name, CountingArray(array, on_read, on_write))
    return wrapped
