"""Per-phase hardware-counter records and their per-kernel aggregation.

The counter set mirrors what VTune / NSight expose for a GPU kernel and
what the paper's Section 4 performance narrative needs: floating-point
operations, global-memory and shared-local-memory traffic, barrier and
collective counts, and divergence events. Counters are attributed to
solver *phases* — the building blocks of Algorithm 1 — via the
:func:`~repro.profile.context.kernel_phase` markers placed in
:mod:`repro.kernels`:

* ``spmv``       — the sparse matrix-vector product (t = A p);
* ``precond``    — preconditioner application (z = M r);
* ``blas1``      — axpy/copy-style vector updates and staging loops;
* ``reduction``  — dot products and norms (the group/sub-group/warp
  reduction trees of Section 3.2);
* ``other``      — anything before the first marker.

Counting conventions (what "exact" means in the tests):

* **FLOPs** are hand-counted at the kernel source: one per floating
  add/sub/mul/div on *vector elements*. Group-uniform scalar recurrence
  arithmetic (``alpha``, ``beta``, thresholds, residual square roots) is
  control flow, not counted — matching the analytic
  :class:`~repro.core.counters.TrafficLedger` convention so measured and
  modeled arithmetic intensities are directly comparable.
* **Bytes** are counted automatically by the access proxies
  (:mod:`repro.profile.proxy`): every element load/store of a wrapped
  global or SLM array adds its ``dtype.itemsize``. Logical traffic, like
  the ledger — caching is the hardware model's job.
* **Divergence events** count sub-group collectives that completed while
  a sibling work-item of the same work-group was already finished or
  waiting on a *different* synchronization operation — the simulator's
  deterministic analogue of divergence counters (uniform control flow
  measures exactly zero).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Canonical phase ordering for reports.
PHASES = ("spmv", "precond", "blas1", "reduction", "other")


@dataclass
class PhaseCounters:
    """The measured counters of one solver phase."""

    flops: int = 0
    global_read_bytes: int = 0
    global_write_bytes: int = 0
    slm_read_bytes: int = 0
    slm_write_bytes: int = 0
    barriers: int = 0
    group_collectives: int = 0
    sub_group_collectives: int = 0
    divergence_events: int = 0

    @property
    def global_bytes(self) -> int:
        """Global-memory traffic, reads plus writes."""
        return self.global_read_bytes + self.global_write_bytes

    @property
    def slm_bytes(self) -> int:
        """Shared-local-memory traffic, reads plus writes."""
        return self.slm_read_bytes + self.slm_write_bytes

    @property
    def total_bytes(self) -> int:
        """All measured traffic regardless of level."""
        return self.global_bytes + self.slm_bytes

    def merge(self, other: "PhaseCounters") -> None:
        """Accumulate ``other`` into this record (launch -> kernel rollup)."""
        self.flops += other.flops
        self.global_read_bytes += other.global_read_bytes
        self.global_write_bytes += other.global_write_bytes
        self.slm_read_bytes += other.slm_read_bytes
        self.slm_write_bytes += other.slm_write_bytes
        self.barriers += other.barriers
        self.group_collectives += other.group_collectives
        self.sub_group_collectives += other.sub_group_collectives
        self.divergence_events += other.divergence_events

    def as_dict(self) -> dict[str, int]:
        """Plain-dict snapshot (stable keys; used by tests and exports)."""
        return {
            "flops": self.flops,
            "global_read_bytes": self.global_read_bytes,
            "global_write_bytes": self.global_write_bytes,
            "slm_read_bytes": self.slm_read_bytes,
            "slm_write_bytes": self.slm_write_bytes,
            "barriers": self.barriers,
            "group_collectives": self.group_collectives,
            "sub_group_collectives": self.sub_group_collectives,
            "divergence_events": self.divergence_events,
        }


def phase_order(name: str) -> int:
    """Sort key putting known phases in canonical order, unknown last."""
    try:
        return PHASES.index(name)
    except ValueError:
        return len(PHASES)


@dataclass
class KernelProfile:
    """Counters of one kernel name, aggregated over its launches."""

    name: str
    device: str | None = None
    launches: int = 0
    phases: dict[str, PhaseCounters] = field(default_factory=dict)

    def phase(self, name: str) -> PhaseCounters:
        """The phase record called ``name`` (created on first use)."""
        counters = self.phases.get(name)
        if counters is None:
            counters = self.phases[name] = PhaseCounters()
        return counters

    def totals(self) -> PhaseCounters:
        """Sum of every phase (a fresh record; safe to mutate)."""
        total = PhaseCounters()
        for counters in self.phases.values():
            total.merge(counters)
        return total

    def sorted_phases(self) -> list[tuple[str, PhaseCounters]]:
        """Phases in canonical report order."""
        return sorted(self.phases.items(), key=lambda kv: phase_order(kv[0]))

    def arithmetic_intensity(self, level: str = "slm") -> float:
        """Measured FLOP/byte against one traffic level.

        ``level`` is ``"slm"``, ``"global"`` or ``"total"`` — the measured
        analogue of :meth:`repro.core.counters.TrafficLedger.arithmetic_intensity`.
        """
        total = self.totals()
        nbytes = {
            "slm": total.slm_bytes,
            "global": total.global_bytes,
            "total": total.total_bytes,
        }[level]
        return total.flops / nbytes if nbytes > 0 else 0.0

    def merge(self, other: "KernelProfile") -> None:
        """Fold another profile of the same kernel into this one."""
        self.launches += other.launches
        if self.device is None:
            self.device = other.device
        for name, counters in other.phases.items():
            self.phase(name).merge(counters)

    def as_dict(self) -> dict[str, Any]:
        """Nested plain-dict snapshot (bitwise-stable across runs)."""
        return {
            "kernel": self.name,
            "device": self.device,
            "launches": self.launches,
            "phases": {
                name: counters.as_dict() for name, counters in self.sorted_phases()
            },
            "totals": self.totals().as_dict(),
        }
