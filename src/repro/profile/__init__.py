"""repro.profile — measured kernel counters with phase-level attribution.

Layer 8 of the stack: a hardware-counter-style profiler for the simulated
execution model. While a :class:`~repro.profile.profiler.Profiler` is
installed (:func:`use_profiler` / :func:`set_profiler`), every kernel
launch on either backend counts FLOPs, global-memory and SLM bytes,
barriers, group/sub-group collectives and divergence events, attributed
to solver phases (``spmv``, ``precond``, ``blas1``, ``reduction``) via
the :func:`~repro.profile.context.kernel_phase` markers inside the
kernels. When no profiler is installed the whole layer costs one
contextvar lookup per launch plus one per phase marker.

On top of the raw counters sit the attribution report
(:mod:`repro.profile.report`), flamegraph-ready folded-stack export
(:mod:`repro.profile.folded`) and measured-roofline placement with model
drift detection (:mod:`repro.profile.roofline`).
"""

from repro.profile.context import (
    current_profiler,
    kernel_phase,
    profiling,
    set_profiler,
    use_profiler,
)
from repro.profile.counters import PHASES, KernelProfile, PhaseCounters
from repro.profile.profiler import LaunchProfile, Profiler

__all__ = [
    "PHASES",
    "KernelProfile",
    "LaunchProfile",
    "PhaseCounters",
    "Profiler",
    "current_profiler",
    "kernel_phase",
    "profiling",
    "set_profiler",
    "use_profiler",
]
