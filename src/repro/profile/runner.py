"""Profiled workload runner behind the CLI, smoke test and drift check.

Builds a batched workload (a PeleLM mechanism from
:mod:`repro.workloads.pele` or the 3-point stencil), runs the fused
solver kernels on one or both simulated backends under a fresh
:class:`~repro.profile.profiler.Profiler` per backend, and hands the
collected counters to the report / roofline layers. The backend plumbing
mirrors the differential harness (:mod:`repro.sanitize.diff`): PVC
single-stack for ``sycl``, A100 for ``cuda``, group reductions on SYCL
and the warp-shuffle structure on CUDA.
"""

from __future__ import annotations

import numpy as np

from repro.core.matrix.batch_csr import BatchCsr
from repro.cudasim.device import a100_device
from repro.kernels import (
    run_batch_bicgstab_on_device,
    run_batch_cg_on_device,
    run_batch_richardson_on_device,
)
from repro.profile.context import use_profiler
from repro.profile.profiler import Profiler
from repro.sycl.device import pvc_stack_device
from repro.workloads.pele import MECHANISMS, pele_batch, pele_rhs
from repro.workloads.stencil import stencil_rhs, three_point_stencil

BACKENDS = ("sycl", "cuda")
SOLVERS = ("cg", "bicgstab", "richardson")


def build_workload(
    workload: str, num_batch: int | None = None, seed: int = 0
) -> tuple[BatchCsr, np.ndarray]:
    """``(matrix, b)`` for a named workload.

    ``workload`` is a PeleLM mechanism name (``drm19``, ...) or
    ``stencil:<n>`` for the 3-point stencil with ``n`` rows.
    """
    if workload.startswith("stencil:"):
        n = int(workload.split(":", 1)[1])
        nb = num_batch or 4
        matrix = three_point_stencil(n, nb)
        return matrix, stencil_rhs(n, nb)
    if workload not in MECHANISMS:
        known = ", ".join(sorted(MECHANISMS)) + ", stencil:<n>"
        raise ValueError(f"unknown workload {workload!r}; known: {known}")
    matrix = pele_batch(workload, num_batch=num_batch, seed=seed)
    return matrix, pele_rhs(matrix, seed=seed + 1)


def run_profiled(
    matrix: BatchCsr,
    b: np.ndarray,
    solver: str = "cg",
    backend: str = "sycl",
    preconditioner: str = "jacobi",
    tolerance: float = 1e-8,
    max_iterations: int = 40,
    profiler: Profiler | None = None,
) -> Profiler:
    """One fused-kernel solve under a profiler; returns the profiler."""
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    device = pvc_stack_device(1) if backend == "sycl" else a100_device()
    inv_diag = None
    if preconditioner == "jacobi":
        inv_diag = 1.0 / matrix.diagonal()
    prof = profiler if profiler is not None else Profiler()
    with use_profiler(prof):
        if solver == "cg":
            run_batch_cg_on_device(
                device,
                matrix,
                b,
                inv_diag=inv_diag,
                tolerance=tolerance,
                max_iterations=max_iterations,
            )
        elif solver == "bicgstab":
            style = "cuda" if backend == "cuda" else "group"
            run_batch_bicgstab_on_device(
                device,
                matrix,
                b,
                inv_diag=inv_diag,
                tolerance=tolerance,
                max_iterations=max_iterations,
                reduce_style=style,
            )
        elif solver == "richardson":
            run_batch_richardson_on_device(
                device,
                matrix,
                b,
                inv_diag=inv_diag,
                tolerance=tolerance,
                max_iterations=max_iterations,
            )
        else:
            raise ValueError(f"solver must be one of {SOLVERS}, got {solver!r}")
    return prof


def profile_workload(
    workload: str = "drm19",
    solvers: tuple[str, ...] = ("cg", "bicgstab"),
    backends: tuple[str, ...] = BACKENDS,
    num_batch: int | None = 8,
    preconditioner: str = "jacobi",
    tolerance: float = 1e-8,
    max_iterations: int = 40,
) -> dict[str, Profiler]:
    """Run the solver grid on every backend; one profiler per backend."""
    matrix, b = build_workload(workload, num_batch=num_batch)
    profilers: dict[str, Profiler] = {}
    for backend in backends:
        prof = Profiler()
        for solver in solvers:
            run_profiled(
                matrix,
                b,
                solver=solver,
                backend=backend,
                preconditioner=preconditioner,
                tolerance=tolerance,
                max_iterations=max_iterations,
                profiler=prof,
            )
        profilers[backend] = prof
    return profilers
