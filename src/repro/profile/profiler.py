"""The measured-counter profiler threaded through the simulators.

A :class:`Profiler` collects :class:`~repro.profile.counters.KernelProfile`
records keyed by kernel name. The executor (shared by the SYCL queue and
the CUDA stream — :func:`repro.sycl.executor.launch`) asks
:func:`~repro.profile.context.current_profiler` once per launch; when one
is installed it opens a :class:`LaunchProfile`, wraps the launch's global
arrays and every work-group's SLM in counting proxies, and reports each
completed collective and divergence event. The launch's counters merge
into the profiler under a lock at launch end, so concurrent launches
(e.g. the serve worker pool) never contend during execution.

Attribution machinery: the executor primes :meth:`LaunchProfile.set_current`
around every generator advance (exactly like the sanitizer's
``GroupCheck``), so the phase each work-item last declared via
:func:`~repro.profile.context.kernel_phase` is restored whenever that
item runs — phases are per-work-item state, counters are per-phase
accumulators.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.profile.counters import KernelProfile, PhaseCounters
from repro.profile.proxy import wrap_args, wrap_local

_OTHER = "other"


class LaunchProfile:
    """Counter collection state of one kernel launch (single-threaded)."""

    __slots__ = (
        "kernel_name",
        "device",
        "num_groups",
        "phases",
        "_item_phase",
        "_gid",
        "_cur",
    )

    def __init__(
        self, kernel_name: str, device: str | None = None, num_groups: int = 0
    ) -> None:
        self.kernel_name = kernel_name
        self.device = device
        self.num_groups = num_groups
        self.phases: dict[str, PhaseCounters] = {}
        self._item_phase: dict[int, str] = {}  # global_id -> current phase
        self._gid: int = -1
        self._cur: PhaseCounters = self._phase(_OTHER)

    def _phase(self, name: str) -> PhaseCounters:
        counters = self.phases.get(name)
        if counters is None:
            counters = self.phases[name] = PhaseCounters()
        return counters

    # -- executor hooks -------------------------------------------------------

    def set_current(self, item: Any) -> None:
        """Prime the profile for one work-item's advance (``None`` = leave).

        Restores the item's phase so counters recorded while its generator
        runs land in the right bucket.
        """
        if item is None:
            return
        gid = item.global_id
        self._gid = gid
        self._cur = self._phase(self._item_phase.get(gid, _OTHER))

    def enter_phase(self, name: str) -> None:
        """Switch the *current work-item* into solver phase ``name``."""
        self._item_phase[self._gid] = name
        self._cur = self._phase(name)

    def phase_of(self, item: Any) -> str:
        """The phase a work-item last declared (``other`` before markers)."""
        return self._item_phase.get(item.global_id, _OTHER)

    def on_collective(self, kind: str, scope: str, member_item: Any) -> None:
        """Record one completed collective, attributed to the members' phase."""
        counters = self._phase(self.phase_of(member_item))
        if kind == "barrier":
            counters.barriers += 1
        elif scope == "sub_group":
            counters.sub_group_collectives += 1
        else:
            counters.group_collectives += 1

    def on_divergence(self, member_item: Any) -> None:
        """Record one divergence event (sub-group collective completing
        while a sibling work-item sat elsewhere)."""
        self._phase(self.phase_of(member_item)).divergence_events += 1

    # -- kernel-side counter API ---------------------------------------------

    def add_flops(self, count: int) -> None:
        """Hand-counted floating-point operations (see counter conventions)."""
        self._cur.flops += count

    def on_global_read(self, nbytes: int) -> None:
        """Bytes read from a global array (proxy callback)."""
        self._cur.global_read_bytes += nbytes

    def on_global_write(self, nbytes: int) -> None:
        """Bytes written to a global array (proxy callback)."""
        self._cur.global_write_bytes += nbytes

    def on_slm_read(self, nbytes: int) -> None:
        """Bytes read from shared local memory (proxy callback)."""
        self._cur.slm_read_bytes += nbytes

    def on_slm_write(self, nbytes: int) -> None:
        """Bytes written to shared local memory (proxy callback)."""
        self._cur.slm_write_bytes += nbytes

    # -- wrapping -------------------------------------------------------------

    def wrap_args(self, args: tuple) -> tuple:
        """Counting proxies around the launch's global ndarray arguments."""
        return wrap_args(args, self.on_global_read, self.on_global_write)

    def wrap_local(self, local: Any) -> Any:
        """Counting proxies around one work-group's SLM namespace."""
        return wrap_local(local, self.on_slm_read, self.on_slm_write)


class Profiler:
    """Aggregated measured counters per kernel name (thread-safe rollup)."""

    def __init__(self) -> None:
        self.kernels: dict[str, KernelProfile] = {}
        self._lock = threading.Lock()

    # -- executor protocol ----------------------------------------------------

    def begin_launch(
        self, kernel_name: str, num_groups: int, device: str | None = None
    ) -> LaunchProfile:
        """Open the per-launch collection state (single executor thread)."""
        return LaunchProfile(kernel_name, device=device, num_groups=num_groups)

    def end_launch(self, launch: LaunchProfile) -> None:
        """Fold a finished launch's counters into the per-kernel rollup."""
        with self._lock:
            profile = self.kernels.get(launch.kernel_name)
            if profile is None:
                profile = self.kernels[launch.kernel_name] = KernelProfile(
                    launch.kernel_name, device=launch.device
                )
            profile.launches += 1
            if profile.device is None:
                profile.device = launch.device
            for name, counters in launch.phases.items():
                # an all-zero bucket (e.g. "other" before the first marker)
                # would only add noise to the attribution report
                if any(counters.as_dict().values()):
                    profile.phase(name).merge(counters)

    # -- inspection -----------------------------------------------------------

    def profile_for(self, kernel_name: str) -> KernelProfile:
        """The rollup of one kernel (KeyError if it never launched)."""
        with self._lock:
            return self.kernels[kernel_name]

    def kernel_names(self) -> list[str]:
        """Sorted names of every kernel that launched under this profiler."""
        with self._lock:
            return sorted(self.kernels)

    def totals(self) -> PhaseCounters:
        """Counters summed over every kernel and phase collected so far."""
        total = PhaseCounters()
        with self._lock:
            for profile in self.kernels.values():
                total.merge(profile.totals())
        return total

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """``{kernel: nested counter dict}`` — bitwise-stable across runs."""
        with self._lock:
            profiles = list(self.kernels.values())
        return {p.name: p.as_dict() for p in sorted(profiles, key=lambda p: p.name)}

    def merge(self, other: "Profiler") -> None:
        """Fold another profiler's rollups into this one."""
        with other._lock:
            profiles = list(other.kernels.values())
        with self._lock:
            for incoming in profiles:
                mine = self.kernels.get(incoming.name)
                if mine is None:
                    self.kernels[incoming.name] = incoming
                else:
                    mine.merge(incoming)

    def reset(self) -> None:
        """Drop every collected profile."""
        with self._lock:
            self.kernels.clear()
