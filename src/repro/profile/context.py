"""Installation of the active profiler (mirrors the sanitizer's pattern).

The execution-model simulators never take a profiler parameter: the
executor asks :func:`current_profiler` at launch time and gets ``None``
when counter collection is off, so unprofiled launches pay a single
contextvar lookup. Profiled regions install a
:class:`~repro.profile.Profiler` with :func:`use_profiler` (a context
manager, safely nestable) or process-wide with :func:`set_profiler`
(what the ``python -m repro profile <cmd>`` CLI does).

A second contextvar holds the *launch in flight*: while the executor is
advancing a kernel's work-items it installs the launch's
:class:`~repro.profile.profiler.LaunchProfile` so the lightweight phase
markers in :mod:`repro.kernels` (:func:`kernel_phase`) can find it
without any parameter threading. When no profiler is installed the
marker costs one contextvar lookup returning ``None``.
"""

from __future__ import annotations

import contextvars
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.profile.profiler import LaunchProfile, Profiler

_PROFILER: contextvars.ContextVar["Profiler | None"] = contextvars.ContextVar(
    "repro_profiler", default=None
)

_ACTIVE_LAUNCH: contextvars.ContextVar["LaunchProfile | None"] = contextvars.ContextVar(
    "repro_profile_active_launch", default=None
)


def current_profiler() -> "Profiler | None":
    """The profiler installed for the current context (``None`` = off)."""
    return _PROFILER.get()


def set_profiler(profiler: "Profiler | None") -> "Profiler | None":
    """Install ``profiler`` process-wide; returns the previous one."""
    previous = _PROFILER.get()
    _PROFILER.set(profiler)
    return previous


def profiling() -> bool:
    """True when a profiler is installed in the current context."""
    return _PROFILER.get() is not None


class _UseProfiler:
    """Context manager installing a profiler for a dynamic extent."""

    def __init__(self, profiler: "Profiler | None") -> None:
        self._profiler = profiler
        self._token: contextvars.Token | None = None

    def __enter__(self) -> "Profiler | None":
        self._token = _PROFILER.set(self._profiler)
        return self._profiler

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            _PROFILER.reset(self._token)
            self._token = None


def use_profiler(profiler: "Profiler | None") -> _UseProfiler:
    """``with use_profiler(Profiler()): ...`` — scoped installation.

    Passing ``None`` disables collection inside the block (carves an
    unprofiled region out of a profiled run).
    """
    return _UseProfiler(profiler)


# -- the launch in flight (set by the executor, read by phase markers) --------


def set_active_launch(launch: "LaunchProfile | None") -> contextvars.Token:
    """Install the launch being executed; returns the reset token."""
    return _ACTIVE_LAUNCH.set(launch)


def reset_active_launch(token: contextvars.Token) -> None:
    """Undo :func:`set_active_launch`."""
    _ACTIVE_LAUNCH.reset(token)


def active_launch() -> "LaunchProfile | None":
    """The :class:`LaunchProfile` of the launch in flight (``None`` = off)."""
    return _ACTIVE_LAUNCH.get()


def kernel_phase(name: str) -> "LaunchProfile | None":
    """Phase marker: attribute subsequent counters to solver phase ``name``.

    Called from inside kernel code (``kernel_phase("spmv")``); the phase
    sticks to the *calling work-item* until its next marker. Returns the
    active :class:`LaunchProfile` so kernels can hand-count FLOPs::

        prof = kernel_phase("blas1")
        ...
        if prof:
            prof.add_flops(2)

    When no profiler is installed this is a single contextvar lookup
    returning ``None`` — the marker is near-free on the production path.
    """
    launch = _ACTIVE_LAUNCH.get()
    if launch is not None:
        launch.enter_phase(name)
    return launch
