"""Folded-stack export: profiler counters in flamegraph-ready form.

The folded format is one stack per line, frames separated by ``;``, with
an integer weight — the input ``flamegraph.pl`` and speedscope consume::

    batch_cg_fused;spmv 288
    batch_cg_fused;reduction 352

Two exports live here:

* :func:`folded_lines` — pure counter stacks (``kernel;phase``) weighted
  by any counter field (FLOPs by default);
* :func:`folded_from_trace` — the join with the tracer: each kernel-
  category span contributes its *host* ancestry (``parent`` chain) as the
  outer frames and the profiler's phase shares of that kernel as the leaf
  frames, weighted by the span's wall-clock nanoseconds. This is the
  top-down view: where the time went, split by what the kernel was doing.
"""

from __future__ import annotations

from repro.observability.tracer import Tracer
from repro.profile.profiler import Profiler


def folded_lines(profiler: Profiler, weight: str = "flops") -> list[str]:
    """``kernel;phase <weight>`` lines, sorted, zero-weight stacks dropped.

    ``weight`` names any :class:`~repro.profile.counters.PhaseCounters`
    field or derived property (``flops``, ``global_bytes``, ``slm_bytes``,
    ``total_bytes``, ``barriers``, ...).
    """
    lines = []
    for name in profiler.kernel_names():
        kernel = profiler.profile_for(name)
        for phase, counters in kernel.sorted_phases():
            value = int(getattr(counters, weight))
            if value > 0:
                lines.append(f"{kernel.name};{phase} {value}")
    return lines


def _span_stack(span) -> list[str]:
    frames = []
    node = span
    while node is not None:
        frames.append(node.name)
        node = node.parent
    frames.reverse()
    return frames


def folded_from_trace(
    tracer: Tracer, profiler: Profiler, share_by: str = "flops"
) -> list[str]:
    """Join kernel spans with phase shares into wall-clock folded stacks.

    Every span with ``category == "kernel"`` whose name has a collected
    profile is split into per-phase leaf frames, each taking the phase's
    share (by ``share_by``, FLOPs by default) of the span's duration in
    nanoseconds. Kernel spans without counters, and the share remainder
    of kernels whose ``share_by`` total is zero, fold as the bare kernel
    stack.
    """
    lines: list[str] = []
    for span in tracer.spans:
        if span.category != "kernel":
            continue
        duration = max(0, span.end_ns - span.start_ns)
        if duration == 0:
            continue
        stack = ";".join(_span_stack(span))
        kernel = profiler.kernels.get(span.name)
        total = int(getattr(kernel.totals(), share_by)) if kernel else 0
        if not kernel or total == 0:
            lines.append(f"{stack} {duration}")
            continue
        assigned = 0
        phase_items = kernel.sorted_phases()
        for phase, counters in phase_items:
            share = duration * int(getattr(counters, share_by)) // total
            if share > 0:
                lines.append(f"{stack};{phase} {share}")
                assigned += share
        if duration - assigned > 0:  # integer-division remainder
            lines.append(f"{stack} {duration - assigned}")
    return lines


def write_folded(lines: list[str], path: str) -> str:
    """Write folded stacks to ``path`` (one stack per line)."""
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(line + "\n")
    return path
