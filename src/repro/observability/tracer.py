"""Span-based tracing with a zero-overhead disabled path.

The design follows what Level-Zero tracing tools (unitrace, onetrace)
record for SYCL programs: *spans* (named durations with nested structure,
one per kernel launch / solve / dispatch), *instant events* (markers) and
*counter series* (per-iteration convergence telemetry). Timestamps are
integer nanoseconds from ``time.perf_counter_ns`` — the monotonic clock —
so durations survive wall-clock adjustments and export losslessly to the
microsecond ``ts``/``dur`` fields of the Chrome trace-event format.

Instrumented library code never takes a tracer parameter explicitly; it
asks :func:`current_tracer` for the installed tracer and gets
:data:`NULL_TRACER` — whose every method is a no-op returning shared
singletons — when tracing is off. Public solve APIs additionally accept an
opt-in ``tracer=`` argument which they install via :func:`use_tracer` for
the duration of the call.

Thread safety: finished records append under a lock; the *open-span stack*
lives in a :class:`contextvars.ContextVar`, so concurrent solves on
different threads — and interleaved host tasks that inherit a copied
context — nest their own spans correctly and export with distinct ``tid``
lanes. Spans additionally carry request attribution: a ``trace_id``
inherited from the enclosing span or the ambient
:class:`~repro.observability.context.TraceContext`, and *span links*
recording batch fan-in (several requests converging on one shared flush
span, OpenTelemetry style).
"""

from __future__ import annotations

import contextvars
import functools
import threading
import time
from typing import Any, Callable

from repro.observability.context import (
    TraceContext,
    current_trace_context,
    new_span_id,
)
from repro.observability.metrics import MetricsRegistry

__all__ = [
    "Span",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "set_tracer",
    "use_tracer",
    "traced",
]

#: Open spans of the calling execution context, innermost last. One stack
#: is shared by all tracers; parentage and ``current_span`` filter by the
#: owning tracer so nested ``use_tracer`` scopes stay independent.
_SPAN_STACK: contextvars.ContextVar[tuple] = contextvars.ContextVar(
    "repro_span_stack", default=()
)


class TraceEvent:
    """One instant marker or counter sample (non-span trace record)."""

    __slots__ = ("kind", "name", "ts_ns", "tid", "args", "trace_id", "span_id")

    INSTANT = "instant"
    COUNTER = "counter"

    def __init__(
        self,
        kind: str,
        name: str,
        ts_ns: int,
        tid: int,
        args: dict,
        trace_id: str | None = None,
        span_id: str | None = None,
    ) -> None:
        self.kind = kind
        self.name = name
        self.ts_ns = ts_ns
        self.tid = tid
        self.args = args
        self.trace_id = trace_id
        self.span_id = span_id

    def __repr__(self) -> str:
        return f"TraceEvent({self.kind}, {self.name!r}, ts={self.ts_ns})"


class Span:
    """A named duration; context manager handed out by :meth:`Tracer.span`.

    Attributes are filled progressively: ``set``/``set_args`` attach
    key-value arguments (exported into the Chrome ``args`` field) and
    ``event`` drops an instant marker on the span's timeline lane.
    """

    __slots__ = (
        "name",
        "category",
        "args",
        "start_ns",
        "end_ns",
        "tid",
        "parent",
        "trace_id",
        "span_id",
        "parent_id",
        "links",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        args: dict,
        tid: int | None = None,
        context: TraceContext | None = None,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.args = args
        self.start_ns = 0
        self.end_ns = 0
        self.tid = tid
        self.parent: Span | None = None
        # request attribution: a ``context`` passed explicitly wins; else
        # _open_span inherits from the enclosing span / ambient context
        self.trace_id: str | None = context.trace_id if context is not None else None
        self.span_id: str | None = None
        self.parent_id: str | None = context.span_id if context is not None else None
        self.links: list[dict] = []

    # -- annotation ----------------------------------------------------------

    def set(self, key: str, value: Any) -> "Span":
        """Attach one argument to the span."""
        self.args[key] = value
        return self

    def set_args(self, **kwargs: Any) -> "Span":
        """Attach several arguments to the span."""
        self.args.update(kwargs)
        return self

    def link(self, target: "TraceContext | Span") -> "Span":
        """Record a causal link to another trace (OpenTelemetry span link).

        Used for batch fan-in: a shared flush span belongs to no single
        request, so it *links* every constituent request's root context
        instead — reconstruction follows the links back out.
        """
        self.links.append({"trace_id": target.trace_id, "span_id": target.span_id})
        return self

    def event(self, name: str, **args: Any) -> None:
        """Drop an instant marker at the current time on this span's lane."""
        self._tracer._record_event(
            TraceEvent(
                TraceEvent.INSTANT,
                name,
                time.perf_counter_ns(),
                self.tid,
                args,
                trace_id=self.trace_id,
                span_id=self.span_id,
            )
        )

    @property
    def duration_ns(self) -> int:
        """Span duration in integer nanoseconds (0 while still open)."""
        return max(0, self.end_ns - self.start_ns)

    @property
    def duration_seconds(self) -> float:
        """Span duration in seconds."""
        return self.duration_ns * 1e-9

    # -- context-manager protocol -------------------------------------------

    def __enter__(self) -> "Span":
        self._tracer._open_span(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self._tracer._close_span(self)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, cat={self.category!r}, "
            f"dur={self.duration_ns} ns, args={self.args})"
        )


class _NullSpan:
    """Shared do-nothing span; the disabled tracer hands out one instance."""

    __slots__ = ()

    name = ""
    category = ""
    args: dict = {}
    start_ns = 0
    end_ns = 0
    tid = None
    parent = None
    trace_id = None
    span_id = None
    parent_id = None
    links: list = []
    duration_ns = 0
    duration_seconds = 0.0

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self

    def set_args(self, **kwargs: Any) -> "_NullSpan":
        return self

    def link(self, target: Any) -> "_NullSpan":
        return self

    def event(self, name: str, **args: Any) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


class Tracer:
    """Collects spans, instant events and counter samples, plus metrics.

    Parameters
    ----------
    enabled:
        When false the tracer behaves like :class:`NullTracer` (kept for
        symmetry; prefer simply not installing a tracer).
    """

    enabled: bool = True

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.epoch_ns = time.perf_counter_ns()
        self.metrics = MetricsRegistry()
        self.spans: list[Span] = []
        self.events: list[TraceEvent] = []
        self._lock = threading.Lock()
        self._tids: dict[int, int] = {}

    # -- recording API -------------------------------------------------------

    def span(
        self,
        name: str,
        category: str = "",
        tid: int | None = None,
        context: TraceContext | None = None,
        **args: Any,
    ):
        """A context manager recording one span (finished on ``__exit__``).

        ``tid`` overrides the export lane — used e.g. for per-rank lanes of
        the distributed solves; by default spans land on the lane of the
        thread that opened them. ``context`` pins the span to a specific
        request's trace (per-request scatter/fallback spans inside a shared
        flush); without it the span inherits the enclosing span's trace id
        or the ambient :func:`current_trace_context`.
        """
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, category, dict(args), tid=tid, context=context)

    def instant(self, name: str, **args: Any) -> None:
        """Record a free-standing instant marker."""
        if not self.enabled:
            return
        self._record_event(
            TraceEvent(
                TraceEvent.INSTANT, name, time.perf_counter_ns(), self._thread_tid(), args
            )
        )

    def counter(self, name: str, **series: float) -> None:
        """Record one sample of a Chrome counter track (numeric series)."""
        if not self.enabled:
            return
        self._record_event(
            TraceEvent(
                TraceEvent.COUNTER,
                name,
                time.perf_counter_ns(),
                self._thread_tid(),
                {k: float(v) for k, v in series.items()},
            )
        )

    def annotate(self, **args: Any) -> None:
        """Attach arguments to the innermost open span of this thread.

        No-op when no span is open — lets deep layers (the launch
        configurator, the timing model) decorate whatever span happens to
        surround them without threading a handle through every call.
        """
        if not self.enabled:
            return
        span = self.current_span()
        if span is not None:
            span.set_args(**args)

    def trace(self, name: str | None = None, category: str = "function", **args: Any):
        """Decorator: wrap every call of the function in a span."""

        def decorator(fn: Callable) -> Callable:
            label = name if name is not None else fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*a: Any, **kw: Any):
                with self.span(label, category=category, **args):
                    return fn(*a, **kw)

            return wrapper

        return decorator

    # -- introspection -------------------------------------------------------

    def current_span(self) -> Span | None:
        """The innermost open span of the calling execution context, if any."""
        for span in reversed(_SPAN_STACK.get()):
            if span._tracer is self:
                return span
        return None

    @property
    def num_records(self) -> int:
        """Finished spans plus instant/counter events recorded so far."""
        return len(self.spans) + len(self.events)

    def reset(self) -> None:
        """Drop all finished records (open spans are unaffected)."""
        with self._lock:
            self.spans.clear()
            self.events.clear()

    # -- span bookkeeping (called by Span) ------------------------------------

    def _open_span(self, span: Span) -> None:
        stack = _SPAN_STACK.get()
        span.parent = self.current_span()
        span.span_id = new_span_id()
        if span.parent is not None and span.parent_id is None:
            # structural parent: the enclosing span, whatever trace it is on
            span.parent_id = span.parent.span_id
        if span.trace_id is None:
            if span.parent is not None and span.parent.trace_id is not None:
                span.trace_id = span.parent.trace_id
            else:
                ctx = current_trace_context()
                if ctx is not None:
                    span.trace_id = ctx.trace_id
                    if span.parent_id is None:
                        span.parent_id = ctx.span_id
        if span.tid is None:
            span.tid = self._thread_tid()
        _SPAN_STACK.set(stack + (span,))
        span.start_ns = time.perf_counter_ns()

    def _close_span(self, span: Span) -> None:
        span.end_ns = time.perf_counter_ns()
        stack = _SPAN_STACK.get()
        if stack and stack[-1] is span:
            _SPAN_STACK.set(stack[:-1])
        elif span in stack:  # tolerate out-of-order exits
            idx = len(stack) - 1 - stack[::-1].index(span)
            _SPAN_STACK.set(stack[:idx] + stack[idx + 1 :])
        with self._lock:
            self.spans.append(span)

    def _record_event(self, event: TraceEvent) -> None:
        if event.tid is None:
            event.tid = self._thread_tid()
        if event.trace_id is None:
            span = self.current_span()
            if span is not None and span.trace_id is not None:
                event.trace_id = span.trace_id
                event.span_id = span.span_id
            else:
                ctx = current_trace_context()
                if ctx is not None:
                    event.trace_id = ctx.trace_id
                    event.span_id = ctx.span_id
        with self._lock:
            self.events.append(event)

    def _thread_tid(self) -> int:
        """Small stable lane number for the calling thread (main thread = 0)."""
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids))
        return tid


class NullTracer(Tracer):
    """The disabled tracer: every method is a no-op returning singletons.

    Instrumented code paths pay one attribute check (``tracer.enabled``)
    or one shared-singleton context manager — no allocation, no clock
    reads, no lock traffic.
    """

    enabled = False

    def __init__(self) -> None:  # deliberately skips Tracer.__init__
        self.epoch_ns = 0
        self.metrics = MetricsRegistry()
        self.spans = []
        self.events = []

    def span(
        self,
        name: str,
        category: str = "",
        tid: int | None = None,
        context: TraceContext | None = None,
        **args: Any,
    ):
        return _NULL_SPAN

    def instant(self, name: str, **args: Any) -> None:
        return None

    def counter(self, name: str, **series: float) -> None:
        return None

    def annotate(self, **args: Any) -> None:
        return None

    def current_span(self) -> Span | None:
        return None

    def reset(self) -> None:
        return None


_NULL_SPAN = _NullSpan()

#: The process-wide disabled tracer (what :func:`current_tracer` returns
#: when nothing is installed).
NULL_TRACER = NullTracer()

_install_lock = threading.Lock()
_installed: Tracer = NULL_TRACER


def current_tracer() -> Tracer:
    """The installed tracer, or :data:`NULL_TRACER` when tracing is off."""
    return _installed


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` process-wide; returns the previously installed one.

    ``None`` uninstalls (equivalent to installing :data:`NULL_TRACER`).
    """
    global _installed
    with _install_lock:
        previous = _installed
        _installed = tracer if tracer is not None else NULL_TRACER
    return previous


class _UseTracer:
    """Context manager installing a tracer for a scope (re-entrant)."""

    __slots__ = ("tracer", "_previous")

    def __init__(self, tracer: Tracer | None) -> None:
        self.tracer = tracer
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        if self.tracer is None:  # "no change" — keep whatever is installed
            self._previous = None
            return current_tracer()
        self._previous = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.tracer is not None and self._previous is not None:
            set_tracer(self._previous)


def use_tracer(tracer: Tracer | None) -> _UseTracer:
    """Install ``tracer`` for a ``with`` scope, restoring the previous one.

    ``use_tracer(None)`` is a cheap no-op scope (keeps the current tracer)
    so call sites can unconditionally write
    ``with use_tracer(maybe_tracer): ...``.
    """
    return _UseTracer(tracer)


def traced(name: str | None = None, category: str = "function", **static_args: Any):
    """Decorator tracing calls against whatever tracer is installed *then*.

    Unlike :meth:`Tracer.trace` this does not bind a tracer at decoration
    time: each call asks :func:`current_tracer`, so library functions can
    be decorated once and cost nothing until a tracer is installed.
    """

    def decorator(fn: Callable) -> Callable:
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*a: Any, **kw: Any):
            tracer = current_tracer()
            if not tracer.enabled:
                return fn(*a, **kw)
            with tracer.span(label, category=category, **static_args):
                return fn(*a, **kw)

        return wrapper

    return decorator
