"""Unified tracing and metrics for the reproduction (the observability spine).

The paper's argument rests on *measured* kernel behaviour — one fused
launch per solve (Section 3.4), SLM-priority placement (Section 3.5), the
Advisor metrics of Fig. 8 — and this package gives every layer one place
to report it:

* :mod:`repro.observability.tracer` — a span-based tracer modelled on
  Intel's unitrace/Level-Zero tracing: nested spans with integer-nanosecond
  timestamps (``time.perf_counter_ns``), instant events and Chrome-style
  counter series, a context-manager and decorator API, and a zero-overhead
  no-op path when tracing is disabled.
* :mod:`repro.observability.metrics` — a registry of counters, gauges and
  histograms (with percentile summaries) subsuming per-solver convergence
  telemetry.
* :mod:`repro.observability.export` — exporters: Chrome trace-event JSON
  (loadable in Perfetto / ``chrome://tracing``), a flat JSONL event log,
  and an ASCII summary table rendered through :mod:`repro.bench.report`.

Instrumented layers: :mod:`repro.sycl.queue` / :mod:`repro.sycl.executor`
(kernel-launch spans carrying :class:`~repro.sycl.executor.LaunchStats`),
:mod:`repro.core.dispatch` / :mod:`repro.core.launch` (the dispatch tuple),
:mod:`repro.core.solver` (per-iteration convergence events),
:mod:`repro.multi.distributed` (per-device lane spans) and
:mod:`repro.hw.timing` (modelled device time alongside host wall-clock).

Usage::

    from repro.observability import Tracer, use_tracer, write_chrome_trace

    tracer = Tracer()
    with use_tracer(tracer):
        factory.solve(matrix, b)          # all layers feed the tracer
    write_chrome_trace(tracer, "trace.json")

or from the command line::

    python -m repro trace stencil --trace-out trace.json
"""

from repro.observability.context import (
    TraceContext,
    current_trace_context,
    mint_context,
    new_span_id,
    new_trace_id,
    set_trace_context,
    use_trace_context,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    LogHistogram,
    MetricsRegistry,
)
from repro.observability.prometheus import render as render_prometheus
from repro.observability.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceEvent,
    Tracer,
    current_tracer,
    set_tracer,
    traced,
    use_tracer,
)
from repro.observability.export import (
    chrome_trace,
    chrome_trace_events,
    format_summary,
    summary_rows,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LogHistogram",
    "MetricsRegistry",
    "render_prometheus",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceContext",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "chrome_trace_events",
    "current_trace_context",
    "current_tracer",
    "format_summary",
    "mint_context",
    "new_span_id",
    "new_trace_id",
    "set_trace_context",
    "set_tracer",
    "summary_rows",
    "traced",
    "use_tracer",
    "use_trace_context",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
