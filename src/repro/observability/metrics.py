"""Counters, gauges and histograms with percentile summaries.

The metrics registry subsumes the scattered telemetry the layers used to
keep privately: kernel-launch counts (``repro.sycl``), per-solver
convergence statistics (iterations, converged systems, breakdowns), SLM
footprints, communication bytes. A :class:`MetricsRegistry` hangs off
every :class:`~repro.observability.tracer.Tracer`; exporters turn a
snapshot into JSONL records or an ASCII table.

All metric types are thread-safe (one small lock per instrument) and
cheap enough to update inside solver iteration loops.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterable

__all__ = ["Counter", "Gauge", "Histogram", "LogHistogram", "MetricsRegistry"]


class _Labeled:
    """Mixin giving an instrument per-label child instruments.

    ``metric.labels(backend="sycl")`` returns a child of the same type
    named ``metric{backend="sycl"}`` — the Prometheus child convention —
    created on first use and stored on the parent, so snapshots and the
    text exposition see every breakdown that was ever touched.
    """

    __slots__ = ()

    def labels(self, **labels: Any):
        if not labels:
            raise ValueError(f"metric {self.name!r}: labels() needs at least one label")
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            child = self._children.get(key)
            if child is None:
                rendered = ",".join(f'{k}="{v}"' for k, v in key)
                child = type(self)(f"{self.name}{{{rendered}}}")
                self._children[key] = child
        return child

    def children(self) -> list:
        """Every label child created so far (stable order)."""
        with self._lock:
            return [self._children[k] for k in sorted(self._children)]


class Counter(_Labeled):
    """A monotonically increasing count (launches, iterations, bytes)."""

    __slots__ = ("name", "_value", "_lock", "_children")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()
        self._children: dict[tuple, Counter] = {}

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current total."""
        return self._value

    def summary(self) -> dict[str, Any]:
        """Flat snapshot used by the exporters."""
        return {"value": self._value}


class Gauge(_Labeled):
    """A point-in-time value (modelled runtime, occupancy, queue depth)."""

    __slots__ = ("name", "_value", "_lock", "_children")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = math.nan
        self._lock = threading.Lock()
        self._children: dict[tuple, Gauge] = {}

    def set(self, value: float) -> None:
        """Record the latest value."""
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> float:
        """Shift the value by ``delta`` (an unset gauge counts as 0).

        Queue-depth style gauges are maintained by increments from several
        threads; doing the read-modify-write under the gauge's lock keeps
        them consistent. Returns the new value.
        """
        with self._lock:
            base = 0.0 if math.isnan(self._value) else self._value
            self._value = base + float(delta)
            return self._value

    @property
    def value(self) -> float:
        """Most recently set value (NaN before the first ``set``)."""
        return self._value

    def summary(self) -> dict[str, Any]:
        """Flat snapshot used by the exporters."""
        return {"value": self._value}


class Histogram:
    """A distribution of observations with exact percentile summaries.

    Keeps every observation (solves here record at most a few thousand
    samples); percentiles use the nearest-rank method on a sorted copy.
    """

    __slots__ = ("name", "_values", "_lock")

    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one sample."""
        with self._lock:
            self._values.append(float(value))

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of samples (per-system iteration counts etc.)."""
        with self._lock:
            self._values.extend(float(v) for v in values)

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return len(self._values)

    @property
    def total(self) -> float:
        """Sum of all samples."""
        return sum(self._values)

    @property
    def mean(self) -> float:
        """Arithmetic mean (NaN when empty)."""
        return self.total / len(self._values) if self._values else math.nan

    @property
    def min(self) -> float:
        """Smallest sample (NaN when empty)."""
        return min(self._values) if self._values else math.nan

    @property
    def max(self) -> float:
        """Largest sample (NaN when empty)."""
        return max(self._values) if self._values else math.nan

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile ``p`` in [0, 100] (NaN when empty)."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            if not self._values:
                return math.nan
            ordered = sorted(self._values)
        if p == 0.0:
            return ordered[0]
        rank = math.ceil(p / 100.0 * len(ordered))
        return ordered[rank - 1]

    def summary(self) -> dict[str, Any]:
        """count / mean / min / p50 / p90 / p99 / max snapshot."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
            "max": self.max,
        }


class LogHistogram:
    """A streaming latency histogram with fixed logarithmic buckets.

    The HDR-histogram idea at its smallest: observations land in
    geometric buckets ``[growth^i, growth^(i+1))``, so memory stays
    bounded no matter how many samples stream through and any quantile is
    answered with bounded *relative* error (one bucket width, i.e. a
    factor of ``growth``). The default growth of ``2**0.25`` ≈ 1.19 keeps
    every quantile estimate within ±19 % of the exact value — plenty for
    p50/p90/p99 service latencies — at ~4 buckets per octave.

    Unlike :class:`Histogram` (exact, keeps every sample) this type is
    **mergeable**: two histograms with the same growth add bucket-wise,
    which is what per-worker collection followed by a global rollup
    needs. Values ``<= 0`` are clamped into a dedicated underflow bucket
    reported as 0.

    **Exemplars** (OpenMetrics-style): ``observe(value, trace_id=...)``
    remembers the most recent trace id per bucket, so a p99 reading is
    one :meth:`exemplar_for` hop away from a concrete trace to pull up
    in the flight recorder or the trace viewer.
    """

    __slots__ = ("name", "growth", "_buckets", "_zero", "_count", "_sum",
                 "_min", "_max", "_exemplars", "_lock")

    kind = "log_histogram"

    #: Default bucket growth factor (4 buckets per factor-of-2).
    DEFAULT_GROWTH = 2.0 ** 0.25

    def __init__(self, name: str, growth: float = DEFAULT_GROWTH) -> None:
        if growth <= 1.0:
            raise ValueError(f"log histogram {name!r}: growth must be > 1, got {growth}")
        self.name = name
        self.growth = float(growth)
        self._buckets: dict[int, int] = {}
        self._zero = 0  # observations <= 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._exemplars: dict[int, tuple[str, float]] = {}
        self._lock = threading.Lock()

    def _index(self, value: float) -> int:
        return math.floor(math.log(value) / math.log(self.growth))

    def observe(self, value: float, trace_id: str | None = None) -> None:
        """Record one sample in O(1) time and O(buckets) total memory.

        ``trace_id`` attaches an exemplar: the bucket the sample lands in
        remembers this (latest) trace id, retrievable per percentile via
        :meth:`exemplar_for`.
        """
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            if value <= 0.0:
                self._zero += 1
            else:
                idx = self._index(value)
                self._buckets[idx] = self._buckets.get(idx, 0) + 1
                if trace_id is not None:
                    self._exemplars[idx] = (trace_id, value)

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of samples."""
        for value in values:
            self.observe(value)

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return self._count

    @property
    def total(self) -> float:
        """Sum of all samples (exact — tracked outside the buckets)."""
        return self._sum

    @property
    def mean(self) -> float:
        """Arithmetic mean (NaN when empty; exact, from the tracked sum)."""
        return self._sum / self._count if self._count else math.nan

    @property
    def min(self) -> float:
        """Smallest sample (NaN when empty; exact)."""
        return self._min if self._count else math.nan

    @property
    def max(self) -> float:
        """Largest sample (NaN when empty; exact)."""
        return self._max if self._count else math.nan

    def percentile(self, p: float) -> float:
        """Estimated percentile: the geometric midpoint of the bucket the
        nearest-rank sample landed in (relative error < one growth step).
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            if self._count == 0:
                return math.nan
            if p == 0.0:
                return self._min
            rank = math.ceil(p / 100.0 * self._count)
            seen = self._zero
            if rank <= seen:
                return 0.0
            for idx in sorted(self._buckets):
                seen += self._buckets[idx]
                if rank <= seen:
                    # clamp the estimate into the actually observed range
                    mid = self.growth ** (idx + 0.5)
                    return min(max(mid, self._min), self._max)
            return self._max

    def merge(self, other: "LogHistogram") -> None:
        """Add another histogram's buckets into this one (same growth)."""
        if abs(other.growth - self.growth) > 1e-12:
            raise ValueError(
                f"cannot merge log histograms with growth {self.growth} and "
                f"{other.growth}"
            )
        with other._lock:
            buckets = dict(other._buckets)
            zero, count = other._zero, other._count
            total, vmin, vmax = other._sum, other._min, other._max
            exemplars = dict(other._exemplars)
        with self._lock:
            for idx, n in buckets.items():
                self._buckets[idx] = self._buckets.get(idx, 0) + n
            self._zero += zero
            self._count += count
            self._sum += total
            self._min = min(self._min, vmin)
            self._max = max(self._max, vmax)
            for idx, exemplar in exemplars.items():
                self._exemplars.setdefault(idx, exemplar)

    def exemplars(self) -> list[dict[str, Any]]:
        """Every bucket exemplar: ``{upper_bound, trace_id, value}`` rows."""
        with self._lock:
            return [
                {
                    "upper_bound": self.growth ** (idx + 1),
                    "trace_id": trace_id,
                    "value": value,
                }
                for idx, (trace_id, value) in sorted(self._exemplars.items())
            ]

    def exemplar_for(self, p: float) -> tuple[str, float] | None:
        """The exemplar of the bucket holding percentile ``p``, if any.

        Falls back to the nearest *lower* bucket with an exemplar (not
        every bucket has seen a traced observation), so "show me a p99
        request" degrades gracefully rather than failing.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            if self._count == 0 or not self._exemplars or not self._buckets:
                return None
            rank = max(1, math.ceil(p / 100.0 * self._count))
            seen = self._zero
            if rank <= seen:
                return None  # percentile lands in the underflow bucket
            target = max(self._buckets)
            for idx in sorted(self._buckets):
                seen += self._buckets[idx]
                if rank <= seen:
                    target = idx
                    break
            candidates = [idx for idx in self._exemplars if idx <= target]
            if not candidates:
                return None
            return self._exemplars[max(candidates)]

    def bucket_bounds(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs for text exposition."""
        with self._lock:
            bounds = []
            cumulative = self._zero
            if self._zero:
                bounds.append((0.0, cumulative))
            for idx in sorted(self._buckets):
                cumulative += self._buckets[idx]
                bounds.append((self.growth ** (idx + 1), cumulative))
            return bounds

    def summary(self) -> dict[str, Any]:
        """count / mean / min / p50 / p90 / p99 / max snapshot."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
            "max": self.max,
        }


class MetricsRegistry:
    """Get-or-create registry of named instruments (thread-safe)."""

    def __init__(self) -> None:
        self._metrics: dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, cls: type):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is already registered as a "
                    f"{type(metric).__name__}, not a {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        return self._get_or_create(name, Histogram)

    def log_histogram(self, name: str) -> LogHistogram:
        """The streaming log-bucket histogram ``name`` (created on first use)."""
        return self._get_or_create(name, LogHistogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def instruments(self) -> list[Any]:
        """Every instrument, label children expanded after their parent."""
        with self._lock:
            metrics = list(self._metrics.values())
        out = []
        for metric in metrics:
            out.append(metric)
            if hasattr(metric, "children"):
                out.extend(metric.children())
        return out

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """``{name: {"kind": ..., **summary}}`` for every instrument,
        including per-label children (their name carries the labels)."""
        return {m.name: {"kind": m.kind, **m.summary()} for m in self.instruments()}

    def rows(self) -> list[dict[str, Any]]:
        """Uniform dict-rows for :func:`repro.bench.report.format_table`."""
        rows = []
        for name, snap in sorted(self.snapshot().items()):
            rows.append(
                {
                    "metric": name,
                    "kind": snap["kind"],
                    "count": snap.get("count"),
                    "value": snap.get("value", snap.get("mean")),
                    "p50": snap.get("p50"),
                    "p99": snap.get("p99"),
                    "max": snap.get("max"),
                }
            )
        return rows
