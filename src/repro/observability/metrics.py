"""Counters, gauges and histograms with percentile summaries.

The metrics registry subsumes the scattered telemetry the layers used to
keep privately: kernel-launch counts (``repro.sycl``), per-solver
convergence statistics (iterations, converged systems, breakdowns), SLM
footprints, communication bytes. A :class:`MetricsRegistry` hangs off
every :class:`~repro.observability.tracer.Tracer`; exporters turn a
snapshot into JSONL records or an ASCII table.

All metric types are thread-safe (one small lock per instrument) and
cheap enough to update inside solver iteration loops.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterable

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count (launches, iterations, bytes)."""

    __slots__ = ("name", "_value", "_lock")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current total."""
        return self._value

    def summary(self) -> dict[str, Any]:
        """Flat snapshot used by the exporters."""
        return {"value": self._value}


class Gauge:
    """A point-in-time value (modelled runtime, occupancy, queue depth)."""

    __slots__ = ("name", "_value", "_lock")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = math.nan
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the latest value."""
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> float:
        """Shift the value by ``delta`` (an unset gauge counts as 0).

        Queue-depth style gauges are maintained by increments from several
        threads; doing the read-modify-write under the gauge's lock keeps
        them consistent. Returns the new value.
        """
        with self._lock:
            base = 0.0 if math.isnan(self._value) else self._value
            self._value = base + float(delta)
            return self._value

    @property
    def value(self) -> float:
        """Most recently set value (NaN before the first ``set``)."""
        return self._value

    def summary(self) -> dict[str, Any]:
        """Flat snapshot used by the exporters."""
        return {"value": self._value}


class Histogram:
    """A distribution of observations with exact percentile summaries.

    Keeps every observation (solves here record at most a few thousand
    samples); percentiles use the nearest-rank method on a sorted copy.
    """

    __slots__ = ("name", "_values", "_lock")

    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one sample."""
        with self._lock:
            self._values.append(float(value))

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of samples (per-system iteration counts etc.)."""
        with self._lock:
            self._values.extend(float(v) for v in values)

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return len(self._values)

    @property
    def total(self) -> float:
        """Sum of all samples."""
        return sum(self._values)

    @property
    def mean(self) -> float:
        """Arithmetic mean (NaN when empty)."""
        return self.total / len(self._values) if self._values else math.nan

    @property
    def min(self) -> float:
        """Smallest sample (NaN when empty)."""
        return min(self._values) if self._values else math.nan

    @property
    def max(self) -> float:
        """Largest sample (NaN when empty)."""
        return max(self._values) if self._values else math.nan

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile ``p`` in [0, 100] (NaN when empty)."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            if not self._values:
                return math.nan
            ordered = sorted(self._values)
        if p == 0.0:
            return ordered[0]
        rank = math.ceil(p / 100.0 * len(ordered))
        return ordered[rank - 1]

    def summary(self) -> dict[str, Any]:
        """count / mean / min / p50 / p90 / p99 / max snapshot."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
            "max": self.max,
        }


class MetricsRegistry:
    """Get-or-create registry of named instruments (thread-safe)."""

    def __init__(self) -> None:
        self._metrics: dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, cls: type):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is already registered as a "
                    f"{type(metric).__name__}, not a {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        return self._get_or_create(name, Histogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """``{name: {"kind": ..., **summary}}`` for every instrument."""
        with self._lock:
            metrics = list(self._metrics.values())
        return {m.name: {"kind": m.kind, **m.summary()} for m in metrics}

    def rows(self) -> list[dict[str, Any]]:
        """Uniform dict-rows for :func:`repro.bench.report.format_table`."""
        rows = []
        for name, snap in sorted(self.snapshot().items()):
            rows.append(
                {
                    "metric": name,
                    "kind": snap["kind"],
                    "count": snap.get("count"),
                    "value": snap.get("value", snap.get("mean")),
                    "p50": snap.get("p50"),
                    "p99": snap.get("p99"),
                    "max": snap.get("max"),
                }
            )
        return rows
