"""Prometheus-style text exposition of a metrics registry.

Renders a :class:`~repro.observability.metrics.MetricsRegistry` snapshot
in the Prometheus text format (version 0.0.4), so the serve demo and any
long-running host can expose the same instruments a real deployment
would scrape:

* :class:`~repro.observability.metrics.Counter` → ``counter`` family
  (label children become labelled samples of the parent family);
* :class:`~repro.observability.metrics.Gauge` → ``gauge`` family (NaN
  gauges — never set — are skipped);
* :class:`~repro.observability.metrics.Histogram` (exact) → ``summary``
  with p50/p90/p99 quantile samples plus ``_sum``/``_count``;
* :class:`~repro.observability.metrics.LogHistogram` → classic
  ``histogram`` with cumulative ``_bucket{le="..."}`` samples from the
  log-bucket bounds, a ``+Inf`` bucket, and ``_sum``/``_count``.

Metric names are sanitized to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``); dots become underscores.
"""

from __future__ import annotations

import math
import re

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    LogHistogram,
    MetricsRegistry,
)

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_LABELS = re.compile(r"^(?P<name>[^{]+)\{(?P<labels>.*)\}$")


def sanitize_name(name: str) -> str:
    """A legal Prometheus metric name for an internal instrument name."""
    clean = _NAME_BAD.sub("_", name)
    if not clean or clean[0].isdigit():
        clean = "_" + clean
    return clean


def _split_labels(name: str) -> tuple[str, str]:
    """``("family", 'k="v"')`` from an instrument name with label braces."""
    match = _LABELS.match(name)
    if match:
        return match.group("name"), match.group("labels")
    return name, ""


def _fmt(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _sample(family: str, labels: str, value: float, suffix: str = "") -> str:
    label_part = f"{{{labels}}}" if labels else ""
    return f"{family}{suffix}{label_part} {_fmt(value)}"


def _histogram_lines(family: str, labels: str, hist: Histogram) -> list[str]:
    lines = []
    base = labels + ("," if labels else "")
    for q in (0.5, 0.9, 0.99):
        lines.append(
            _sample(family, f'{base}quantile="{q}"', hist.percentile(q * 100.0))
        )
    lines.append(_sample(family, labels, hist.total, "_sum"))
    lines.append(_sample(family, labels, float(hist.count), "_count"))
    return lines


def _log_histogram_lines(family: str, labels: str, hist: LogHistogram) -> list[str]:
    lines = []
    base = labels + ("," if labels else "")
    for bound, cumulative in hist.bucket_bounds():
        lines.append(
            _sample(family, f'{base}le="{_fmt(bound)}"', float(cumulative), "_bucket")
        )
    lines.append(
        _sample(family, f'{base}le="+Inf"', float(hist.count), "_bucket")
    )
    lines.append(_sample(family, labels, hist.total, "_sum"))
    lines.append(_sample(family, labels, float(hist.count), "_count"))
    return lines


_PROM_TYPE = {
    Counter: "counter",
    Gauge: "gauge",
    Histogram: "summary",
    LogHistogram: "histogram",
}


def render(registry: MetricsRegistry) -> str:
    """The whole registry in Prometheus text format (one scrape body)."""
    lines: list[str] = []
    seen_families: set[str] = set()
    for metric in registry.instruments():
        raw_family, labels = _split_labels(metric.name)
        family = sanitize_name(raw_family)
        prom_type = _PROM_TYPE[type(metric)]
        if family not in seen_families:
            seen_families.add(family)
            lines.append(f"# TYPE {family} {prom_type}")
        if isinstance(metric, Counter):
            lines.append(_sample(family, labels, metric.value))
        elif isinstance(metric, Gauge):
            if not math.isnan(metric.value):
                lines.append(_sample(family, labels, metric.value))
        elif isinstance(metric, LogHistogram):
            lines.extend(_log_histogram_lines(family, labels, metric))
        else:
            lines.extend(_histogram_lines(family, labels, metric))
    return "\n".join(lines) + "\n" if lines else ""
