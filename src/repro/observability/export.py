"""Trace exporters: Chrome trace-event JSON, JSONL, ASCII summary.

The Chrome trace-event format (the JSON Perfetto and ``chrome://tracing``
load) is the lingua franca of GPU tracing tools — Intel's unitrace emits
it for Level-Zero timelines, and the paper's profiling story (VTune /
Advisor) maps onto the same span/counter vocabulary. Spans export as
complete events (``ph: "X"``, microsecond ``ts``/``dur``), instants as
``ph: "i"`` and counter samples as ``ph: "C"`` tracks.

:func:`validate_chrome_trace` is the schema check the smoke script and the
tests share — it loads a trace file back and asserts the invariants a
viewer depends on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.observability.tracer import TraceEvent, Tracer

__all__ = [
    "chrome_trace_events",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "summary_rows",
    "format_summary",
    "validate_chrome_trace",
]

_PID = 1  # single simulated process


def _us(tracer: Tracer, ts_ns: int) -> float:
    """Nanosecond timestamp -> microseconds relative to the tracer epoch."""
    return (ts_ns - tracer.epoch_ns) / 1e3


def _jsonable(value: Any) -> Any:
    """Coerce span/event args to JSON-serializable values."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    try:  # numpy scalars expose item()
        return value.item()
    except AttributeError:
        return repr(value)


def chrome_trace_events(tracer: Tracer, process_name: str = "repro") -> list[dict]:
    """The ``traceEvents`` array for one tracer (metadata + records)."""
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for span in tracer.spans:
        args = _jsonable(span.args)
        # request attribution rides in args: Perfetto surfaces args in the
        # span detail pane, and the ids survive a JSON round-trip unchanged
        if span.trace_id is not None:
            args["trace_id"] = span.trace_id
        if span.span_id is not None:
            args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_span_id"] = span.parent_id
        if span.links:
            args["links"] = _jsonable(span.links)
        events.append(
            {
                "name": span.name,
                "cat": span.category or "default",
                "ph": "X",
                "ts": _us(tracer, span.start_ns),
                "dur": span.duration_ns / 1e3,
                "pid": _PID,
                "tid": span.tid if span.tid is not None else 0,
                "args": args,
            }
        )
    for event in tracer.events:
        if event.kind == TraceEvent.COUNTER:
            events.append(
                {
                    "name": event.name,
                    "cat": "counter",
                    "ph": "C",
                    "ts": _us(tracer, event.ts_ns),
                    "pid": _PID,
                    "tid": event.tid,
                    "args": _jsonable(event.args),
                }
            )
        else:
            events.append(
                {
                    "name": event.name,
                    "cat": "instant",
                    "ph": "i",
                    "s": "t",
                    "ts": _us(tracer, event.ts_ns),
                    "pid": _PID,
                    "tid": event.tid,
                    "args": _jsonable(event.args),
                }
            )
    return events


def chrome_trace(tracer: Tracer, process_name: str = "repro") -> dict:
    """The full Chrome trace-event JSON object (``traceEvents`` + metadata)."""
    return {
        "traceEvents": chrome_trace_events(tracer, process_name),
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.observability",
            "metrics": _jsonable(tracer.metrics.snapshot()),
        },
    }


def write_chrome_trace(
    tracer: Tracer, path: str | Path, process_name: str = "repro"
) -> Path:
    """Write the Chrome trace JSON to ``path`` and return it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(tracer, process_name), indent=1) + "\n")
    return path


def jsonl_records(tracer: Tracer) -> list[dict]:
    """Flat event-log records: one dict per span/instant/counter/metric."""
    records: list[dict] = []
    for span in tracer.spans:
        records.append(
            {
                "type": "span",
                "name": span.name,
                "cat": span.category or "default",
                "ts_ns": span.start_ns - tracer.epoch_ns,
                "dur_ns": span.duration_ns,
                "tid": span.tid if span.tid is not None else 0,
                "parent": span.parent.name if span.parent is not None else None,
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "parent_span_id": span.parent_id,
                "links": _jsonable(span.links),
                "args": _jsonable(span.args),
            }
        )
    for event in tracer.events:
        records.append(
            {
                "type": event.kind,
                "name": event.name,
                "ts_ns": event.ts_ns - tracer.epoch_ns,
                "tid": event.tid,
                "trace_id": event.trace_id,
                "span_id": event.span_id,
                "args": _jsonable(event.args),
            }
        )
    for name, snap in sorted(tracer.metrics.snapshot().items()):
        records.append({"type": "metric", "name": name, **_jsonable(snap)})
    return records


def write_jsonl(tracer: Tracer, path: str | Path) -> Path:
    """Write the flat JSONL event log to ``path`` and return it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for record in jsonl_records(tracer):
            fh.write(json.dumps(record) + "\n")
    return path


def summary_rows(tracer: Tracer) -> list[dict]:
    """Per-span-name aggregation (count, total/mean/max milliseconds)."""
    groups: dict[tuple[str, str], list[int]] = {}
    for span in tracer.spans:
        groups.setdefault((span.category or "default", span.name), []).append(
            span.duration_ns
        )
    rows = []
    for (category, name), durations in sorted(groups.items()):
        total = sum(durations)
        rows.append(
            {
                "category": category,
                "span": name,
                "count": len(durations),
                "total_ms": total / 1e6,
                "mean_ms": total / len(durations) / 1e6,
                "max_ms": max(durations) / 1e6,
            }
        )
    return rows


def format_summary(tracer: Tracer, title: str = "trace summary") -> str:
    """ASCII tables (spans + metrics) via :mod:`repro.bench.report`."""
    from repro.bench.report import format_table

    parts = [format_table(summary_rows(tracer), title)]
    metric_rows = tracer.metrics.rows()
    if metric_rows:
        parts.append("")
        parts.append(format_table(metric_rows, "metrics"))
    return "\n".join(parts)


def validate_chrome_trace(
    path: str | Path,
    require_kernel_spans: bool = True,
    require_counters: bool = True,
) -> dict[str, int]:
    """Load a trace file back and check the Chrome trace-event invariants.

    Raises ``ValueError`` with a diagnostic on any schema violation;
    returns counts ``{"events", "spans", "kernel_spans", "counters",
    "instants"}`` on success. The smoke script and the integration tests
    both go through here so "valid trace" means one thing.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError(f"{path}: missing the 'traceEvents' array")
    events = payload["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError(f"{path}: 'traceEvents' must be a non-empty array")

    counts = {"events": 0, "spans": 0, "kernel_spans": 0, "counters": 0, "instants": 0}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"{path}: traceEvents[{i}] is not an object")
        for key in ("name", "ph", "pid"):
            if key not in event:
                raise ValueError(f"{path}: traceEvents[{i}] lacks {key!r}")
        ph = event["ph"]
        if ph == "M":
            continue
        if "ts" not in event:
            raise ValueError(f"{path}: traceEvents[{i}] ({ph}) lacks 'ts'")
        counts["events"] += 1
        if ph == "X":
            if "dur" not in event or event["dur"] < 0:
                raise ValueError(
                    f"{path}: span {event['name']!r} lacks a non-negative 'dur'"
                )
            counts["spans"] += 1
            if event.get("cat") == "kernel":
                counts["kernel_spans"] += 1
                args = event.get("args", {})
                missing = [
                    k
                    for k in (
                        "num_groups",
                        "work_group_size",
                        "sub_group_size",
                        "slm_bytes_per_group",
                    )
                    if k not in args
                ]
                if missing:
                    raise ValueError(
                        f"{path}: kernel span {event['name']!r} lacks "
                        f"LaunchStats args {missing}"
                    )
        elif ph == "C":
            counts["counters"] += 1
        elif ph == "i":
            counts["instants"] += 1

    if require_kernel_spans and counts["kernel_spans"] == 0:
        raise ValueError(f"{path}: no kernel-launch spans (cat='kernel') found")
    if require_counters and counts["counters"] == 0:
        raise ValueError(f"{path}: no counter events (ph='C') found")
    return counts
