"""Request-scoped trace context: the identity a solve carries end to end.

A :class:`TraceContext` is minted once per :class:`~repro.serve.request.
SolveRequest` (or by any other entry point that wants request-scoped
attribution) and rides along wherever the request goes — through the
micro-batcher, across the worker pool, into kernel launches. It is the
W3C-traceparent trio reduced to what the simulator needs:

``trace_id``
    Identifies the whole request journey; every span and event that can be
    attributed to exactly one request carries it.
``span_id``
    The *root* span id of the journey — what child spans and batch fan-in
    links point back at.
``sampled``
    The head-sampling decision. Routine telemetry for unsampled requests
    is dropped at the source; *critical* telemetry (errors, fallbacks,
    tail latencies — see :mod:`repro.telemetry.events`) is always kept.

Propagation is ambient via a :class:`contextvars.ContextVar`, the same
mechanism the tracer uses for its open-span stack, so the context flows
correctly across nested calls, ``contextvars.copy_context()`` hand-offs
into worker threads, and generator/coroutine suspension — places where
``threading.local`` silently attributes to the wrong request.
"""

from __future__ import annotations

import contextvars
import os
from dataclasses import dataclass, replace

__all__ = [
    "TraceContext",
    "mint_context",
    "new_trace_id",
    "new_span_id",
    "new_request_id",
    "current_trace_context",
    "set_trace_context",
    "use_trace_context",
]


def new_trace_id() -> str:
    """A fresh 64-bit trace id (16 hex chars)."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id (16 hex chars)."""
    return os.urandom(8).hex()


def new_request_id() -> str:
    """A fresh human-scannable request id (``req-`` + 8 hex chars)."""
    return f"req-{os.urandom(4).hex()}"


@dataclass(frozen=True)
class TraceContext:
    """Immutable identity of one traced request journey."""

    trace_id: str
    span_id: str
    sampled: bool = True
    request_id: str = ""

    def child(self) -> "TraceContext":
        """The same journey under a fresh span id (manual child contexts)."""
        return replace(self, span_id=new_span_id())

    def with_sampled(self, sampled: bool) -> "TraceContext":
        """A copy with the head-sampling decision overridden."""
        return replace(self, sampled=sampled)

    def to_dict(self) -> dict:
        """Wire form (JSONL export, cross-process propagation headers)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "sampled": self.sampled,
            "request_id": self.request_id,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceContext":
        """Rebuild a context from its :meth:`to_dict` wire form."""
        return cls(
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            sampled=bool(data.get("sampled", True)),
            request_id=data.get("request_id", ""),
        )

    def __repr__(self) -> str:
        flag = "sampled" if self.sampled else "unsampled"
        return f"TraceContext({self.trace_id}/{self.span_id}, {flag}, {self.request_id!r})"


def mint_context(sampled: bool = True, request_id: str | None = None) -> TraceContext:
    """Mint a fresh context: new trace id, new root span id, new request id."""
    return TraceContext(
        trace_id=new_trace_id(),
        span_id=new_span_id(),
        sampled=sampled,
        request_id=request_id if request_id is not None else new_request_id(),
    )


_CURRENT: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_trace_context", default=None
)


def current_trace_context() -> TraceContext | None:
    """The ambient trace context of the calling execution context, if any."""
    return _CURRENT.get()


def set_trace_context(ctx: TraceContext | None) -> TraceContext | None:
    """Install ``ctx`` as the ambient context; returns the previous one.

    Prefer :func:`use_trace_context` — the scoped form restores correctly
    on exceptions and composes with nested scopes.
    """
    previous = _CURRENT.get()
    _CURRENT.set(ctx)
    return previous


class use_trace_context:
    """Scope a trace context: ``with use_trace_context(ctx): ...``.

    ``use_trace_context(None)`` is a cheap no-op scope (keeps the ambient
    context) so call sites can write it unconditionally.
    """

    __slots__ = ("ctx", "_token")

    def __init__(self, ctx: TraceContext | None) -> None:
        self.ctx = ctx
        self._token: contextvars.Token | None = None

    def __enter__(self) -> TraceContext | None:
        if self.ctx is None:
            return _CURRENT.get()
        self._token = _CURRENT.set(self.ctx)
        return self.ctx

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            _CURRENT.reset(self._token)
