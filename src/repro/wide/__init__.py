"""repro.wide — NumPy-vectorized lockstep execution backend.

The third execution backend (after the faithful SYCL interpreter and the
CUDA-dialect stream): one Python generator per *work-group* instead of
one per work-item, with the lane axis materialized as NumPy arrays and
every :class:`~repro.sycl.group.SyncOp` collective evaluated as a
vectorized array operation. Runs the same kernel sources in
:mod:`repro.kernels` unmodified — see ``docs/wide_backend.md``.
"""

from repro.wide.executor import (
    WideItem,
    evaluate_wide_collective,
    run_work_group_wide,
    wide_launch,
)
from repro.wide.lanes import (
    LaneArray,
    LaneIndex,
    LaneMask,
    WideArray,
    wide_float,
    wide_int,
    wide_range,
)
from repro.wide.lower import lower_kernel
from repro.wide.queue import WideQueue

__all__ = [
    "LaneArray",
    "LaneIndex",
    "LaneMask",
    "WideArray",
    "WideItem",
    "WideQueue",
    "evaluate_wide_collective",
    "lower_kernel",
    "run_work_group_wide",
    "wide_launch",
    "wide_float",
    "wide_int",
    "wide_range",
]
