"""Kernel lowering: run unmodified ``repro.kernels`` sources in lockstep.

The faithful interpreter executes kernel generator functions verbatim.
The wide backend executes the *same* code objects, but with three names
re-bound in a cloned globals namespace:

* ``range`` → :func:`repro.wide.lanes.wide_range`
* ``int``   → :func:`repro.wide.lanes.wide_int`
* ``float`` → :func:`repro.wide.lanes.wide_float`

and with every helper generator the kernel calls (``group_dot``,
``spmv_csr_item_rows``, …) recursively replaced by its own lowered
clone. Cloning via :class:`types.FunctionType` keeps the original
functions untouched — the faithful and wide backends share one source of
truth, which is the whole point of the seam: a divergence between them
is a backend bug, never a transcription bug.

Only functions defined under ``repro.kernels`` are lowered; runtime
helpers (``kernel_phase``, ``NDItem`` methods, NumPy) pass through. The
CUDA reduction structure (``warp_reduce_sum``/``block_reduce_cuda``)
performs *non-uniform* guarded writes (lane 0 stores its warp's partial,
a value other lanes do not hold), which violates the lockstep
uniform-guard contract — its lowered clone raises
:class:`~repro.exceptions.WideBackendError` instead of computing
garbage; use the ``"group"`` reduction style on the wide backend.
"""

from __future__ import annotations

import types
from typing import Any, Callable

from repro.exceptions import WideBackendError
from repro.wide.lanes import wide_float, wide_int, wide_range

_WIDE_BUILTINS = {"range": wide_range, "int": wide_int, "float": wide_float}

#: Names whose execution structure cannot be expressed in lockstep.
_UNSUPPORTED = {
    "warp_reduce_sum": "the CUDA warp-shuffle butterfly",
    "block_reduce_cuda": "the CUDA shared-memory block reduction",
}

_CACHE: dict[Callable[..., Any], Callable[..., Any]] = {}


def _unsupported_stub(name: str, why: str) -> Callable[..., Any]:
    def stub(*_args: Any, **_kwargs: Any):
        raise WideBackendError(
            f"{name} ({why}) performs non-uniform guarded writes and cannot "
            f"run on the lockstep wide backend; use the 'group' reduction "
            f"style instead"
        )
        yield  # pragma: no cover - marks the stub as a generator function

    stub.__name__ = name
    return stub


def lower_kernel(fn: Callable[..., Any]) -> Callable[..., Any]:
    """The lockstep clone of one kernel (or kernel helper) function.

    Clones are cached per original function, so repeated launches pay
    the lowering cost once per process.
    """
    cached = _CACHE.get(fn)
    if cached is not None:
        return cached
    if fn.__name__ in _UNSUPPORTED:
        stub = _unsupported_stub(fn.__name__, _UNSUPPORTED[fn.__name__])
        _CACHE[fn] = stub
        return stub

    # Register the clone before recursing: a module's globals contain the
    # module's own functions (including ``fn`` itself), so self-reference
    # must resolve through the cache, not recurse forever. Mutating ``g``
    # afterwards is safe — the function holds the dict by reference.
    g = dict(fn.__globals__)
    clone = types.FunctionType(
        fn.__code__, g, fn.__name__, fn.__defaults__, fn.__closure__
    )
    clone.__kwdefaults__ = fn.__kwdefaults__
    clone.__doc__ = fn.__doc__
    _CACHE[fn] = clone

    g.update(_WIDE_BUILTINS)
    for name, value in fn.__globals__.items():
        if isinstance(value, types.FunctionType) and (
            value.__module__ or ""
        ).startswith("repro.kernels"):
            g[name] = lower_kernel(value)
    return clone
