"""Lockstep execution of ND-range kernels over a NumPy lane axis.

Where :func:`repro.sycl.executor.launch` runs one Python generator per
work-item and assembles collectives once every member of a scope has
arrived, :func:`wide_launch` runs ONE generator per work-group: every
per-item scalar is a length-``work_group_size`` lane array, barriers are
no-ops (lockstep order *is* barrier order — all lanes reach each program
point together by construction), and each collective of the
:class:`~repro.sycl.group.SyncOp` vocabulary maps to a vectorized NumPy
equivalent:

====================  =====================================================
``reduce`` (group)    axis reduction over the lane axis → scalar
``reduce`` (sg)       ``(num_sub_groups, sg_size)`` reshape, axis-1 reduce
``broadcast``         lane/column pick, repeated back over the scope
``*_scan``            ``np.*.accumulate`` along the lane axis
``shuffle``           per-sub-group fancy indexing (own value off-range)
``any`` / ``all``     ``np.any`` / ``np.all`` over the lane axis
====================  =====================================================

Group-scope reductions return plain Python scalars so the kernels'
group-uniform control flow (``while res2 > threshold2``) stays ordinary
scalar control flow; a single-sub-group reduction does the same, which
is the case the small-matrix solver path relies on.

When a sanitizer or profiler is installed the launch transparently falls
back to the faithful interpreter: shadow-memory, convergence and counter
checking are defined per work-item and have no meaning over a collapsed
lane axis (``docs/wide_backend.md`` discusses exactly which checks do
not apply and why the fallback is the honest answer).
"""

from __future__ import annotations

import inspect
from types import SimpleNamespace
from typing import Any, Callable

import numpy as np

from repro.exceptions import KernelFaultError
from repro.observability.tracer import current_tracer
from repro.profile.context import current_profiler
from repro.sanitize.context import current_sanitizer
from repro.sycl.device import SyclDevice
from repro.sycl.executor import LaunchStats, launch
from repro.sycl.group import GROUP, SUB_GROUP, NDItem, SyncOp
from repro.sycl.memory import (
    LocalSpec,
    allocate_local,
    check_local_capacity,
    poison_local,
    total_local_bytes,
)
from repro.sycl.ndrange import NDRange
from repro.wide.lanes import LaneArray, WideArray, lane_array
from repro.wide.lower import lower_kernel

_REDUCERS = {"sum": np.sum, "prod": np.prod, "max": np.max, "min": np.min}
_ACCUMULATORS = {
    "sum": np.add.accumulate,
    "prod": np.multiply.accumulate,
    "max": np.maximum.accumulate,
    "min": np.minimum.accumulate,
}
_IDENTITY = {"sum": 0.0, "prod": 1.0, "max": -np.inf, "min": np.inf}


class WideItem(NDItem):
    """The work-group-wide ``nd_item``: ids carry the whole lane axis.

    ``group_id`` stays a plain integer (one work-group per generator);
    ``local_id``/``lane``/``sub_group_id``/``global_id`` are
    :class:`~repro.wide.lanes.LaneArray` vectors whose comparisons
    produce truthy lane masks, so unmodified kernel sources index and
    guard with them exactly as they do per-item. The SyncOp factory
    methods are inherited from :class:`~repro.sycl.group.NDItem`
    unchanged — the op vocabulary is the backend seam.
    """

    def __init__(self, ndrange: NDRange, group_id: int) -> None:
        wg = ndrange.local_size
        lids = np.arange(wg, dtype=np.int64)
        self.ndrange = ndrange
        self.group_id = group_id
        self.global_id: LaneArray = lane_array(group_id * wg + lids)
        self.local_id: LaneArray = lane_array(lids)
        self.sub_group_id: LaneArray = lane_array(lids // ndrange.sub_group_size)
        self.lane: LaneArray = lane_array(lids % ndrange.sub_group_size)

    def any_of_group(self, predicate: Any) -> SyncOp:
        """Lane-axis ``any``: keep the raw per-lane predicate vector."""
        return SyncOp("any", GROUP, predicate, ())

    def all_of_group(self, predicate: Any) -> SyncOp:
        """Lane-axis ``all``: keep the raw per-lane predicate vector."""
        return SyncOp("all", GROUP, predicate, ())


def _as_lanes(value: Any, width: int) -> np.ndarray:
    """Materialize one contribution per lane (scalars are uniform)."""
    arr = np.asarray(value)
    if arr.ndim == 0:
        return np.full(width, arr[()])
    if arr.shape[0] != width:
        raise KernelFaultError(
            f"collective operand has {arr.shape[0]} lanes; the scope has {width}"
        )
    return np.asarray(arr)


def evaluate_wide_collective(op: SyncOp, ndrange: NDRange) -> Any:
    """Vectorized result of one assembled collective (all lanes at once).

    Returns what the kernel's ``yield`` expression evaluates to: a plain
    scalar for group-scope reductions/broadcasts/predicates (and for
    single-sub-group reductions), a lane-axis array otherwise.
    """
    wg = ndrange.local_size
    sgs = ndrange.sub_group_size
    nsg = ndrange.sub_groups_per_group
    kind = op.kind
    if kind == "barrier":
        return None

    if op.scope == GROUP:
        v = _as_lanes(op.value, wg)
        if kind == "reduce":
            return _REDUCERS[op.params[0]](v).item()
        if kind == "broadcast":
            return v[op.params[0]].item()
        if kind in ("inclusive_scan", "exclusive_scan"):
            acc = _ACCUMULATORS[op.params[0]](np.asarray(v, dtype=np.float64))
            if kind == "exclusive_scan":
                shifted = np.empty_like(acc)
                shifted[0] = _IDENTITY[op.params[0]]
                shifted[1:] = acc[:-1]
                return shifted
            return acc
        if kind == "any":
            return bool(np.any(v))
        if kind == "all":
            return bool(np.all(v))
        raise KernelFaultError(f"unknown group collective kind {kind!r}")

    if op.scope != SUB_GROUP:
        raise KernelFaultError(f"unknown collective scope {op.scope!r}")
    v = _as_lanes(op.value, wg).reshape(nsg, sgs)
    if kind == "reduce":
        per_sg = _REDUCERS[op.params[0]](v, axis=1)
        if nsg == 1:
            return per_sg[0].item()
        return np.repeat(per_sg, sgs)
    if kind == "broadcast":
        col = v[:, op.params[0]]
        if nsg == 1:
            return col[0].item()
        return np.repeat(col, sgs)
    if kind == "shuffle":
        direction, delta = op.params
        lanes = np.arange(sgs)
        if direction == "down":
            src = lanes + delta
        elif direction == "up":
            src = lanes - delta
        else:  # xor
            src = lanes ^ delta
        result = v.copy()
        valid = (src >= 0) & (src < sgs)
        result[:, valid] = v[:, src[valid]]
        return result.reshape(wg)
    raise KernelFaultError(f"unknown sub-group collective kind {kind!r}")


def run_work_group_wide(
    ndrange: NDRange,
    group_id: int,
    kernel: Callable[..., Any],
    local: Any,
    args: tuple,
    stats: LaunchStats | None = None,
) -> None:
    """Execute one work-group as a single lockstep generator.

    ``kernel`` must already be lowered (:func:`repro.wide.lower.lower_kernel`)
    and ``local``/``args`` already lane-wrapped.
    """
    item = WideItem(ndrange, group_id)
    produced = kernel(item, local, *args)
    if not inspect.isgenerator(produced):
        return
    nsg = ndrange.sub_groups_per_group
    try:
        op = produced.send(None)
        while True:
            if not isinstance(op, SyncOp):
                raise KernelFaultError(
                    f"work-group {group_id} yielded {op!r}; kernels must only "
                    f"yield SyncOp objects (barrier / group functions)"
                )
            result = evaluate_wide_collective(op, ndrange)
            if stats is not None:
                # one assembly per scope instance, matching the faithful
                # executor's accounting (each sub-group assembles its own)
                count = nsg if op.scope == SUB_GROUP else 1
                for _ in range(count):
                    stats.record_collective(op.kind, op.scope)
            op = produced.send(result)
    except StopIteration:
        pass


def wide_launch(
    device: SyclDevice,
    ndrange: NDRange,
    kernel: Callable[..., Any],
    args: tuple = (),
    local_specs: list[LocalSpec] | None = None,
    poison_slm: bool = False,
    name: str | None = None,
) -> LaunchStats:
    """Validate and execute a full ND-range launch in lockstep.

    Same contract as :func:`repro.sycl.executor.launch` — identical size
    and SLM validation, identical :class:`LaunchStats` shape — but the
    per-work-item interpreter is replaced by lane-axis array execution.
    With a sanitizer or profiler installed, falls back to the faithful
    executor so per-item checking semantics are preserved.
    """
    if current_sanitizer() is not None or current_profiler() is not None:
        return launch(
            device,
            ndrange,
            kernel,
            args=args,
            local_specs=local_specs,
            poison_slm=poison_slm,
            name=name,
        )
    device.validate_work_group_size(ndrange.local_size)
    device.validate_sub_group_size(ndrange.sub_group_size)
    specs = list(local_specs or [])
    check_local_capacity(specs, device.slm_bytes_per_cu, device.name)

    stats = LaunchStats(
        num_groups=ndrange.num_groups,
        local_size=ndrange.local_size,
        sub_group_size=ndrange.sub_group_size,
        slm_bytes_per_group=total_local_bytes(specs),
    )
    lowered = lower_kernel(kernel)
    wrapped_args = tuple(
        WideArray(a) if isinstance(a, np.ndarray) else a for a in args
    )
    for group_id in range(ndrange.num_groups):
        raw = allocate_local(specs)
        if poison_slm:
            poison_local(raw)
        local = SimpleNamespace(
            **{key: WideArray(value) for key, value in vars(raw).items()}
        )
        run_work_group_wide(ndrange, group_id, lowered, local, wrapped_args, stats)

    tracer = current_tracer()
    if tracer.enabled:
        metrics = tracer.metrics
        metrics.counter("sycl.launches").inc()
        metrics.counter("wide.launches").inc()
        metrics.counter("sycl.work_groups").inc(stats.num_groups)
        metrics.histogram("sycl.slm_bytes_per_group").observe(
            float(stats.slm_bytes_per_group)
        )
        for key, count in stats.collective_counts.items():
            metrics.counter(f"sycl.collectives.{key}").inc(count)
        tracer.annotate(device=device.name, backend="wide")
    return stats
