"""The lane axis: array types that let unmodified kernels run in lockstep.

The wide backend executes one work-group with a *single* Python
generator instead of one generator per work-item. Every per-work-item
scalar of the faithful interpreter becomes a length-``work_group_size``
NumPy array — the *lane axis* — and the kernel sources in
:mod:`repro.kernels` run over it unchanged because the three builtins
they use for control flow and scalarization are shadowed by the lowering
pass (:mod:`repro.wide.lower`):

* ``range`` → :func:`wide_range` — a strided loop whose start/stop/step
  involve lane arrays becomes a sequence of lockstep *rounds*; each round
  yields a :class:`LaneIndex` carrying the per-lane row and an activity
  mask (ragged trip counts are padded to the longest lane).
* ``float``/``int`` → :func:`wide_float`/:func:`wide_int` — the faithful
  per-item scalarizations become dtype casts over the lane axis.

:class:`WideArray` wraps every kernel argument and SLM vector: indexing
with a :class:`LaneIndex` is a masked gather (inactive lanes read as 0,
which is sound because every in-kernel accumulation is a sum whose
masked terms multiply to zero), assignment is a masked scatter (inactive
lanes never write).

Comparisons on :class:`LaneArray` ids (``lid == 0``, ``lane == 0``)
return a :class:`LaneMask`, which is *truthy*: the guarded body executes
for all lanes. This is sound for the SYCL-style kernels' single-writer
guards because every guarded write is either a plain scalar store
(``out_iters[sysid] = iters``) or a scatter whose value is uniform
across the lanes that share a target element (``y[row] = total`` after a
sub-group reduce) — see ``docs/wide_backend.md`` for the full contract.
"""

from __future__ import annotations

import builtins
from typing import Any, Iterator

import numpy as np

__all__ = [
    "LaneArray",
    "LaneIndex",
    "LaneMask",
    "WideArray",
    "wide_float",
    "wide_int",
    "wide_range",
]


class LaneMask(np.ndarray):
    """Boolean lane vector produced by comparing lane ids.

    Truthiness is ``True`` regardless of content so that lane-guarded
    blocks (``if lane == 0:``) execute in lockstep; the guard's masking
    effect is realized by the write semantics, not by skipping the block.
    """

    def __bool__(self) -> bool:  # noqa: D105 - uniform-guard convention
        return True


class LaneArray(np.ndarray):
    """A per-lane id vector (``local_id``, ``lane``, ``sub_group_id``).

    Behaves like a plain integer ndarray except that comparisons return
    :class:`LaneMask` so id-based guards stay executable under lockstep.
    """

    def _mask(self, result: Any) -> Any:
        if isinstance(result, np.ndarray):
            return np.asarray(result).view(LaneMask)
        return result

    def __eq__(self, other):  # noqa: D105
        return self._mask(np.ndarray.__eq__(self, other))

    def __ne__(self, other):  # noqa: D105
        return self._mask(np.ndarray.__ne__(self, other))

    def __lt__(self, other):  # noqa: D105
        return self._mask(np.ndarray.__lt__(self, other))

    def __le__(self, other):  # noqa: D105
        return self._mask(np.ndarray.__le__(self, other))

    def __gt__(self, other):  # noqa: D105
        return self._mask(np.ndarray.__gt__(self, other))

    def __ge__(self, other):  # noqa: D105
        return self._mask(np.ndarray.__ge__(self, other))

    __hash__ = None


def lane_array(values: Any) -> LaneArray:
    """Build a :class:`LaneArray` from any integer sequence."""
    return np.asarray(values, dtype=np.int64).view(LaneArray)


class LaneIndex:
    """One lockstep round of a strided loop: per-lane rows + activity mask.

    Produced by :func:`wide_range`; consumed by :class:`WideArray` as a
    masked gather/scatter key. Integer offsets (``row + 1`` in the CSR
    row-pointer lookups) shift the rows and keep the mask.
    """

    __slots__ = ("rows", "mask", "_all_active")

    def __init__(self, rows: Any, mask: Any, all_active: bool | None = None) -> None:
        self.rows = np.asarray(rows, dtype=np.int64)
        self.mask = np.asarray(mask, dtype=bool)
        self._all_active = all_active

    @property
    def all_active(self) -> bool:
        """Whether every lane is active (cached: the mask is immutable)."""
        if self._all_active is None:
            self._all_active = bool(self.mask.all())
        return self._all_active

    def __add__(self, other: int) -> "LaneIndex":
        return LaneIndex(self.rows + int(other), self.mask, self._all_active)

    __radd__ = __add__

    def __sub__(self, other: int) -> "LaneIndex":
        return LaneIndex(self.rows - int(other), self.mask, self._all_active)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LaneIndex(rows={self.rows.tolist()}, mask={self.mask.tolist()})"


def _is_wide(value: Any) -> bool:
    return isinstance(value, (np.ndarray, LaneIndex))


def wide_range(*args: Any) -> Any:
    """``range`` over possibly-per-lane bounds: lockstep masked rounds.

    With plain integer arguments this is the builtin ``range`` (the ELL
    slot loop must stay an ordinary scalar loop). When start or stop
    carry a lane axis, the loop runs ``max`` trip-count rounds; each
    round is a :class:`LaneIndex` whose mask disables the lanes that
    already exhausted their own trip count — the wide equivalent of the
    faithful interpreter's per-item loop bounds.
    """
    if not any(isinstance(a, np.ndarray) for a in args):
        return builtins.range(*args)
    if len(args) == 1:
        start, stop, step = 0, args[0], 1
    elif len(args) == 2:
        start, stop = args
        step = 1
    else:
        start, stop, step = args
    step = int(np.asarray(step))
    if step <= 0:
        raise ValueError(f"wide_range requires a positive step, got {step}")
    start = np.asarray(start, dtype=np.int64)
    stop = np.asarray(stop, dtype=np.int64)
    start, stop = np.broadcast_arrays(start, stop)
    return _WideRangeRounds(start, stop, step)


class _WideRangeRounds:
    """Iterator over the lockstep rounds of one :func:`wide_range` loop."""

    __slots__ = ("start", "trips", "step")

    def __init__(self, start: np.ndarray, stop: np.ndarray, step: int) -> None:
        self.start = np.array(start, dtype=np.int64)
        self.step = step
        self.trips = np.maximum(0, -(-(stop - start) // step))

    def __iter__(self) -> Iterator[LaneIndex]:
        rounds = int(self.trips.max(initial=0))
        # Rounds below every lane's trip count are fully active: share one
        # mask and skip the per-access ``mask.all()`` re-check downstream.
        uniform = int(self.trips.min(initial=0))
        full = np.ones(self.start.shape, dtype=bool)
        for t in range(rounds):
            if t < uniform:
                yield LaneIndex(self.start + t * self.step, full, True)
            else:
                yield LaneIndex(self.start + t * self.step, self.trips > t)


def wide_float(value: Any) -> Any:
    """``float`` over the lane axis: cast arrays to float64, scalars to float.

    Mirrors the faithful kernels' per-item ``float(...)`` upcast (single
    precision operands promote to float64 arithmetic inside the kernel).
    """
    if isinstance(value, np.ndarray):
        return np.asarray(value, dtype=np.float64)
    return float(value)


def wide_int(value: Any) -> Any:
    """``int`` over the lane axis: cast arrays to int64, scalars to int."""
    if isinstance(value, np.ndarray):
        return np.asarray(value, dtype=np.int64)
    return int(value)


def _gather(data: np.ndarray, index: LaneIndex) -> np.ndarray:
    """Masked gather: inactive lanes read as 0 (their terms vanish in sums)."""
    if index.all_active:
        return data[index.rows]
    mask = index.mask
    safe = np.where(mask, index.rows, 0)
    out = data[safe]
    return np.where(mask, out, out.dtype.type(0))


def _scatter(data: np.ndarray, index: LaneIndex, value: Any) -> None:
    """Masked scatter: only active lanes write.

    Duplicate targets (all lanes of a sub-group storing the same reduced
    total to their shared row) are benign because the value is uniform
    across the duplicates — NumPy keeps one of them.
    """
    mask = index.mask
    if isinstance(value, np.ndarray) and value.shape == mask.shape:
        if index.all_active:
            data[index.rows] = value
        else:
            data[index.rows[mask]] = value[mask]
    else:
        if index.all_active:
            data[index.rows] = value
        else:
            data[index.rows[mask]] = value


class WideArray:
    """Lane-aware view over one kernel argument or SLM vector.

    Plain integer indexing behaves as usual (sub-arrays come back wrapped
    so chained indexing stays lane-aware); :class:`LaneIndex` keys —
    standalone or as the trailing element of a tuple key — perform the
    masked gather/scatter described in the module docstring; raw integer
    arrays (the column gathers of the SpMV inner loop) fancy-index
    directly.
    """

    __slots__ = ("data",)

    def __init__(self, data: np.ndarray) -> None:
        self.data = np.asarray(data)

    # -- ndarray façade -----------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __len__(self) -> int:
        return len(self.data)

    def __array__(self, dtype=None) -> np.ndarray:
        return np.asarray(self.data, dtype=dtype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WideArray({self.data!r})"

    # -- lane-aware indexing ------------------------------------------------

    def _resolve(self, key: Any) -> tuple[np.ndarray, Any]:
        """Split a key into (target sub-array, final index)."""
        if isinstance(key, tuple):
            lead, last = key[:-1], key[-1]
            if isinstance(last, LaneIndex):
                base = self.data[lead] if lead else self.data
                return base, last
            return self.data, key
        return self.data, key

    def __getitem__(self, key: Any) -> Any:
        base, final = self._resolve(key)
        if isinstance(final, LaneIndex):
            return _gather(base, final)
        if isinstance(final, np.ndarray):
            return base[np.asarray(final)]
        value = base[final]
        if isinstance(value, np.ndarray):
            return WideArray(value)
        return value

    def __setitem__(self, key: Any, value: Any) -> None:
        base, final = self._resolve(key)
        if isinstance(final, LaneIndex):
            _scatter(base, final, value)
        elif isinstance(final, np.ndarray):
            base[np.asarray(final)] = value
        else:
            base[final] = value
