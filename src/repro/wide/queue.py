"""The wide backend's queue: same SYCL surface, lockstep execution.

:class:`WideQueue` is a drop-in :class:`~repro.sycl.queue.Queue` whose
``parallel_for`` dispatches to :func:`repro.wide.executor.wide_launch`
instead of the faithful per-work-item interpreter. Everything else —
profiling :class:`~repro.sycl.queue.Event` records, the submission log,
host tasks, tracer kernel spans — is inherited unchanged, so the serving
layer, benchmarks and tests consume wide launches through the exact same
interfaces.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.observability.tracer import current_tracer
from repro.sycl.device import SyclDevice, cpu_device
from repro.sycl.memory import LocalSpec, total_local_bytes
from repro.sycl.ndrange import NDRange
from repro.sycl.queue import Event, Queue
from repro.wide.executor import wide_launch


class WideQueue(Queue):
    """An in-order queue executing launches on the lockstep wide backend."""

    backend = "wide"

    def __init__(self, device: SyclDevice | None = None) -> None:
        super().__init__(device if device is not None else cpu_device())

    def parallel_for(
        self,
        ndrange: NDRange,
        kernel: Callable[..., Any],
        args: tuple = (),
        local_specs: list[LocalSpec] | None = None,
        name: str | None = None,
        poison_slm: bool = False,
    ) -> Event:
        """Launch ``kernel`` over ``ndrange`` in lockstep and wait."""
        kernel_name = name or getattr(kernel, "__name__", "kernel")
        tracer = current_tracer()
        with tracer.span(
            kernel_name, category="kernel", device=self.device.name
        ) as span:
            span.set_args(
                num_groups=ndrange.global_size // ndrange.local_size,
                work_group_size=ndrange.local_size,
                sub_group_size=ndrange.sub_group_size,
                slm_bytes_per_group=total_local_bytes(list(local_specs or [])),
                backend="wide",
            )
            submit = time.perf_counter_ns()
            start = submit
            stats = wide_launch(
                self.device,
                ndrange,
                kernel,
                args=args,
                local_specs=local_specs,
                poison_slm=poison_slm,
                name=kernel_name,
            )
            end = time.perf_counter_ns()
            span.set_args(collectives=dict(stats.collective_counts))
        event = Event(
            name=kernel_name,
            submit_ns=submit,
            start_ns=start,
            end_ns=end,
            stats=stats,
        )
        self.events.append(event)
        return event
