"""A circuit breaker over the service's fallback path.

The direct-LU fallback is the graceful-degradation valve: one
pathological system gets retried alone instead of failing its co-batched
neighbours. It is also the *expensive* path — a dense factorization per
request. Under a fallback **storm** (a poisoned traffic class, a broken
plan, injected chaos) every flush degenerates into per-request LU solves
and the service amplifies its own overload.

:class:`CircuitBreaker` watches the recent outcome window and sheds that
amplification: when the bad fraction (fallbacks + failures) over the last
``window`` outcomes crosses ``threshold`` (with at least ``min_events``
observed), the breaker *opens* and the service fails degraded work fast
with :class:`~repro.exceptions.CircuitOpenError` instead of retrying it.
After ``cooldown_s`` the breaker goes *half-open* and admits probes; the
first healthy outcome closes it, a bad one re-opens it.

The clock is injectable so tests drive the cooldown deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

__all__ = ["CLOSED", "OPEN", "HALF_OPEN", "CircuitBreaker"]

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Sliding-window failure-rate breaker with a half-open probe."""

    def __init__(
        self,
        window: int = 64,
        min_events: int = 32,
        threshold: float = 0.5,
        cooldown_s: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
        on_open: Callable[["CircuitBreaker"], None] | None = None,
        on_close: Callable[["CircuitBreaker"], None] | None = None,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if not 0 < min_events <= window:
            raise ValueError(
                f"min_events must be in [1, window={window}], got {min_events}"
            )
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be non-negative, got {cooldown_s}")
        self.window = window
        self.min_events = min_events
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._on_open = on_open
        self._on_close = on_close
        self._outcomes: deque[bool] = deque(maxlen=window)
        self._state = CLOSED
        self._opened_at = 0.0
        self._opens = 0
        self._closes = 0
        self._lock = threading.Lock()

    # -- observation -----------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, promoting ``open`` → ``half_open`` past cooldown."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def opens(self) -> int:
        """How many times the breaker has tripped open."""
        with self._lock:
            return self._opens

    @property
    def closes(self) -> int:
        """How many times the breaker has recovered closed."""
        with self._lock:
            return self._closes

    def bad_fraction(self) -> float:
        """Bad share of the current outcome window (0.0 when empty)."""
        with self._lock:
            if not self._outcomes:
                return 0.0
            return sum(self._outcomes) / len(self._outcomes)

    # -- the protocol ----------------------------------------------------------

    def allow_degraded(self) -> bool:
        """May the expensive degraded path (per-request fallback) run now?

        ``True`` while closed or half-open (the probe); ``False`` while
        open — the caller sheds the work fast instead.
        """
        with self._lock:
            self._maybe_half_open()
            return self._state != OPEN

    def record(self, bad: bool) -> None:
        """Fold one real outcome in (fast-fail sheds are *not* outcomes).

        ``bad`` is a fallback-used or failed completion. In ``half_open``
        a single good outcome closes the breaker, a bad one re-opens it
        and restarts the cooldown.
        """
        fire_open = fire_close = False
        with self._lock:
            self._maybe_half_open()
            self._outcomes.append(bool(bad))
            if self._state == HALF_OPEN:
                if bad:
                    self._trip()
                    fire_open = True
                else:
                    self._state = CLOSED
                    self._closes += 1
                    self._outcomes.clear()
                    fire_close = True
            elif self._state == CLOSED:
                if (
                    len(self._outcomes) >= self.min_events
                    and sum(self._outcomes) / len(self._outcomes) >= self.threshold
                ):
                    self._trip()
                    fire_open = True
        # callbacks run outside the lock: they emit events / take other locks
        if fire_open and self._on_open is not None:
            self._on_open(self)
        if fire_close and self._on_close is not None:
            self._on_close(self)

    # -- internals (lock held) -------------------------------------------------

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._opens += 1

    def _maybe_half_open(self) -> None:
        if self._state == OPEN and self._clock() - self._opened_at >= self.cooldown_s:
            self._state = HALF_OPEN

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, opens={self.opens}, "
            f"bad_fraction={self.bad_fraction():.2f})"
        )
