"""Tunable policy knobs of the batched-solver service.

Every knob maps to one side of the paper's central trade-off: batching
amortizes kernel-launch and dispatch overhead (Section 3.4's fusion
argument applied at the *request* level), waiting for a bigger batch adds
queueing latency. :class:`ServeConfig` is frozen so one config object can
be shared across threads and embedded in cache keys without copying.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Supported simulated backends for the worker pool.
BACKENDS = ("sycl", "cuda", "wide")

#: Spellings accepted on the CLI / config surface for each backend.
BACKEND_ALIASES = {"cudasim": "cuda"}

#: How a flushed batch is executed on the worker's context.
EXECUTION_MODES = ("vectorized", "kernel")


@dataclass(frozen=True)
class ServeConfig:
    """Configuration of a :class:`~repro.serve.service.SolverService`.

    Parameters
    ----------
    max_batch_size:
        A compatibility bucket flushes as soon as it holds this many
        requests ("size" flush). ``1`` disables micro-batching — every
        request becomes its own kernel launch, the unamortized baseline.
    max_wait_ms:
        A bucket flushes at latest this long after its *first* request
        arrived ("deadline" flush) — bounds the queueing latency a request
        can pay waiting for co-batchable traffic.
    max_pending:
        Admission bound: requests admitted but not yet completed. Above
        it, :meth:`~repro.serve.service.SolverService.submit` rejects with
        :class:`~repro.exceptions.ServiceSaturatedError` (backpressure).
    retry_after_ms:
        The retry hint carried by saturation rejections.
    num_workers:
        Worker threads, each bound to its own simulated device queue/stream.
    backend:
        ``"sycl"`` (PVC stack devices, faithful per-work-item
        interpreter), ``"cuda"`` (A100 devices) or ``"wide"`` (PVC stack
        devices, the NumPy-vectorized lockstep backend of
        :mod:`repro.wide`).
    execution:
        ``"vectorized"`` solves flushed batches with the NumPy core
        solvers (the default); ``"kernel"`` runs the fused device kernels
        of :mod:`repro.kernels` on the worker's queue for the dispatch
        combinations they cover (cg/bicgstab/richardson × identity or
        scalar-Jacobi × CSR × relative criterion × zero initial guess)
        and silently falls back to the vectorized path — counted on the
        ``serve.kernel_fallbacks`` metric — for everything else.
    request_timeout_ms:
        Per-request deadline measured from submission; a request still
        queued when it expires is completed with
        :class:`~repro.exceptions.RequestTimeoutError` instead of being
        solved. ``None`` disables timeouts.
    fallback:
        When true, systems that fail or do not converge in a flushed batch
        are retried *individually* with the direct-LU fallback solver, so
        one pathological system never fails its co-batched neighbours.
    shards_per_flush:
        When > 1, each flushed batch is block-partitioned across this many
        simulated device lanes (:func:`repro.multi.partition_batch`) and
        solved shard-by-shard with per-lane trace spans — the paper's
        multi-GPU distribution applied to a single flush.
    plan_cache_capacity:
        Maximum number of resolved execution plans kept (LRU).
    tuning_db_path:
        Path of a persistent :class:`~repro.tune.TuningDB` file. When set
        (and no database object is passed to the service directly), the
        service opens it and serves tuned launch geometry through the plan
        cache. ``None`` keeps the pure Section-3.6 heuristic.
    telemetry_sample_rate:
        Head-sampling rate for request-scoped telemetry in ``[0, 1]``:
        the fraction of requests whose routine structured events are kept
        (the decision is deterministic in the trace id, so one request is
        sampled consistently everywhere). Critical events — errors,
        timeouts, fallbacks, sanitizer trips, p99-tail completions — are
        always kept regardless. ``0.0`` is the cheapest disabled-path
        setting the overhead benchmark gates.
    event_log_capacity:
        Ring size of the service's bounded-memory structured event log
        (one ring for routine events, one pinned ring for criticals).
    device_dwell_ms:
        Simulated device occupancy per flush: after the host-side solve of
        a flushed batch, the worker thread holds its device context busy
        for this long (a real sleep, so it releases the GIL like a real
        device would release the host). The simulated solvers execute on
        the host CPU, where the interpreter serializes Python threads —
        without a dwell, N shards contend for one core and scaling
        measurements say more about the GIL than about the architecture.
        With it, flush cost is device-bound the way the paper's measured
        kernels are, and fleet scale-out is observable as wall-clock
        throughput. ``0`` (the default) disables the dwell.
    tenant_default_quota:
        Per-tenant admission bound: requests of one tenant admitted but
        not yet completed. Past it, :meth:`submit` rejects that tenant's
        traffic with :class:`~repro.exceptions.QuotaExceededError` while
        other tenants keep being admitted. ``None`` (the default)
        disables per-tenant quotas.
    tenant_quotas:
        Per-tenant overrides of ``tenant_default_quota`` as a tuple of
        ``(tenant, quota)`` pairs (tuple, not dict — the config is frozen
        and hashable).
    fair_share:
        When true (the default), simultaneous due/drain flushes release
        in priority order and, within a priority class, by per-tenant
        stride scheduling (:mod:`repro.serve.qos`). When false, flush
        order is arrival order (the pre-QoS behaviour).
    breaker_enabled:
        Arm the fallback circuit breaker. When the recent bad fraction
        (fallbacks + failures) crosses ``breaker_threshold``, degraded
        per-request retries fail fast with
        :class:`~repro.exceptions.CircuitOpenError` until a half-open
        probe succeeds after ``breaker_cooldown_s``.
    breaker_window / breaker_min_events / breaker_threshold /
    breaker_cooldown_s:
        The breaker's sliding outcome window, the minimum observations
        before it may trip, the bad fraction that trips it, and the
        open → half-open cooldown.
    """

    max_batch_size: int = 64
    max_wait_ms: float = 2.0
    max_pending: int = 1024
    retry_after_ms: float = 5.0
    num_workers: int = 2
    backend: str = "sycl"
    execution: str = "vectorized"
    request_timeout_ms: float | None = None
    fallback: bool = True
    shards_per_flush: int = 1
    plan_cache_capacity: int = 256
    tuning_db_path: str | None = None
    telemetry_sample_rate: float = 1.0
    event_log_capacity: int = 2048
    device_dwell_ms: float = 0.0
    tenant_default_quota: int | None = None
    tenant_quotas: tuple[tuple[str, int], ...] = ()
    fair_share: bool = True
    breaker_enabled: bool = True
    breaker_window: int = 64
    breaker_min_events: int = 32
    breaker_threshold: float = 0.5
    breaker_cooldown_s: float = 2.0

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ValueError(f"max_batch_size must be positive, got {self.max_batch_size}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be non-negative, got {self.max_wait_ms}")
        if self.max_pending <= 0:
            raise ValueError(f"max_pending must be positive, got {self.max_pending}")
        if self.retry_after_ms < 0:
            raise ValueError(f"retry_after_ms must be non-negative, got {self.retry_after_ms}")
        if self.num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {self.num_workers}")
        if self.backend in BACKEND_ALIASES:
            object.__setattr__(self, "backend", BACKEND_ALIASES[self.backend])
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {self.backend!r}")
        if self.execution not in EXECUTION_MODES:
            raise ValueError(
                f"execution must be one of {EXECUTION_MODES}, got {self.execution!r}"
            )
        if self.request_timeout_ms is not None and self.request_timeout_ms <= 0:
            raise ValueError(
                f"request_timeout_ms must be positive or None, got {self.request_timeout_ms}"
            )
        if self.shards_per_flush <= 0:
            raise ValueError(
                f"shards_per_flush must be positive, got {self.shards_per_flush}"
            )
        if self.plan_cache_capacity <= 0:
            raise ValueError(
                f"plan_cache_capacity must be positive, got {self.plan_cache_capacity}"
            )
        if not 0.0 <= self.telemetry_sample_rate <= 1.0:
            raise ValueError(
                f"telemetry_sample_rate must be in [0, 1], got {self.telemetry_sample_rate}"
            )
        if self.event_log_capacity <= 0:
            raise ValueError(
                f"event_log_capacity must be positive, got {self.event_log_capacity}"
            )
        if self.device_dwell_ms < 0:
            raise ValueError(
                f"device_dwell_ms must be non-negative, got {self.device_dwell_ms}"
            )
        if self.tenant_default_quota is not None and self.tenant_default_quota <= 0:
            raise ValueError(
                f"tenant_default_quota must be positive or None, "
                f"got {self.tenant_default_quota}"
            )
        for pair in self.tenant_quotas:
            if len(pair) != 2 or not pair[0] or int(pair[1]) <= 0:
                raise ValueError(
                    f"tenant_quotas entries must be (tenant, positive quota), got {pair!r}"
                )
        if self.breaker_window <= 0:
            raise ValueError(
                f"breaker_window must be positive, got {self.breaker_window}"
            )
        if not 0 < self.breaker_min_events <= self.breaker_window:
            raise ValueError(
                f"breaker_min_events must be in [1, breaker_window], "
                f"got {self.breaker_min_events}"
            )
        if not 0.0 < self.breaker_threshold <= 1.0:
            raise ValueError(
                f"breaker_threshold must be in (0, 1], got {self.breaker_threshold}"
            )
        if self.breaker_cooldown_s < 0:
            raise ValueError(
                f"breaker_cooldown_s must be non-negative, got {self.breaker_cooldown_s}"
            )

    @property
    def max_wait_ns(self) -> int:
        """The flush deadline in integer nanoseconds."""
        return int(self.max_wait_ms * 1e6)

    @property
    def request_timeout_ns(self) -> int | None:
        """The per-request timeout in integer nanoseconds (None = disabled)."""
        if self.request_timeout_ms is None:
            return None
        return int(self.request_timeout_ms * 1e6)

    @property
    def device_dwell_s(self) -> float:
        """The per-flush simulated device occupancy in seconds."""
        return self.device_dwell_ms / 1e3

    def quota_for(self, tenant: str) -> int | None:
        """The pending quota of ``tenant`` (``None`` = unbounded)."""
        for name, quota in self.tenant_quotas:
            if name == tenant:
                return int(quota)
        return self.tenant_default_quota
