"""Multi-tenant quality of service: priority classes and fair share.

Two orthogonal QoS dimensions ride on every
:class:`~repro.serve.request.SolveRequest`:

* ``priority`` — one of :data:`PRIORITIES`. Buckets of different priority
  never co-batch (a ``high`` request must not wait for ``low`` traffic to
  fill its batch), and when several buckets are due at once the
  micro-batcher releases them strictly by priority rank.
* ``tenant`` — an opaque stream identity. Tenants *do* co-batch (sharing
  a fused launch is the whole point), but they compete fairly for flush
  order within a priority class via stride scheduling
  (:class:`FairShareLedger`), and per-tenant pending quotas bound how much
  of the admission queue any one tenant can own
  (:class:`~repro.exceptions.QuotaExceededError` past the bound).
"""

from __future__ import annotations

import threading

__all__ = [
    "PRIORITIES",
    "PRIORITY_RANK",
    "PRIORITY_WEIGHTS",
    "DEFAULT_TENANT",
    "FairShareLedger",
]

#: Priority classes, best first.
PRIORITIES = ("high", "normal", "low")

#: Flush-order rank per class (lower releases first).
PRIORITY_RANK = {"high": 0, "normal": 1, "low": 2}

#: Stride-scheduling weights: a tenant's virtual time advances by
#: ``tickets / weight`` per flush, so heavier classes are charged less
#: per unit of service and win ties more often.
PRIORITY_WEIGHTS = {"high": 4.0, "normal": 2.0, "low": 1.0}

#: The tenant requests belong to unless the caller says otherwise.
DEFAULT_TENANT = "default"


class FairShareLedger:
    """Per-tenant virtual time for stride-scheduled flush ordering.

    Classic stride scheduling (Waldspurger & Weihl): each tenant owns a
    monotonically increasing *virtual time*; serving ``n`` tickets of a
    tenant advances it by ``n / weight``. The scheduler always releases
    the candidate whose owning tenant has the smallest virtual time, so
    over any window each tenant's share of service converges to its
    weight share — regardless of how bursty its arrivals are.

    A tenant first seen mid-run starts at the current *minimum* virtual
    time (not zero), so a newcomer cannot monopolize the scheduler by
    virtue of having no history.
    """

    def __init__(self) -> None:
        self._vtime: dict[str, float] = {}
        self._lock = threading.Lock()

    def virtual_time(self, tenant: str) -> float:
        """The tenant's current virtual time (joins at the running floor)."""
        with self._lock:
            return self._vtime.get(tenant, self._floor())

    def charge(self, tenant: str, tickets: int, weight: float = 1.0) -> float:
        """Account ``tickets`` served for ``tenant``; returns its new time."""
        if tickets < 0:
            raise ValueError(f"tickets must be non-negative, got {tickets}")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        with self._lock:
            now = self._vtime.get(tenant, self._floor())
            now += tickets / weight
            self._vtime[tenant] = now
            return now

    def _floor(self) -> float:
        return min(self._vtime.values(), default=0.0)

    def snapshot(self) -> dict[str, float]:
        """Current per-tenant virtual times (observability)."""
        with self._lock:
            return dict(self._vtime)
