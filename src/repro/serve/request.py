"""Single-system solve requests, batch-compatibility keys, and tickets.

The service accepts *one linear system per request* — the unit the
motivating applications produce (one cell's chemistry system, one
integrator step) — and regroups them into the batches the paper's fused
kernels want. Two requests may share a fused kernel launch only if every
dispatch-relevant property matches: matrix format, system size, sparsity
pattern (the batched formats store the pattern once for the whole batch),
solver, preconditioner, stopping criterion, tolerance, iteration budget
and precision. :class:`BatchKey` captures exactly that tuple.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.core.dispatch import CRITERIA, FORMATS, PRECISIONS, PRECONDITIONERS, SOLVERS
from repro.observability.context import TraceContext, mint_context
from repro.serve.qos import DEFAULT_TENANT, PRIORITIES
from repro.core.matrix import BatchCsr, BatchDense, BatchedMatrix
from repro.exceptions import (
    BadSparsityPatternError,
    DimensionMismatchError,
    UnsupportedCombinationError,
)

#: Ticket lifecycle states.
PENDING = "pending"
DONE = "done"
FAILED = "failed"
TIMED_OUT = "timed_out"


@dataclass(frozen=True)
class BatchKey:
    """The compatibility class of a request — equal keys may co-batch.

    ``pattern_token`` is a digest of the sparsity pattern (row pointers +
    column indices for CSR; the shape for dense), so requests only group
    when they can share the batched formats' single stored pattern.
    """

    matrix_format: str
    num_rows: int
    pattern_token: str
    solver: str
    preconditioner: str
    criterion: str
    precision: str
    tolerance: float
    max_iterations: int

    def dispatch_key(self) -> tuple:
        """The Figure-3 dispatch part of the key (plan-cache component)."""
        return (
            self.solver,
            self.preconditioner,
            self.criterion,
            self.precision,
            self.matrix_format,
            self.tolerance,
            self.max_iterations,
        )


class SolveRequest:
    """One linear system ``A x = b`` plus its solver configuration.

    ``a`` may be a dense 2-D ndarray or any scipy sparse matrix; sparse
    inputs are normalized to CSR on construction (shared-pattern hashing
    needs a canonical form). ``matrix_format`` forces the batched storage
    format ("dense", "csr", "ell"); by default sparse inputs serve as CSR
    and dense inputs as dense.
    """

    __slots__ = (
        "b",
        "x0",
        "solver",
        "preconditioner",
        "criterion",
        "tolerance",
        "max_iterations",
        "precision",
        "matrix_format",
        "row_ptrs",
        "col_idxs",
        "values",
        "dense",
        "num_rows",
        "batch_key",
        "trace_context",
        "tenant",
        "priority",
    )

    def __init__(
        self,
        a: Any,
        b: np.ndarray,
        x0: np.ndarray | None = None,
        solver: str = "bicgstab",
        preconditioner: str = "identity",
        criterion: str = "relative",
        tolerance: float = 1e-8,
        max_iterations: int = 500,
        precision: str = "double",
        matrix_format: str | None = None,
        trace_context: TraceContext | None = None,
        tenant: str = DEFAULT_TENANT,
        priority: str = "normal",
    ) -> None:
        if solver not in SOLVERS:
            raise UnsupportedCombinationError(
                f"unknown solver {solver!r}; available: {sorted(SOLVERS)}"
            )
        if preconditioner not in PRECONDITIONERS:
            raise UnsupportedCombinationError(
                f"unknown preconditioner {preconditioner!r}; "
                f"available: {sorted(PRECONDITIONERS)}"
            )
        if criterion not in CRITERIA:
            raise UnsupportedCombinationError(
                f"unknown stopping criterion {criterion!r}; available: {sorted(CRITERIA)}"
            )
        if precision not in PRECISIONS:
            raise UnsupportedCombinationError(
                f"unknown precision {precision!r}; available: {sorted(PRECISIONS)}"
            )
        if matrix_format is not None and matrix_format not in FORMATS:
            raise UnsupportedCombinationError(
                f"unknown matrix format {matrix_format!r}; available: {sorted(FORMATS)}"
            )
        if priority not in PRIORITIES:
            raise UnsupportedCombinationError(
                f"unknown priority {priority!r}; available: {list(PRIORITIES)}"
            )
        if not tenant:
            raise ValueError("tenant must be a non-empty string")
        self.tenant = tenant
        self.priority = priority
        self.solver = solver
        self.preconditioner = preconditioner
        self.criterion = criterion
        self.tolerance = float(tolerance)
        self.max_iterations = int(max_iterations)
        self.precision = precision

        self._ingest_matrix(a, matrix_format)

        b = np.asarray(b, dtype=np.float64)
        if b.shape != (self.num_rows,):
            raise DimensionMismatchError(
                f"b must have shape ({self.num_rows},), got {b.shape}"
            )
        self.b = b
        if x0 is not None:
            x0 = np.asarray(x0, dtype=np.float64)
            if x0.shape != (self.num_rows,):
                raise DimensionMismatchError(
                    f"x0 must have shape ({self.num_rows},), got {x0.shape}"
                )
        self.x0 = x0
        self.batch_key = self._compute_key()
        # every request is born with its own trace identity; upstream
        # callers that already carry one (a client retry, a multi-hop
        # pipeline) pass it in and the journey keeps one trace_id
        self.trace_context = trace_context if trace_context is not None else mint_context()

    @property
    def request_id(self) -> str:
        """Human-scannable identity of this request (from its trace context)."""
        return self.trace_context.request_id

    # -- matrix normalization -----------------------------------------------

    def _ingest_matrix(self, a: Any, matrix_format: str | None) -> None:
        if sp.issparse(a):
            fmt = matrix_format or "csr"
        else:
            a = np.asarray(a, dtype=np.float64)
            if a.ndim != 2 or a.shape[0] != a.shape[1]:
                raise DimensionMismatchError(
                    f"request matrix must be square 2-D, got shape {getattr(a, 'shape', None)}"
                )
            fmt = matrix_format or "dense"
        self.matrix_format = fmt

        if fmt == "dense":
            dense = a.toarray() if sp.issparse(a) else a
            self.dense = np.ascontiguousarray(dense, dtype=np.float64)
            self.num_rows = self.dense.shape[0]
            self.row_ptrs = None
            self.col_idxs = None
            self.values = None
        else:
            # "csr" and "ell" both assemble through the shared-pattern CSR
            # triplet; ELL conversion happens batch-wise at dispatch.
            csr = sp.csr_matrix(a) if not sp.issparse(a) else a.tocsr()
            if csr.shape[0] != csr.shape[1]:
                raise DimensionMismatchError(
                    f"request matrix must be square, got shape {csr.shape}"
                )
            csr = csr.sorted_indices()
            csr.eliminate_zeros()
            if csr.nnz == 0:
                raise BadSparsityPatternError("request matrix has no stored entries")
            self.dense = None
            self.num_rows = csr.shape[0]
            self.row_ptrs = csr.indptr.astype(np.int32)
            self.col_idxs = csr.indices.astype(np.int32)
            self.values = csr.data.astype(np.float64)

    def _compute_key(self) -> BatchKey:
        if self.matrix_format == "dense":
            token = f"dense:{self.num_rows}"
        else:
            digest = hashlib.sha1(self.row_ptrs.tobytes())
            digest.update(self.col_idxs.tobytes())
            token = digest.hexdigest()[:16]
        return BatchKey(
            matrix_format=self.matrix_format,
            num_rows=self.num_rows,
            pattern_token=token,
            solver=self.solver,
            preconditioner=self.preconditioner,
            criterion=self.criterion,
            precision=self.precision,
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
        )

    def __repr__(self) -> str:
        return (
            f"SolveRequest(n={self.num_rows}, format={self.matrix_format!r}, "
            f"solver={self.solver!r}, preconditioner={self.preconditioner!r})"
        )


def assemble_batch(
    requests: list[SolveRequest],
) -> tuple[BatchedMatrix, np.ndarray, np.ndarray | None]:
    """Coalesce compatible requests into one batched system.

    Returns ``(matrix, b, x0)`` where ``x0`` is ``None`` when no request
    carries an initial guess (requests without one get a zero guess when
    any co-batched request has one). The caller guarantees the requests
    share a :class:`BatchKey`; the shared sparsity pattern is re-verified
    here against request 0 — a digest collision must not silently stack
    values of different patterns.
    """
    if not requests:
        raise ValueError("assemble_batch needs at least one request")
    first = requests[0]
    if first.matrix_format == "dense":
        matrix: BatchedMatrix = BatchDense(np.stack([r.dense for r in requests]))
    else:
        for i, req in enumerate(requests[1:], start=1):
            if not (
                np.array_equal(req.row_ptrs, first.row_ptrs)
                and np.array_equal(req.col_idxs, first.col_idxs)
            ):
                raise BadSparsityPatternError(
                    f"request {i} does not share the sparsity pattern of request 0 "
                    "(pattern-digest collision)"
                )
        matrix = BatchCsr(
            first.row_ptrs,
            first.col_idxs,
            np.stack([r.values for r in requests]),
            num_cols=first.num_rows,
        )
    b = np.stack([r.b for r in requests])
    if any(r.x0 is not None for r in requests):
        x0 = np.stack(
            [r.x0 if r.x0 is not None else np.zeros(r.num_rows) for r in requests]
        )
    else:
        x0 = None
    return matrix, b, x0


@dataclass
class SolveOutcome:
    """What a completed request hands back to its caller."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    solver_name: str
    used_fallback: bool
    batch_size: int
    queue_wait_ms: float
    solve_ms: float
    worker: str
    plan_cache_hit: bool
    trace_id: str = ""
    request_id: str = ""

    def __repr__(self) -> str:
        return (
            f"SolveOutcome(solver={self.solver_name!r}, converged={self.converged}, "
            f"iterations={self.iterations}, batch_size={self.batch_size}, "
            f"fallback={self.used_fallback}, request_id={self.request_id!r})"
        )


class SolveTicket:
    """The caller's handle on one submitted request (a promise).

    Completion is signalled through a :class:`threading.Event`; callers
    block in :meth:`result`. The service stamps queue/solve timings onto
    the ticket as the request moves through the pipeline.
    """

    def __init__(
        self,
        request: SolveRequest,
        submitted_ns: int,
        deadline_ns: int | None = None,
    ) -> None:
        self.request = request
        self.submitted_ns = submitted_ns
        self.deadline_ns = deadline_ns
        self.flushed_ns: int | None = None
        self.status = PENDING
        self._event = threading.Event()
        self._outcome: SolveOutcome | None = None
        self._error: Exception | None = None

    # -- caller side ---------------------------------------------------------

    def done(self) -> bool:
        """True once the request has completed (successfully or not)."""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> SolveOutcome:
        """Block until the request completes; raise its failure if it failed."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request not served within {timeout} s (status {self.status!r})"
            )
        if self._error is not None:
            raise self._error
        assert self._outcome is not None
        return self._outcome

    def exception(self, timeout: float | None = None) -> Exception | None:
        """Block until completion; return the failure (None on success)."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request not served within {timeout} s (status {self.status!r})"
            )
        return self._error

    @property
    def trace_context(self) -> TraceContext:
        """The request's trace identity (shortcut for service code)."""
        return self.request.trace_context

    @property
    def queue_wait_ns(self) -> int | None:
        """Nanoseconds between submission and flush (None before flush)."""
        if self.flushed_ns is None:
            return None
        return self.flushed_ns - self.submitted_ns

    def expired(self, now_ns: int) -> bool:
        """True when the per-request deadline has passed."""
        return self.deadline_ns is not None and now_ns > self.deadline_ns

    # -- service side --------------------------------------------------------

    def _complete(self, outcome: SolveOutcome) -> None:
        self._outcome = outcome
        self.status = DONE
        self._event.set()

    def _fail(self, error: Exception, status: str = FAILED) -> None:
        self._error = error
        self.status = status
        self._event.set()

    def __repr__(self) -> str:
        return f"SolveTicket(status={self.status!r}, request={self.request!r})"


def monotonic_ns() -> int:
    """The service clock (monotonic, integer nanoseconds)."""
    return time.monotonic_ns()
