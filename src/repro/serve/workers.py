"""The worker pool: one thread per simulated device queue/stream.

Each worker owns a backend context — a :class:`repro.sycl.queue.Queue` or
a lockstep :class:`repro.wide.queue.WideQueue` on a PVC stack device, or
a :class:`repro.cudasim.stream.Stream` on an A100 — and drains its own
job queue. Flushed batches are submitted to the
least-loaded worker and executed as *host tasks* on that worker's
queue/stream, so every flush lands in the device's in-order event log and
on its own trace lane (``tid`` = :data:`WORKER_LANE_BASE` + index), the
same one-row-per-device picture :mod:`repro.multi` paints for
distributed solves.
"""

from __future__ import annotations

import contextvars
import queue as _queue
import threading
import traceback
from typing import Any, Callable

from repro.cudasim.device import a100_device
from repro.cudasim.stream import Stream
from repro.sycl.device import SyclDevice, pvc_stack_device
from repro.sycl.queue import Queue
from repro.wide.queue import WideQueue

#: Chrome-trace lane of worker 0 (multi-rank lanes start at 100).
WORKER_LANE_BASE = 200

_STOP = object()


class Worker(threading.Thread):
    """One serving thread bound to a simulated device context."""

    def __init__(self, index: int, backend: str, device: SyclDevice | None = None) -> None:
        super().__init__(name=f"serve-worker-{index}", daemon=True)
        self.index = index
        self.backend = backend
        if backend == "cuda":
            self.context: Queue | Stream = Stream(device or a100_device())
        elif backend == "wide":
            self.context = WideQueue(device or pvc_stack_device(1))
        else:
            self.context = Queue(device or pvc_stack_device(1))
        self.jobs: _queue.Queue = _queue.Queue()
        self.completed = 0

    @property
    def device_name(self) -> str:
        """Marketing name of the simulated device this worker drives."""
        return self.context.device.name

    @property
    def lane(self) -> int:
        """Chrome-trace ``tid`` lane of this worker."""
        return WORKER_LANE_BASE + self.index

    def run(self) -> None:
        while True:
            item = self.jobs.get()
            if item is _STOP:
                break
            ctx, job = item
            try:
                # run under the submitter's captured contextvars so the
                # ambient trace context (and any open-span stack) at submit
                # time flows into the host task — and each job's own span
                # stack stays isolated from its neighbours on this thread
                ctx.run(job, self)
            except Exception:  # the job owns error delivery; never kill the thread
                traceback.print_exc()
            finally:
                self.completed += 1
                self.jobs.task_done()

    def stop(self) -> None:
        """Ask the worker to exit after its queued jobs."""
        self.jobs.put(_STOP)


class WorkerPool:
    """Least-loaded dispatch over ``num_workers`` device-bound threads."""

    def __init__(
        self,
        num_workers: int,
        backend: str = "sycl",
        device: SyclDevice | None = None,
    ) -> None:
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        self.workers = [Worker(i, backend, device) for i in range(num_workers)]
        self._lock = threading.Lock()
        self._rr = 0
        for worker in self.workers:
            worker.start()

    @property
    def size(self) -> int:
        """Number of workers."""
        return len(self.workers)

    def submit(self, job: Callable[[Worker], Any]) -> Worker:
        """Enqueue ``job`` on the least-loaded worker; ties break round-robin.

        The submitter's ``contextvars`` snapshot travels with the job, so
        request-scoped trace context crosses the thread boundary intact.
        """
        with self._lock:
            depths = [w.jobs.qsize() for w in self.workers]
            best = min(depths)
            # round-robin over the workers at the minimum depth
            order = [(self._rr + i) % len(self.workers) for i in range(len(self.workers))]
            chosen = next(i for i in order if depths[i] == best)
            self._rr = (chosen + 1) % len(self.workers)
        worker = self.workers[chosen]
        worker.jobs.put((contextvars.copy_context(), job))
        return worker

    def join(self) -> None:
        """Block until every queued job has been executed."""
        for worker in self.workers:
            worker.jobs.join()

    def close(self) -> None:
        """Drain queued jobs, then stop and join every worker thread."""
        for worker in self.workers:
            worker.stop()
        for worker in self.workers:
            worker.join()
