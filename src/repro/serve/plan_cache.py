"""The plan cache: resolved dispatch + launch geometry, keyed per config.

Under a request workload the same handful of configurations recur
endlessly (the motivating applications solve the *same* chemistry system
shape for every cell, every step). Re-walking the Figure-3 dispatch tree
and the Section-3.6 launch configurator for every flush is pure overhead,
so the service resolves each ``(dispatch tuple, num_rows, device)``
combination once into an :class:`ExecutionPlan` — concrete solver /
preconditioner / criterion classes plus the batch-size-independent launch
geometry — and stamps out per-flush launch plans from it.

Hit/miss/eviction counters land in a
:class:`~repro.observability.metrics.MetricsRegistry` (the service's), so
cache effectiveness shows up in the same place as the rest of the serve
telemetry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.dispatch import BatchSolverFactory, ResolvedDispatch
from repro.core.launch import KernelLaunchPlan, LaunchConfigurator, LaunchGeometry
from repro.core.matrix.base import BatchedMatrix
from repro.core.solver.base import BatchIterativeSolver
from repro.observability.metrics import MetricsRegistry
from repro.serve.request import BatchKey
from repro.sycl.device import SyclDevice


@dataclass(frozen=True)
class PlanKey:
    """Cache key: the resolved dispatch tuple + what the launch config needs."""

    dispatch: tuple
    num_rows: int
    device: str


@dataclass(frozen=True)
class ExecutionPlan:
    """Everything dispatch/launch resolution produces for one configuration."""

    resolved: ResolvedDispatch
    geometry: LaunchGeometry

    def launch_plan(self, num_batch: int) -> KernelLaunchPlan:
        """A concrete launch plan for a flush of ``num_batch`` systems."""
        return self.geometry.plan(num_batch)

    def build_solver(self, matrix: BatchedMatrix) -> BatchIterativeSolver:
        """Instantiate the solver for an assembled flush (no re-resolution)."""
        return self.resolved.build(self.resolved.prepare(matrix))


class PlanCache:
    """LRU cache of :class:`ExecutionPlan` objects (thread-safe)."""

    def __init__(
        self,
        device: SyclDevice,
        metrics: MetricsRegistry | None = None,
        capacity: int = 256,
        tuning_db: object | None = None,
        event_log: object | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.device = device
        self.capacity = capacity
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tuning_db = tuning_db
        self.event_log = event_log
        self._db_generation = (
            tuning_db.generation if tuning_db is not None else None
        )
        self._plans: OrderedDict[PlanKey, ExecutionPlan] = OrderedDict()
        self._lock = threading.Lock()

    def _check_tuning_generation_locked(self) -> None:
        """Drop every cached plan when the TuningDB has mutated.

        Cached plans embed launch geometry resolved against a specific
        database state; a new/removed tuning record must not keep serving
        flushes through a stale geometry.
        """
        if self.tuning_db is None:
            return
        generation = self.tuning_db.generation
        if generation != self._db_generation:
            self._db_generation = generation
            if self._plans:
                dropped = len(self._plans)
                self._plans.clear()
                self.metrics.counter("serve.plan_cache.invalidations").inc()
                if self.event_log is not None:
                    from repro.telemetry.events import PLAN_CACHE_INVALIDATED

                    self.event_log.emit(
                        PLAN_CACHE_INVALIDATED,
                        critical=True,
                        generation=generation,
                        plans_dropped=dropped,
                    )

    def plan_for(self, key: BatchKey) -> tuple[ExecutionPlan, bool]:
        """The execution plan for one compatibility class; ``(plan, hit)``.

        On a miss the full resolution runs — factory validation, registry
        lookups, launch-geometry selection — and the result is cached; on a
        hit nothing but an ordered-dict move happens.
        """
        plan_key = PlanKey(key.dispatch_key(), key.num_rows, self.device.name)
        with self._lock:
            self._check_tuning_generation_locked()
            plan = self._plans.get(plan_key)
            if plan is not None:
                self._plans.move_to_end(plan_key)
                self.metrics.counter("serve.plan_cache.hits").inc()
                return plan, True

        # Resolution happens outside the lock: it is pure computation on
        # immutable inputs, so two racing misses at worst resolve twice.
        generation_at_resolve = self._db_generation
        plan = self._resolve(key)
        with self._lock:
            self._check_tuning_generation_locked()
            if self._db_generation != generation_at_resolve:
                # the TuningDB mutated while we resolved: hand the plan to
                # this caller but do not cache it against the new generation
                self.metrics.counter("serve.plan_cache.misses").inc()
                return plan, False
            self._plans[plan_key] = plan
            self._plans.move_to_end(plan_key)
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                self.metrics.counter("serve.plan_cache.evictions").inc()
            self.metrics.counter("serve.plan_cache.misses").inc()
        return plan, False

    def _resolve(self, key: BatchKey) -> ExecutionPlan:
        factory = BatchSolverFactory(
            solver=key.solver,
            preconditioner=key.preconditioner,
            criterion=key.criterion,
            precision=key.precision,
            matrix_format=key.matrix_format,
            tolerance=key.tolerance,
            max_iterations=key.max_iterations,
        )
        resolved = factory.resolve(key.matrix_format)
        geometry = LaunchConfigurator(self.device, tuning_db=self.tuning_db).geometry(
            key.num_rows,
            solver=key.solver,
            preconditioner=key.preconditioner,
            precision=key.precision,
        )
        return ExecutionPlan(resolved=resolved, geometry=geometry)

    # -- introspection -----------------------------------------------------------

    @property
    def hits(self) -> int:
        """Number of cache hits so far."""
        return int(self.metrics.counter("serve.plan_cache.hits").value)

    @property
    def misses(self) -> int:
        """Number of cache misses so far."""
        return int(self.metrics.counter("serve.plan_cache.misses").value)

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)
