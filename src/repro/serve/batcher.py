"""The dynamic micro-batcher: coalesce compatible requests, flush on policy.

One bucket per (:class:`~repro.serve.request.BatchKey`, priority class).
A bucket flushes when it reaches ``max_batch_size`` ("size" flush — the
throughput-optimal case: a full fused launch) or when its oldest request
has waited ``max_wait_ns`` ("deadline" flush — the latency bound). The
batcher is a pure data structure over an injectable clock, so the flush
policy is deterministic and unit-testable without threads; the service
supplies the threads (a flusher that sleeps until
:meth:`next_deadline_ns`).

QoS (see :mod:`repro.serve.qos`): priority classes never co-batch, and
when several buckets are due at the same instant the batcher releases
them by priority rank first, then by per-tenant stride-scheduled virtual
time — so one chatty tenant cannot starve its peers of flush order even
inside a single priority class.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.serve.qos import (
    DEFAULT_TENANT,
    PRIORITY_RANK,
    PRIORITY_WEIGHTS,
    FairShareLedger,
)
from repro.serve.request import BatchKey, SolveTicket, monotonic_ns

#: Flush reasons.
SIZE = "size"
DEADLINE = "deadline"
DRAIN = "drain"


def _new_flush_id() -> str:
    """A short identity for one flush (ties span links and events together)."""
    return f"flush-{os.urandom(4).hex()}"


@dataclass
class FlushBatch:
    """One batch of co-batchable tickets handed to the worker pool."""

    key: BatchKey
    tickets: list[SolveTicket]
    reason: str
    opened_ns: int
    flushed_ns: int
    flush_id: str = field(default_factory=_new_flush_id)
    priority: str = "normal"

    @property
    def size(self) -> int:
        """Number of requests in the flush."""
        return len(self.tickets)

    def tenants(self) -> dict[str, int]:
        """Ticket count per tenant in this flush (fair-share accounting)."""
        counts: dict[str, int] = {}
        for ticket in self.tickets:
            tenant = getattr(ticket.request, "tenant", DEFAULT_TENANT)
            counts[tenant] = counts.get(tenant, 0) + 1
        return counts


@dataclass
class _Bucket:
    """Accumulating tickets of one compatibility class × priority."""

    opened_ns: int
    tickets: list[SolveTicket] = field(default_factory=list)


def _ticket_priority(ticket: SolveTicket) -> str:
    priority = getattr(ticket.request, "priority", "normal")
    return priority if priority in PRIORITY_RANK else "normal"


class MicroBatcher:
    """Request coalescing with size- and deadline-triggered flushes.

    Thread-safe; every mutating call takes the internal lock. The clock is
    injectable (monotonic integer nanoseconds) for deterministic tests.
    ``fair_share=False`` restores pure arrival-order release.
    """

    def __init__(
        self,
        max_batch_size: int,
        max_wait_ns: int,
        clock: Callable[[], int] = monotonic_ns,
        fair_share: bool = True,
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError(f"max_batch_size must be positive, got {max_batch_size}")
        if max_wait_ns < 0:
            raise ValueError(f"max_wait_ns must be non-negative, got {max_wait_ns}")
        self.max_batch_size = max_batch_size
        self.max_wait_ns = max_wait_ns
        self.fair_share = fair_share
        self.ledger = FairShareLedger()
        self._clock = clock
        self._buckets: dict[tuple[BatchKey, str], _Bucket] = {}
        self._lock = threading.Lock()

    # -- intake ----------------------------------------------------------------

    def offer(self, ticket: SolveTicket) -> FlushBatch | None:
        """Add one ticket; return a size-triggered flush if it fills a bucket.

        With ``max_batch_size == 1`` every offer flushes immediately — the
        unbatched baseline the benchmark compares against.
        """
        key = ticket.request.batch_key
        priority = _ticket_priority(ticket)
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get((key, priority))
            if bucket is None:
                bucket = self._buckets[(key, priority)] = _Bucket(opened_ns=now)
            bucket.tickets.append(ticket)
            if len(bucket.tickets) >= self.max_batch_size:
                del self._buckets[(key, priority)]
                flush = FlushBatch(
                    key, bucket.tickets, SIZE, bucket.opened_ns, now, priority=priority
                )
                self._charge(flush)
                return flush
        return None

    # -- deadline handling -------------------------------------------------------

    def due(self, now_ns: int | None = None) -> list[FlushBatch]:
        """Flush every bucket whose oldest request exceeded the wait deadline.

        Returns ``[]`` when nothing is due — a deadline firing against an
        already-flushed (or never-filled) bucket produces no empty flush.
        Simultaneously due flushes come back in QoS release order.
        """
        now = self._clock() if now_ns is None else now_ns
        flushes: list[FlushBatch] = []
        with self._lock:
            expired = [
                bk
                for bk, bucket in self._buckets.items()
                if now - bucket.opened_ns >= self.max_wait_ns
            ]
            for key, priority in expired:
                bucket = self._buckets.pop((key, priority))
                flushes.append(
                    FlushBatch(
                        key, bucket.tickets, DEADLINE, bucket.opened_ns, now,
                        priority=priority,
                    )
                )
        return self._release_order(flushes)

    def next_deadline_ns(self) -> int | None:
        """The earliest instant a bucket becomes due (None when empty)."""
        with self._lock:
            if not self._buckets:
                return None
            oldest = min(bucket.opened_ns for bucket in self._buckets.values())
        return oldest + self.max_wait_ns

    # -- shutdown ------------------------------------------------------------------

    def drain(self) -> list[FlushBatch]:
        """Flush everything regardless of size or age (service shutdown)."""
        now = self._clock()
        with self._lock:
            buckets = list(self._buckets.items())
            self._buckets.clear()
        flushes = [
            FlushBatch(key, bucket.tickets, DRAIN, bucket.opened_ns, now, priority=prio)
            for (key, prio), bucket in buckets
        ]
        return self._release_order(flushes)

    # -- QoS release order ---------------------------------------------------------

    def _release_order(self, flushes: list[FlushBatch]) -> list[FlushBatch]:
        """Order simultaneous flushes: priority rank, fair share, then age.

        A flush's fair-share position is the smallest virtual time among
        its tenants (mixed-tenant flushes ride on their best-served-least
        member); each released flush then charges its tenants' clocks so
        the *next* tie breaks toward whoever has been served least.
        """
        if not self.fair_share or len(flushes) <= 1:
            for flush in flushes:
                self._charge(flush)
            return flushes
        ordered: list[FlushBatch] = []
        remaining = list(flushes)
        while remaining:
            remaining.sort(
                key=lambda f: (
                    PRIORITY_RANK.get(f.priority, 1),
                    min(self.ledger.virtual_time(t) for t in f.tenants()),
                    f.opened_ns,
                )
            )
            head = remaining.pop(0)
            self._charge(head)
            ordered.append(head)
        return ordered

    def _charge(self, flush: FlushBatch) -> None:
        if not self.fair_share:
            return
        weight = PRIORITY_WEIGHTS.get(flush.priority, 1.0)
        for tenant, tickets in flush.tenants().items():
            self.ledger.charge(tenant, tickets, weight)

    # -- introspection ---------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Tickets currently waiting in buckets."""
        with self._lock:
            return sum(len(b.tickets) for b in self._buckets.values())

    @property
    def num_buckets(self) -> int:
        """Distinct (compatibility class × priority) buckets accumulating."""
        with self._lock:
            return len(self._buckets)
