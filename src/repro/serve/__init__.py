"""repro.serve — an async batched-solver service over the paper's kernels.

The repository's solvers consume *pre-assembled batches*; real workloads
(the paper's combustion/integrator applications, or any request-serving
deployment) produce *individual systems*. This package closes that gap:

* :mod:`repro.serve.request` — one-system :class:`SolveRequest`,
  compatibility :class:`BatchKey` (format x shape x sparsity pattern x
  solver x preconditioner x criterion x tolerance x precision),
  :class:`SolveTicket` promises and :class:`SolveOutcome` responses.
* :mod:`repro.serve.batcher` — the dynamic micro-batcher: per-key buckets
  flushing on max-batch-size or max-wait-deadline.
* :mod:`repro.serve.plan_cache` — resolved Figure-3 dispatch + Section-3.6
  launch geometry cached per configuration (hit/miss metrics).
* :mod:`repro.serve.workers` — a worker pool, one thread per simulated
  device queue/stream; flushes run as host tasks on the device timeline.
* :mod:`repro.serve.service` — :class:`SolverService`: admission control
  with backpressure, per-request timeouts, direct-LU fallback degradation,
  tracer spans for every stage.

Quickstart::

    from repro.serve import ServeConfig, SolveRequest, SolverService

    with SolverService(ServeConfig(max_batch_size=32, max_wait_ms=1.0)) as svc:
        tickets = [svc.submit(SolveRequest(a_i, b_i, solver="cg",
                                           preconditioner="jacobi"))
                   for a_i, b_i in systems]
        solutions = [t.result(timeout=10.0).x for t in tickets]
"""

from repro.serve.batcher import DEADLINE, DRAIN, SIZE, FlushBatch, MicroBatcher
from repro.serve.breaker import CircuitBreaker
from repro.serve.config import ServeConfig
from repro.serve.qos import PRIORITIES, FairShareLedger
from repro.serve.plan_cache import ExecutionPlan, PlanCache, PlanKey
from repro.serve.request import (
    BatchKey,
    SolveOutcome,
    SolveRequest,
    SolveTicket,
    assemble_batch,
)
from repro.serve.service import SolverService
from repro.serve.workers import Worker, WorkerPool

__all__ = [
    "BatchKey",
    "CircuitBreaker",
    "DEADLINE",
    "DRAIN",
    "ExecutionPlan",
    "FairShareLedger",
    "FlushBatch",
    "MicroBatcher",
    "PRIORITIES",
    "PlanCache",
    "PlanKey",
    "ServeConfig",
    "SIZE",
    "SolveOutcome",
    "SolveRequest",
    "SolveTicket",
    "SolverService",
    "Worker",
    "WorkerPool",
    "assemble_batch",
]
