"""The async batched-solver service: admission → micro-batch → solve → scatter.

:class:`SolverService` is the request-level realization of the paper's
fusion argument: individual solve requests are admitted into bounded
queues, coalesced by the dynamic micro-batcher into shared-pattern batches,
dispatched through the plan cache onto a worker pool of simulated devices,
and scattered back into per-request outcomes. Every stage emits tracer
spans (``serve.flush`` > ``serve.assembly`` / ``serve.solve`` /
``serve.fallback`` / ``serve.scatter``) and metrics on the service's
:class:`~repro.observability.metrics.MetricsRegistry`.

Robustness behaviours:

* **Backpressure** — past ``max_pending`` admitted-but-incomplete requests,
  :meth:`submit` raises :class:`~repro.exceptions.ServiceSaturatedError`
  carrying a retry-after hint; nothing is enqueued.
* **Per-request timeout** — a request whose deadline passes while it is
  still queued completes with
  :class:`~repro.exceptions.RequestTimeoutError` at flush time instead of
  being solved.
* **Graceful degradation** — a request that fails or does not converge in
  its flushed batch is retried individually with the direct-LU fallback
  solver; its co-batched neighbours are unaffected.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace as dc_replace

import numpy as np

from repro.chaos.injector import ChaosInjector, current_chaos
from repro.core.solver.base import BatchSolveResult
from repro.exceptions import (
    CircuitOpenError,
    QuotaExceededError,
    RequestTimeoutError,
    ServiceClosedError,
    ServiceSaturatedError,
)
from repro.multi.distributed import partition_batch
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import Tracer, current_tracer, use_tracer
from repro.recorder.classify import solve_summary
from repro.recorder.recorder import (
    TRIGGER_BREAKER_OPEN,
    TRIGGER_ERROR_5XX,
    TRIGGER_SANITIZER_TRIP,
    FlightRecorder,
    current_recorder,
)
from repro.telemetry.events import (
    BREAKER_CLOSE,
    BREAKER_OPEN,
    QUOTA_REJECTED,
    REQUEST_ADMITTED,
    REQUEST_FAILED,
    REQUEST_FALLBACK,
    REQUEST_FLUSHED,
    REQUEST_REJECTED,
    REQUEST_SOLVED,
    REQUEST_TIMED_OUT,
    SANITIZER_TRIP,
    EventLog,
    current_event_log,
)
from repro.telemetry.hub import current_hub
from repro.serve.batcher import FlushBatch, MicroBatcher
from repro.serve.breaker import CircuitBreaker
from repro.serve.config import ServeConfig
from repro.serve.plan_cache import ExecutionPlan, PlanCache
from repro.serve.request import (
    TIMED_OUT,
    SolveOutcome,
    SolveRequest,
    SolveTicket,
    assemble_batch,
    monotonic_ns,
)
from repro.serve.workers import Worker, WorkerPool
from repro.sycl.device import SyclDevice, pvc_stack_device

#: Chrome-trace lane base for intra-flush shards (matches repro.multi).
_SHARD_LANE_BASE = 100


class SolverService:
    """Serve individual solve requests through the batched solvers.

    Usage::

        with SolverService(ServeConfig(max_batch_size=32)) as service:
            tickets = [service.submit(req) for req in requests]
            outcomes = [t.result(timeout=5.0) for t in tickets]

    A ``tracer`` passed here is installed for the duration of every flush
    execution, so traces show queue-wait, assembly, solve and scatter
    spans on per-worker lanes.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        device: SyclDevice | None = None,
        tracer: Tracer | None = None,
        tuning_db: object | None = None,
        chaos: ChaosInjector | None = None,
        recorder: FlightRecorder | None = None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        # fault injection: an explicit injector wins, else whatever a
        # surrounding `use_chaos` scope (the `repro chaos` wrapper) installed
        self.chaos = chaos if chaos is not None else current_chaos()
        # black-box flight recorder: explicit wins, else the ambient
        # `use_recorder` scope; None keeps the serving hot path untouched
        self.recorder = recorder if recorder is not None else current_recorder()
        self.device = device if device is not None else self._default_device()
        self.metrics = MetricsRegistry()
        # structured event log: a `repro slo <command>` wrapper hub wins,
        # then a process-installed log, then a private bounded ring
        hub = current_hub()
        if hub is not None:
            hub.register(self.metrics)
            self.events: EventLog = hub.event_log
        else:
            installed = current_event_log()
            self.events = (
                installed
                if installed is not None
                else EventLog(capacity=self.config.event_log_capacity)
            )
            if installed is None and self.recorder is not None:
                # a private log taps this service's own recorder, so a
                # fleet shard's events land in its per-shard black box
                self.events.recorder = self.recorder
        if tuning_db is None and self.config.tuning_db_path is not None:
            from repro.tune.db import TuningDB

            tuning_db = TuningDB(
                self.config.tuning_db_path,
                metrics=self.metrics,
                event_log=self.events,
            )
        self.tuning_db = tuning_db
        self.plan_cache = PlanCache(
            self.device,
            metrics=self.metrics,
            capacity=self.config.plan_cache_capacity,
            tuning_db=tuning_db,
            event_log=self.events,
        )
        self.batcher = MicroBatcher(
            self.config.max_batch_size,
            self.config.max_wait_ns,
            fair_share=self.config.fair_share,
        )
        self.pool = WorkerPool(
            self.config.num_workers, backend=self.config.backend, device=device
        )
        self.breaker = (
            CircuitBreaker(
                window=self.config.breaker_window,
                min_events=self.config.breaker_min_events,
                threshold=self.config.breaker_threshold,
                cooldown_s=self.config.breaker_cooldown_s,
                on_open=self._on_breaker_open,
                on_close=self._on_breaker_close,
            )
            if self.config.breaker_enabled
            else None
        )
        self._tracer = tracer
        self._pending = 0
        self._tenant_pending: dict[str, int] = {}
        self._closed = False
        self._abort_close = False
        self._pool_closing = False
        self._state = threading.Condition()
        self._flusher = threading.Thread(
            target=self._flush_loop, name="serve-flusher", daemon=True
        )
        self._flusher.start()

    def _default_device(self) -> SyclDevice:
        if self.config.backend == "cuda":
            from repro.cudasim.device import a100_device

            return a100_device()
        return pvc_stack_device(1)

    # -- admission -------------------------------------------------------------

    def submit(self, request: SolveRequest) -> SolveTicket:
        """Admit one request; returns its ticket or raises on backpressure.

        Raises :class:`ServiceSaturatedError` (with ``retry_after_s``) when
        ``max_pending`` requests are in flight,
        :class:`~repro.exceptions.QuotaExceededError` when the request's
        tenant is over its per-tenant quota, :class:`ServiceClosedError`
        after :meth:`close`.
        """
        self._stamp_sampling(request)
        tenant = request.tenant
        with self._state:
            if self._closed:
                raise ServiceClosedError("service is closed")
            if self._pending >= self.config.max_pending:
                self.metrics.counter("serve.rejected").inc()
                self.events.emit(
                    REQUEST_REJECTED,
                    ctx=request.trace_context,
                    critical=True,
                    pending=self._pending,
                    max_pending=self.config.max_pending,
                )
                raise ServiceSaturatedError(
                    f"service saturated: {self._pending} requests pending "
                    f"(max_pending={self.config.max_pending})",
                    retry_after_s=self.config.retry_after_ms / 1e3,
                )
            quota = self.config.quota_for(tenant)
            tenant_pending = self._tenant_pending.get(tenant, 0)
            if quota is not None and tenant_pending >= quota:
                self.metrics.counter("serve.quota_rejected").labels(
                    tenant=tenant
                ).inc()
                self.events.emit(
                    QUOTA_REJECTED,
                    ctx=request.trace_context,
                    critical=True,
                    tenant=tenant,
                    pending=tenant_pending,
                    quota=quota,
                )
                raise QuotaExceededError(
                    f"tenant {tenant!r} over quota: {tenant_pending} requests "
                    f"pending (quota={quota})",
                    tenant=tenant,
                    retry_after_s=self.config.retry_after_ms / 1e3,
                )
            self._pending += 1
            self._tenant_pending[tenant] = tenant_pending + 1
            self.metrics.gauge("serve.pending").set(self._pending)
            self.metrics.gauge("serve.tenant_pending").labels(tenant=tenant).set(
                self._tenant_pending[tenant]
            )

        now = monotonic_ns()
        timeout_ns = self.config.request_timeout_ns
        ticket = SolveTicket(
            request,
            submitted_ns=now,
            deadline_ns=None if timeout_ns is None else now + timeout_ns,
        )
        self.metrics.counter("serve.accepted").inc()
        self.events.emit(
            REQUEST_ADMITTED,
            ctx=request.trace_context,
            solver=request.solver,
            num_rows=request.num_rows,
            matrix_format=request.matrix_format,
        )
        flush = self.batcher.offer(ticket)
        if flush is not None:
            self._dispatch(flush)
        else:
            with self._state:
                self._state.notify_all()  # flusher re-arms its deadline
        # close-race sweep: if close() ran between the admission check above
        # and the offer, the flusher is gone and a parked ticket would hang
        # forever. Whoever observes the race clears the stragglers — failed
        # fast on an abort close, dispatched on a drain close (idempotent:
        # finished tickets ignore further completion, and _dispatch fails
        # tickets itself once the pool is shutting down).
        with self._state:
            closed, abort = self._closed, self._abort_close
        if closed:
            if abort:
                self._fail_parked()
            else:
                self.flush()
        return ticket

    def solve(self, request: SolveRequest, timeout: float | None = None) -> SolveOutcome:
        """Submit one request and block for its outcome (convenience)."""
        return self.submit(request).result(timeout)

    def _stamp_sampling(self, request: SolveRequest) -> None:
        """Apply the head-sampling decision to the request's trace context.

        Deterministic in the trace id (hash-mod, like W3C trace-flags
        propagation), so a request is sampled consistently by every
        component that sees it — and re-submission keeps the decision.
        """
        rate = self.config.telemetry_sample_rate
        ctx = request.trace_context
        if rate >= 1.0:
            sampled = True
        elif rate <= 0.0:
            sampled = False
        else:
            sampled = int(ctx.trace_id[:8], 16) < rate * 0x1_0000_0000
        if sampled != ctx.sampled:
            request.trace_context = ctx.with_sampled(sampled)

    # -- flush scheduling ---------------------------------------------------------

    def flush(self) -> None:
        """Force-flush every accumulating bucket now (benchmarks, shutdown)."""
        for flush in self.batcher.drain():
            self._dispatch(flush)

    def _flush_loop(self) -> None:
        while True:
            with self._state:
                if self._closed:
                    return
                deadline = self.batcher.next_deadline_ns()
                if deadline is None:
                    self._state.wait()
                else:
                    wait_s = max(0.0, (deadline - monotonic_ns()) / 1e9)
                    self._state.wait(timeout=wait_s)
                if self._closed:
                    return
            for flush in self.batcher.due():
                self._dispatch(flush)

    def _dispatch(self, flush: FlushBatch) -> None:
        with self._state:
            if self._pool_closing:
                # the pool's stop sentinels are already queued: a job enqueued
                # now would never run and its tickets would hang
                for ticket in flush.tickets:
                    self._finish_fail(
                        ticket, ServiceClosedError("service closed before flush")
                    )
                return
        self.metrics.counter("serve.flushes").inc()
        self.metrics.counter(f"serve.flushes.{flush.reason}").inc()
        self.metrics.histogram("serve.batch_size").observe(flush.size)
        self.pool.submit(lambda worker: self._execute_flush(flush, worker))

    def _fail_parked(self) -> None:
        """Fail every ticket still parked in the batcher (abort/close paths)."""
        for flush in self.batcher.drain():
            for ticket in flush.tickets:
                self._finish_fail(
                    ticket, ServiceClosedError("service closed before flush")
                )

    # -- flush execution ------------------------------------------------------------

    def _execute_flush(self, flush: FlushBatch, worker: Worker) -> None:
        with use_tracer(self._tracer):
            tracer = current_tracer()
            now = monotonic_ns()
            key = flush.key
            with tracer.span(
                "serve.flush",
                category="serve",
                tid=worker.lane,
                batch_size=flush.size,
                reason=flush.reason,
                flush_id=flush.flush_id,
                solver=key.solver,
                preconditioner=key.preconditioner,
                matrix_format=key.matrix_format,
                num_rows=key.num_rows,
                worker=worker.name,
            ) as span:
                live: list[SolveTicket] = []
                for ticket in flush.tickets:
                    ticket.flushed_ns = now
                    if ticket.expired(now):
                        self.metrics.counter("serve.timeouts").inc()
                        self._finish_fail(
                            ticket,
                            RequestTimeoutError(
                                f"request spent {(now - ticket.submitted_ns) / 1e6:.1f} ms "
                                "queued, past its timeout"
                            ),
                            status=TIMED_OUT,
                        )
                    else:
                        wait_ms = (now - ticket.submitted_ns) / 1e6
                        self.metrics.histogram("serve.queue_wait_ms").observe(wait_ms)
                        self.metrics.log_histogram("serve.queue_wait_hdr_ms").observe(
                            wait_ms
                        )
                        # batch fan-in: the shared flush span belongs to no
                        # single request, so it *links* every live request's
                        # root context (OpenTelemetry span links)
                        span.link(ticket.trace_context)
                        self.events.emit(
                            REQUEST_FLUSHED,
                            ctx=ticket.trace_context,
                            flush_id=flush.flush_id,
                            reason=flush.reason,
                            batch_size=flush.size,
                            queue_wait_ms=round(wait_ms, 3),
                        )
                        live.append(ticket)
                if not live:
                    span.set("all_timed_out", True)
                    return

                try:
                    with tracer.span("serve.assembly", category="serve", tid=worker.lane):
                        matrix, b, x0 = assemble_batch([t.request for t in live])
                    if self.chaos is not None:
                        # the fault-injection point: may delay the worker,
                        # corrupt the assembled batch, or raise (taking the
                        # whole-flush failure path below)
                        self.chaos.on_flush(self, flush, worker, matrix, b)
                    with tracer.span(
                        "serve.plan", category="serve", tid=worker.lane
                    ) as plan_span:
                        plan, cache_hit = self.plan_cache.plan_for(key)
                        plan_span.set("cache_hit", cache_hit)
                    span.set("plan_cache_hit", cache_hit)
                    solve_start = monotonic_ns()
                    with tracer.span(
                        "serve.solve",
                        category="serve",
                        tid=worker.lane,
                        device=worker.device_name,
                        **plan.launch_plan(matrix.num_batch).__dict__,
                    ):
                        result = self._solve_batch(plan, matrix, b, x0, worker)
                    solve_ms = (monotonic_ns() - solve_start) / 1e6
                    self.metrics.log_histogram("serve.flush_solve_hdr_ms").observe(
                        solve_ms
                    )
                    self.metrics.counter("serve.flush_solves").labels(
                        backend=self.config.backend, solver=key.solver
                    ).inc()
                    if self.recorder is not None:
                        self._record_forensics(
                            flush, worker, live, result, plan, solve_ms, cache_hit
                        )
                except Exception as exc:  # whole-flush failure → per-request rescue
                    self.metrics.counter("serve.flush_failures").inc()
                    span.set("error", type(exc).__name__)
                    self._attribute_failure(exc, live, flush)
                    self._rescue_flush(live, exc, worker, cache_hit=False)
                    return

                overrides = self._apply_fallbacks(
                    live, matrix, b, result, worker, tracer, flush
                )

                with tracer.span("serve.scatter", category="serve", tid=worker.lane):
                    for i, ticket in enumerate(live):
                        if i in overrides:
                            outcome_src, used_fallback = overrides[i]
                        else:
                            outcome_src, used_fallback = result.select([i]), False
                        # the per-request leg of the journey: pinned to the
                        # request's own trace, inside the shared flush
                        with tracer.span(
                            "serve.request",
                            category="serve.request",
                            tid=worker.lane,
                            context=ticket.trace_context,
                            request_id=ticket.request.request_id,
                            flush_id=flush.flush_id,
                            index=i,
                        ):
                            self._finish_ok(
                                ticket,
                                SolveOutcome(
                                    x=outcome_src.x[0],
                                    iterations=int(outcome_src.iterations[0]),
                                    residual_norm=float(outcome_src.residual_norms[0]),
                                    converged=bool(outcome_src.converged[0]),
                                    solver_name=outcome_src.solver_name,
                                    used_fallback=used_fallback,
                                    batch_size=len(live),
                                    queue_wait_ms=(ticket.queue_wait_ns or 0) / 1e6,
                                    solve_ms=solve_ms,
                                    worker=worker.device_name,
                                    plan_cache_hit=cache_hit,
                                ),
                            )

    def _record_forensics(
        self,
        flush: FlushBatch,
        worker: Worker,
        live: list[SolveTicket],
        result: BatchSolveResult,
        plan: ExecutionPlan,
        solve_ms: float,
        cache_hit: bool,
    ) -> None:
        """Feed the flight recorder's rings after a flushed batch solve.

        One flush record (the span-level facts plus victim trace links),
        one convergence-forensics record (per-system classes and the
        worst system's downsampled residual curve), and a rate-limited
        metric-registry delta. Never raises into the flush path — a
        recorder bug must not fail a solve that already succeeded.
        """
        try:
            trace_ids = [t.trace_context.trace_id for t in live]
            self.recorder.record_flush(
                flush_id=flush.flush_id,
                reason=flush.reason,
                batch_size=flush.size,
                worker=worker.name,
                solver=result.solver_name,
                solve_ms=round(solve_ms, 3),
                cache_hit=cache_hit,
                trace_ids=trace_ids,
            )
            logger = result.logger
            curves = logger.residual_curves()
            frozen = logger.frozen
            if len(curves) != result.num_batch:
                # sharded flush: the logger covers shard 0 only; degrade
                # to single-point curves so classes still line up 1:1
                curves = [
                    np.asarray([result.residual_norms[i]])
                    for i in range(result.num_batch)
                ]
                frozen = np.zeros(result.num_batch, dtype=bool)
            summary = solve_summary(
                curves,
                converged=result.converged,
                frozen=frozen,
                iterations=result.iterations,
                max_iterations=getattr(plan.resolved, "max_iterations", 0),
                solver=result.solver_name,
                backend=self.config.backend,
            )
            summary["flush_id"] = flush.flush_id
            summary["trace_ids"] = trace_ids
            self.recorder.record_solve(summary)
            self.recorder.observe_registry(self.metrics)
        except Exception:
            self.metrics.counter("serve.recorder_errors").inc()

    def _attribute_failure(
        self, exc: Exception, live: list[SolveTicket], flush: FlushBatch
    ) -> None:
        """Name the victim requests on a flush-level failure.

        A sanitizer trip aborts the whole fused launch; its structured
        :class:`~repro.sanitize.report.SanitizerReport` (carried on the
        exception) gains the trace/request ids of every co-batched request
        so the report names victims, not just the batch. The trip is also
        recorded as a pinned structured event.
        """
        report = getattr(exc, "report", None)
        if report is None:
            return
        trace_ids = tuple(t.trace_context.trace_id for t in live)
        request_ids = tuple(t.request.request_id for t in live)
        try:
            report.trace_ids = trace_ids
            report.request_ids = request_ids
        except (AttributeError, TypeError):  # frozen or foreign report object
            pass
        self.events.emit(
            SANITIZER_TRIP,
            critical=True,
            kind=getattr(report, "kind", type(exc).__name__),
            kernel=getattr(report, "kernel", ""),
            flush_id=flush.flush_id,
            trace_ids=list(trace_ids),
            request_ids=list(request_ids),
        )
        if self.recorder is not None:
            self.recorder.trigger(
                TRIGGER_SANITIZER_TRIP,
                trace_id=trace_ids[0] if trace_ids else None,
                kind=getattr(report, "kind", type(exc).__name__),
                kernel=getattr(report, "kernel", ""),
                flush_id=flush.flush_id,
                trace_ids=list(trace_ids),
            )

    def _solve_batch(
        self,
        plan: ExecutionPlan,
        matrix,
        b: np.ndarray,
        x0: np.ndarray | None,
        worker: Worker,
    ) -> BatchSolveResult:
        """Solve one assembled flush on the worker's device context.

        The solve runs as a host task on the worker's queue/stream (so it
        lands in the device event log); large flushes are optionally
        block-partitioned across simulated device lanes, the paper's
        multi-GPU distribution applied within a flush.
        """
        shards = self.config.shards_per_flush
        key = plan.resolved

        if self.config.execution == "kernel":
            kernel_run = self._kernel_solve(plan, matrix, b, x0, worker)
            if kernel_run is not None:
                result, _event = worker.context.submit_host_task(
                    kernel_run,
                    name=f"serve.batch_{key.solver_cls.solver_name}",
                    num_batch=matrix.num_batch,
                    execution="kernel",
                )
                self.metrics.counter("serve.kernel_solves").labels(
                    backend=self.config.backend,
                    solver=key.solver_cls.solver_name,
                ).inc()
                self._device_dwell(worker)
                return result
            self.metrics.counter("serve.kernel_fallbacks").labels(
                solver=key.solver_cls.solver_name
            ).inc()

        def run() -> BatchSolveResult:
            if shards <= 1 or matrix.num_batch < shards:
                solver = plan.build_solver(matrix)
                return solver.solve(b, x0=x0)
            tracer = current_tracer()
            parts = partition_batch(matrix.num_batch, shards)
            results = []
            for rank, sl in enumerate(parts):
                with tracer.span(
                    f"serve.shard{rank}",
                    category="serve.lane",
                    tid=_SHARD_LANE_BASE + rank,
                    rank=rank,
                    batch_items=sl.stop - sl.start,
                ):
                    solver = plan.build_solver(matrix.take_batch(sl))
                    results.append(
                        solver.solve(b[sl], x0=None if x0 is None else x0[sl])
                    )
            return BatchSolveResult(
                x=np.vstack([r.x for r in results]),
                iterations=np.concatenate([r.iterations for r in results]),
                residual_norms=np.concatenate([r.residual_norms for r in results]),
                converged=np.concatenate([r.converged for r in results]),
                logger=results[0].logger,
                ledger=results[0].ledger,
                solver_name=results[0].solver_name,
            )

        result, _event = worker.context.submit_host_task(
            run,
            name=f"serve.batch_{key.solver_cls.solver_name}",
            num_batch=matrix.num_batch,
        )
        self._device_dwell(worker)
        return result

    def _device_dwell(self, worker: Worker) -> None:
        """Hold the worker's device busy for the configured dwell.

        A real sleep so it releases the GIL — the device-bound part of a
        flush overlaps across shards/workers the way real device kernels
        overlap with the host (see ``ServeConfig.device_dwell_ms``).
        """
        dwell = self.config.device_dwell_s
        if dwell > 0.0:
            with current_tracer().span(
                "serve.device_dwell",
                category="serve",
                tid=worker.lane,
                dwell_ms=self.config.device_dwell_ms,
            ):
                time.sleep(dwell)

    def _kernel_solve(self, plan, matrix, b, x0, worker):
        """A thunk running the flush through the fused device kernels.

        Returns ``None`` when the resolved dispatch falls outside what the
        fused kernels cover (solver, preconditioner, criterion, format,
        warm starts, sharding) or the worker context speaks the CUDA
        dialect — the caller then falls back to the vectorized path and
        counts the miss on ``serve.kernel_fallbacks``.
        """
        from repro.core.logger import ConvergenceLogger
        from repro.core.counters import TrafficLedger
        from repro.core.preconditioner.identity import BatchIdentity
        from repro.core.preconditioner.jacobi import BatchJacobi
        from repro.core.stop import RelativeResidual
        from repro.kernels.bicgstab_kernel import run_batch_bicgstab_on_device
        from repro.kernels.cg_kernel import run_batch_cg_on_device
        from repro.kernels.richardson_kernel import run_batch_richardson_on_device
        from repro.sycl.queue import Queue

        resolved = plan.resolved
        name = resolved.solver_cls.solver_name
        if (
            name not in ("cg", "bicgstab", "richardson")
            or x0 is not None
            or resolved.matrix_format != "csr"
            or resolved.criterion_cls is not RelativeResidual
            or resolved.preconditioner_cls not in (None, BatchIdentity, BatchJacobi)
            or self.config.shards_per_flush > 1
            or not isinstance(worker.context, Queue)
        ):
            return None

        def run() -> BatchSolveResult:
            mat = resolved.prepare(matrix)
            bb = np.asarray(b, dtype=mat.dtype)
            inv_diag = None
            if resolved.preconditioner_cls is BatchJacobi:
                precond = BatchJacobi(mat, **dict(resolved.preconditioner_options))
                inv_diag = precond.inv_diag
            nb = mat.num_batch
            history = np.full((nb, resolved.max_iterations + 1), np.nan)
            common = dict(
                inv_diag=inv_diag,
                tolerance=resolved.tolerance,
                max_iterations=resolved.max_iterations,
                queue=worker.context,
                res_history=history,
            )
            if name == "cg":
                x, iters, _ = run_batch_cg_on_device(
                    worker.context.device, mat, bb, **common
                )
            elif name == "bicgstab":
                x, iters, _ = run_batch_bicgstab_on_device(
                    worker.context.device, mat, bb, **common
                )
            else:
                omega = float(dict(resolved.solver_options).get("omega", 1.0))
                x, iters, _ = run_batch_richardson_on_device(
                    worker.context.device, mat, bb, omega=omega, **common
                )
            iters = np.asarray(iters, dtype=np.int64)
            final = history[np.arange(nb), iters]
            thresholds = resolved.tolerance * np.linalg.norm(bb, axis=1)
            logger = ConvergenceLogger(nb, keep_history=resolved.keep_history)
            logger.iterations = iters.copy()
            logger.final_residuals = final.copy()
            logger.mark_converged(final <= thresholds)
            # forensics: the device-recorded residual history becomes the
            # always-on bounded curves the flight recorder classifies from
            logger.adopt_history_curves(history, iters)
            return BatchSolveResult(
                x=np.asarray(x, dtype=np.float64),
                iterations=iters,
                residual_norms=final,
                converged=final <= thresholds,
                logger=logger,
                ledger=TrafficLedger(fp_bytes=np.dtype(resolved.dtype).itemsize),
                solver_name=name,
            )

        return run

    # -- graceful degradation ----------------------------------------------------------

    def _apply_fallbacks(
        self,
        live: list[SolveTicket],
        matrix,
        b: np.ndarray,
        result: BatchSolveResult,
        worker: Worker,
        tracer,
        flush: FlushBatch | None = None,
    ) -> dict[int, tuple[BatchSolveResult, bool]]:
        """Retry non-converged systems one-by-one with the direct-LU solver.

        Returns per-index overrides; failed retries complete their tickets
        here (and are returned as overrides pointing at the iterative
        result so the scatter loop skips them — finished tickets ignore
        further completion).
        """
        overrides: dict[int, tuple[BatchSolveResult, bool]] = {}
        if not self.config.fallback:
            return overrides
        bad = [i for i in range(len(live)) if not bool(result.converged[i])]
        if not bad:
            return overrides
        if not self._allow_degraded():
            # fallback storm: the breaker is open, shed the degraded work
            # fast instead of amplifying overload with per-request LU solves
            for i in bad:
                self._shed_degraded(live[i])
                overrides[i] = (result.select([i]), False)
            return overrides
        fallback_key = dc_replace(
            live[0].request.batch_key, solver="direct", preconditioner="identity"
        )
        plan, _hit = self.plan_cache.plan_for(fallback_key)
        for i in bad:
            ctx = live[i].trace_context
            with tracer.span(
                "serve.fallback",
                category="serve",
                tid=worker.lane,
                context=ctx,
                index=i,
                solver="direct",
                request_id=live[i].request.request_id,
            ):
                try:
                    solver = plan.build_solver(matrix.take_batch(slice(i, i + 1)))
                    fallback_result = solver.solve(b[i : i + 1])
                except Exception as exc:
                    self.metrics.counter("serve.fallback_failures").inc()
                    if self.breaker is not None:
                        self.breaker.record(bad=True)
                    self._finish_fail(live[i], exc)
                    overrides[i] = (result.select([i]), False)
                    continue
            self.metrics.counter("serve.fallbacks").inc()
            self.events.emit(
                REQUEST_FALLBACK,
                ctx=ctx,
                critical=True,
                reason="not_converged",
                flush_id=flush.flush_id if flush is not None else "",
            )
            overrides[i] = (fallback_result, True)
        return overrides

    def _rescue_flush(
        self, live: list[SolveTicket], error: Exception, worker: Worker, cache_hit: bool
    ) -> None:
        """Whole-flush failure: retry each request alone with the fallback."""
        if not self.config.fallback:
            for ticket in live:
                self._finish_fail(ticket, error)
            return
        if not self._allow_degraded():
            for ticket in live:
                self._shed_degraded(ticket)
            return
        for ticket in live:
            try:
                matrix, b, _x0 = assemble_batch([ticket.request])
                fallback_key = dc_replace(
                    ticket.request.batch_key, solver="direct", preconditioner="identity"
                )
                plan, _hit = self.plan_cache.plan_for(fallback_key)
                solver = plan.build_solver(matrix)
                result = solver.solve(b)
            except Exception as exc:
                self.metrics.counter("serve.fallback_failures").inc()
                if self.breaker is not None:
                    self.breaker.record(bad=True)
                self._finish_fail(ticket, exc)
                continue
            self.metrics.counter("serve.fallbacks").inc()
            self.events.emit(
                REQUEST_FALLBACK,
                ctx=ticket.trace_context,
                critical=True,
                reason="flush_failed",
                error=type(error).__name__,
            )
            self._finish_ok(
                ticket,
                SolveOutcome(
                    x=result.x[0],
                    iterations=int(result.iterations[0]),
                    residual_norm=float(result.residual_norms[0]),
                    converged=bool(result.converged[0]),
                    solver_name=result.solver_name,
                    used_fallback=True,
                    batch_size=1,
                    queue_wait_ms=(ticket.queue_wait_ns or 0) / 1e6,
                    solve_ms=0.0,
                    worker=worker.device_name,
                    plan_cache_hit=cache_hit,
                ),
            )

    # -- circuit breaking --------------------------------------------------------------

    def _allow_degraded(self) -> bool:
        """May the per-request fallback path run (breaker closed/half-open)?"""
        return self.breaker is None or self.breaker.allow_degraded()

    def _shed_degraded(self, ticket: SolveTicket) -> None:
        """Fail one degraded request fast while the breaker is open."""
        self.metrics.counter("serve.breaker_fast_fails").inc()
        self._finish_fail(
            ticket,
            CircuitOpenError(
                "fallback circuit open: degraded retries are being shed",
                retry_after_s=self.config.breaker_cooldown_s,
            ),
        )

    def _on_breaker_open(self, breaker: CircuitBreaker) -> None:
        self.metrics.counter("serve.breaker_opens").inc()
        self.metrics.gauge("serve.breaker_state").set(1)
        self.events.emit(
            BREAKER_OPEN,
            critical=True,
            bad_fraction=round(breaker.bad_fraction(), 3),
            window=breaker.window,
            cooldown_s=breaker.cooldown_s,
            opens=breaker.opens,
        )
        if self.recorder is not None:
            self.recorder.trigger(
                TRIGGER_BREAKER_OPEN,
                bad_fraction=round(breaker.bad_fraction(), 3),
                opens=breaker.opens,
            )

    def _on_breaker_close(self, breaker: CircuitBreaker) -> None:
        self.metrics.counter("serve.breaker_closes").inc()
        self.metrics.gauge("serve.breaker_state").set(0)
        self.events.emit(BREAKER_CLOSE, critical=True, closes=breaker.closes)

    # -- completion --------------------------------------------------------------------

    def _finish_ok(self, ticket: SolveTicket, outcome: SolveOutcome) -> None:
        if ticket.done():
            return
        if self.breaker is not None:
            self.breaker.record(bad=outcome.used_fallback)
        ctx = ticket.trace_context
        outcome.trace_id = ctx.trace_id
        outcome.request_id = ctx.request_id
        self.metrics.counter("serve.served").inc()
        latency_ms = (monotonic_ns() - ticket.submitted_ns) / 1e6
        hdr = self.metrics.log_histogram("serve.latency_hdr_ms")
        # tail-based sampling: judge against the p99 *before* folding this
        # sample in, once enough history exists to make p99 meaningful
        tail = hdr.count >= 64 and latency_ms >= hdr.percentile(99.0)
        self.metrics.histogram("serve.latency_ms").observe(latency_ms)
        # HDR-style streaming twin: bounded memory, mergeable, and what the
        # Prometheus exposition renders as a classic histogram — with the
        # trace id as the bucket's exemplar, so p99 names a real request
        hdr.observe(latency_ms, trace_id=ctx.trace_id)
        self.events.emit(
            REQUEST_SOLVED,
            ctx=ctx,
            critical=bool(outcome.used_fallback or tail),
            latency_ms=round(latency_ms, 3),
            iterations=outcome.iterations,
            converged=outcome.converged,
            fallback=outcome.used_fallback,
            batch_size=outcome.batch_size,
            tail=tail,
        )
        ticket._complete(outcome)
        self._release_one(ticket)

    def _finish_fail(self, ticket: SolveTicket, error: Exception, status: str = "failed") -> None:
        if ticket.done():
            return
        self.metrics.counter("serve.failed").inc()
        status_code = getattr(error, "status_code", 500)
        self.events.emit(
            REQUEST_TIMED_OUT if status == TIMED_OUT else REQUEST_FAILED,
            ctx=ticket.trace_context,
            critical=True,
            error=type(error).__name__,
            error_code=getattr(error, "error_code", "internal"),
            status_code=status_code,
            detail=str(error)[:160],
        )
        if status_code >= 500 and self.recorder is not None:
            self.recorder.trigger(
                TRIGGER_ERROR_5XX,
                trace_id=ticket.trace_context.trace_id,
                request_id=ticket.request.request_id,
                error=type(error).__name__,
                status_code=status_code,
            )
        ticket._fail(error, status=status)
        self._release_one(ticket)

    def _release_one(self, ticket: SolveTicket) -> None:
        tenant = getattr(ticket.request, "tenant", "default")
        with self._state:
            self._pending -= 1
            remaining = self._tenant_pending.get(tenant, 1) - 1
            if remaining <= 0:
                self._tenant_pending.pop(tenant, None)
                remaining = 0
            else:
                self._tenant_pending[tenant] = remaining
            self.metrics.gauge("serve.pending").set(self._pending)
            self.metrics.gauge("serve.tenant_pending").labels(tenant=tenant).set(
                remaining
            )
            self._state.notify_all()

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests admitted but not yet completed."""
        with self._state:
            return self._pending

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until every admitted request has completed."""
        with self._state:
            return self._state.wait_for(lambda: self._pending == 0, timeout=timeout)

    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting requests; optionally serve out everything queued.

        ``drain=True`` flushes the micro-batcher and serves every admitted
        request before shutting the workers down. ``drain=False`` aborts:
        requests still waiting in the batcher complete immediately with
        :class:`~repro.exceptions.ServiceClosedError` (their tickets never
        hang), while flushes already handed to the worker pool run out.

        A :meth:`submit` racing with either close never leaves a ticket
        hanging: whichever side observes the race sweeps the batcher (the
        straggler is failed fast on an abort, dispatched — or failed once
        the pool is already stopping — on a drain).
        """
        with self._state:
            if self._closed:
                return
            self._closed = True
            self._abort_close = not drain
            self._state.notify_all()
        if drain:
            self.flush()
            self.pool.join()
        else:
            self._fail_parked()
        self._flusher.join(timeout=timeout)
        with self._state:
            self._pool_closing = True
        # one last sweep: a racing submit may have parked a ticket between
        # the drain/fail above and the pool-closing flag being raised
        if drain:
            self.flush()
            self.pool.join()
        else:
            self._fail_parked()
        self.pool.close()

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)
