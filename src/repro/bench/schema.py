"""Shared schema for the committed ``BENCH_*.json`` artifacts.

Every benchmark script at ``scripts/bench_*.py`` historically invented its
own top-level JSON shape, which made cross-benchmark tooling (the
perf-regression gate in ``scripts/check_regression.py``) impossible to
write generically. This module fixes the envelope:

.. code-block:: json

    {
      "schema_version": 1,
      "benchmark": "serve_throughput",
      "git_rev": "fbbef9b...",
      "date": "2026-08-06",
      "workload": { ... knobs that define the experiment ... },
      "metrics":  { ... everything measured ... },
      "notes": "free-form provenance"
    }

``workload`` holds the *inputs* (sizes, rates, repeat counts) and
``metrics`` the *outputs* (timings, throughputs, ratios, nested sweeps).
The regression gate only ever looks inside ``metrics``, addressed by
dotted paths produced by :func:`flatten_metrics` — nested dicts join with
``"."`` and list elements by index, so a sweep point's throughput is e.g.
``sweep.2.throughput_rps``.

Only the envelope is fixed; the contents of ``workload``/``metrics`` stay
benchmark-specific. :func:`load_bench` validates the envelope so the gate
fails loudly on a stale pre-schema artifact instead of silently skipping
its metrics.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path
from typing import Any, Mapping

SCHEMA_VERSION = 1

_ENVELOPE_KEYS = ("schema_version", "benchmark", "workload", "metrics")


def git_revision(root: str | Path | None = None) -> str | None:
    """The current git commit hash, or ``None`` outside a work tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(root) if root is not None else None,
            capture_output=True,
            text=True,
            timeout=10.0,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def bench_payload(
    benchmark: str,
    *,
    workload: Mapping[str, Any],
    metrics: Mapping[str, Any],
    notes: str | None = None,
    date: str | None = None,
    git_rev: str | None = None,
) -> dict[str, Any]:
    """Assemble one schema-conforming benchmark artifact.

    ``date`` and ``git_rev`` default to "now" / "HEAD" so callers normally
    omit them; tests pass fixed values for byte-stable output.
    """
    payload: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": benchmark,
        "git_rev": git_rev if git_rev is not None else git_revision(),
        "date": date if date is not None else time.strftime("%Y-%m-%d"),
        "workload": dict(workload),
        "metrics": dict(metrics),
    }
    if notes is not None:
        payload["notes"] = notes
    return payload


def write_bench(path: str | Path, payload: Mapping[str, Any]) -> Path:
    """Validate and write a benchmark artifact (indent-2 JSON, newline)."""
    _validate(dict(payload), str(path))
    out = Path(path)
    out.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return out


def load_bench(path: str | Path) -> dict[str, Any]:
    """Read and validate one ``BENCH_*.json`` artifact."""
    payload = json.loads(Path(path).read_text())
    _validate(payload, str(path))
    return payload


def _validate(payload: dict[str, Any], origin: str) -> None:
    missing = [key for key in _ENVELOPE_KEYS if key not in payload]
    if missing:
        raise ValueError(
            f"{origin}: not a schema-v{SCHEMA_VERSION} benchmark artifact "
            f"(missing {', '.join(missing)})"
        )
    version = payload["schema_version"]
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{origin}: schema_version {version!r} unsupported "
            f"(this tooling speaks {SCHEMA_VERSION})"
        )
    for key in ("workload", "metrics"):
        if not isinstance(payload[key], dict):
            raise ValueError(f"{origin}: {key!r} must be an object")


def flatten_metrics(payload: Mapping[str, Any]) -> dict[str, float]:
    """Numeric leaves of ``payload['metrics']`` keyed by dotted path.

    Booleans flatten to 0.0/1.0 so contract flags (``rerun_cache_hit``)
    can be gated like any other metric; strings and nulls are skipped.
    """
    flat: dict[str, float] = {}

    def walk(prefix: str, node: Any) -> None:
        if isinstance(node, bool):
            flat[prefix] = 1.0 if node else 0.0
        elif isinstance(node, (int, float)):
            flat[prefix] = float(node)
        elif isinstance(node, dict):
            for key, value in node.items():
                walk(f"{prefix}.{key}" if prefix else str(key), value)
        elif isinstance(node, (list, tuple)):
            for index, value in enumerate(node):
                walk(f"{prefix}.{index}" if prefix else str(index), value)

    walk("", payload.get("metrics", {}))
    return flat


__all__ = [
    "SCHEMA_VERSION",
    "bench_payload",
    "flatten_metrics",
    "git_revision",
    "load_bench",
    "write_bench",
]
