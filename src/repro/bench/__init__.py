"""Experiment harness regenerating every table and figure of the paper.

:mod:`repro.bench.figures` has one entry point per experiment (Figs. 4-8),
:mod:`repro.bench.tables` one per table (Tables 1-5), and
:mod:`repro.bench.report` renders the paper-style text tables. The
``benchmarks/`` pytest-benchmark suite and the ``examples/`` scripts are
thin wrappers over these functions, so every number can also be produced
programmatically.
"""

from repro.bench.report import format_table, print_table
from repro.bench.schema import (
    SCHEMA_VERSION,
    bench_payload,
    flatten_metrics,
    git_revision,
    load_bench,
    write_bench,
)
from repro.bench.figures import (
    fig4a_matrix_scaling,
    fig4b_batch_scaling,
    fig5_implicit_scaling,
    fig6_pele_runtimes,
    fig7_speedup_summary,
    fig8_roofline,
)
from repro.bench.tables import (
    table1_terminology,
    table2_execution_model,
    table3_features,
    table4_datasets,
    table5_gpu_specs,
)

__all__ = [
    "SCHEMA_VERSION",
    "bench_payload",
    "flatten_metrics",
    "git_revision",
    "load_bench",
    "write_bench",
    "format_table",
    "print_table",
    "fig4a_matrix_scaling",
    "fig4b_batch_scaling",
    "fig5_implicit_scaling",
    "fig6_pele_runtimes",
    "fig7_speedup_summary",
    "fig8_roofline",
    "table1_terminology",
    "table2_execution_model",
    "table3_features",
    "table4_datasets",
    "table5_gpu_specs",
]
