"""ASCII rendering of figure series (no plotting dependencies).

The paper's figures are line/bar charts; in a terminal-only environment
the harness renders the same series as ASCII: log-scaled bar charts for
runtime series and grouped bars for speedup comparisons. Used by the CLI
and examples; the benches print tables (exact numbers) instead.
"""

from __future__ import annotations

import math
from typing import Sequence

_BAR = "#"
_WIDTH = 48


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str | None = None,
    log_scale: bool = False,
    width: int = _WIDTH,
    unit: str = "",
) -> str:
    """Horizontal bar chart; one row per (label, value)."""
    if len(labels) != len(values):
        raise ValueError(
            f"labels and values differ in length: {len(labels)} vs {len(values)}"
        )
    if not values:
        return title or "(no data)"
    if any(v < 0 for v in values):
        raise ValueError("bar_chart expects non-negative values")
    if log_scale and any(v <= 0 for v in values):
        raise ValueError("log scale requires strictly positive values")

    if log_scale:
        scaled = [math.log10(v) for v in values]
        lo = min(scaled)
        span = max(scaled) - lo or 1.0
        lengths = [max(1, round((s - lo) / span * (width - 1)) + 1) for s in scaled]
    else:
        top = max(values) or 1.0
        lengths = [max(1 if v > 0 else 0, round(v / top * width)) for v in values]

    label_w = max(len(str(lab)) for lab in labels)
    lines = [title] if title else []
    for lab, val, length in zip(labels, values, lengths):
        lines.append(f"{str(lab).rjust(label_w)} | {_BAR * length} {val:.4g}{unit}")
    return "\n".join(lines)


def series_chart(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    unit: str = "",
) -> str:
    """Several named series over a shared x-axis, as grouped bar blocks."""
    lines = [title] if title else []
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(f"series {name!r} length {len(ys)} != x length {len(x)}")
        lines.append(f"-- {name} --")
        lines.append(bar_chart([str(v) for v in x], list(ys), log_scale=False, unit=unit))
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line trend (eighth-block characters)."""
    blocks = "▁▂▃▄▅▆▇█"
    vals = list(values)
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    span = hi - lo or 1.0
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in vals)
