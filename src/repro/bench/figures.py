"""One entry point per evaluation figure (Figs. 4-8 of the paper).

Every function runs the *real* batched solvers on the paper's workloads
(the representative unique matrices — the paper itself replicates a few
cells' matrices to emulate a large mesh), then pushes the measured
iteration counts and instrumented traffic through the hardware model to
obtain per-platform runtimes at the full modeled batch size. Functions
return dict-rows ready for :func:`repro.bench.report.print_table`.
"""

from __future__ import annotations

import numpy as np

from repro.bench.report import print_table
from repro.core.dispatch import BatchSolverFactory
from repro.hw.advisor import AdvisorReport, analyze_solve
from repro.hw.specs import gpu
from repro.hw.timing import estimate_solve
from repro.workloads.pele import MECHANISMS, pele_batch, pele_rhs
from repro.workloads.stencil import stencil_rhs, three_point_stencil

#: The paper's headline batch size (Figs. 4a, 5, 7, 8).
DEFAULT_BATCH = 2**17

#: Batch sweep of Figs. 4b and 6.
BATCH_SWEEP = tuple(2**k for k in range(13, 18))

#: Matrix-size sweep of the stencil studies.
SIZE_SWEEP = (16, 32, 64, 128, 256, 512)

_PLATFORMS = ("a100", "h100", "pvc1", "pvc2")


def _stencil_solve(num_rows: int, solver_name: str, nb_solve: int, tolerance: float):
    matrix = three_point_stencil(num_rows, nb_solve)
    rhs = stencil_rhs(num_rows, nb_solve)
    factory = BatchSolverFactory(
        solver=solver_name,
        preconditioner="identity",
        criterion="relative",
        tolerance=tolerance,
        max_iterations=4000,
    )
    solver = factory.create(matrix)
    return solver, solver.solve(rhs)


def _pele_solve(mechanism: str, tolerance: float, nb_solve: int | None = None):
    matrix = pele_batch(mechanism, num_batch=nb_solve)
    rhs = pele_rhs(matrix)
    factory = BatchSolverFactory(
        solver="bicgstab",
        preconditioner="jacobi",
        criterion="relative",
        tolerance=tolerance,
        max_iterations=500,
    )
    solver = factory.create(matrix)
    return solver, solver.solve(rhs)


def fig4a_matrix_scaling(
    sizes: tuple[int, ...] = SIZE_SWEEP,
    num_batch: int = DEFAULT_BATCH,
    platform: str = "pvc1",
    solvers: tuple[str, ...] = ("cg", "bicgstab"),
    nb_solve: int = 16,
    tolerance: float = 1e-9,
) -> list[dict]:
    """Fig. 4a: runtime vs matrix size at a fixed batch of 2^17 (PVC-1S)."""
    spec = gpu(platform)
    rows = []
    for solver_name in solvers:
        for n in sizes:
            solver, result = _stencil_solve(n, solver_name, nb_solve, tolerance)
            timing = estimate_solve(spec, solver, result, num_batch=num_batch)
            rows.append(
                {
                    "solver": solver_name,
                    "num_rows": n,
                    "iterations": float(np.mean(result.iterations)),
                    "runtime_ms": timing.total_seconds * 1e3,
                    "ms_per_iteration": timing.total_seconds * 1e3
                    / max(1.0, float(np.mean(result.iterations))),
                }
            )
    return rows


def fig4b_batch_scaling(
    batches: tuple[int, ...] = BATCH_SWEEP,
    num_rows: int = 64,
    platform: str = "pvc1",
    solvers: tuple[str, ...] = ("cg", "bicgstab"),
    nb_solve: int = 16,
    tolerance: float = 1e-9,
) -> list[dict]:
    """Fig. 4b: runtime vs batch size for 64x64 systems (PVC-1S)."""
    spec = gpu(platform)
    rows = []
    for solver_name in solvers:
        solver, result = _stencil_solve(num_rows, solver_name, nb_solve, tolerance)
        for nb in batches:
            timing = estimate_solve(spec, solver, result, num_batch=nb)
            rows.append(
                {
                    "solver": solver_name,
                    "num_batch": nb,
                    "runtime_ms": timing.total_seconds * 1e3,
                    "us_per_1k_systems": timing.total_seconds * 1e9 / nb,
                }
            )
    return rows


def fig5_implicit_scaling(
    sizes: tuple[int, ...] = SIZE_SWEEP,
    num_batch: int = DEFAULT_BATCH,
    solvers: tuple[str, ...] = ("cg", "bicgstab"),
    nb_solve: int = 16,
    tolerance: float = 1e-9,
) -> list[dict]:
    """Fig. 5: 1-stack vs 2-stack PVC runtimes and implicit-scaling speedup."""
    one, two = gpu("pvc1"), gpu("pvc2")
    rows = []
    for solver_name in solvers:
        for n in sizes:
            solver, result = _stencil_solve(n, solver_name, nb_solve, tolerance)
            t1 = estimate_solve(one, solver, result, num_batch=num_batch)
            t2 = estimate_solve(two, solver, result, num_batch=num_batch)
            rows.append(
                {
                    "solver": solver_name,
                    "num_rows": n,
                    "pvc_1s_ms": t1.total_seconds * 1e3,
                    "pvc_2s_ms": t2.total_seconds * 1e3,
                    "speedup": t1.total_seconds / t2.total_seconds,
                }
            )
    return rows


def fig6_pele_runtimes(
    mechanisms: tuple[str, ...] | None = None,
    batches: tuple[int, ...] = BATCH_SWEEP,
    tolerance: float = 1e-9,
) -> list[dict]:
    """Fig. 6: BatchBicgstab runtimes on all four platforms, Pele inputs."""
    names = tuple(MECHANISMS) if mechanisms is None else mechanisms
    rows = []
    for name in names:
        solver, result = _pele_solve(name, tolerance)
        for nb in batches:
            row: dict = {"mechanism": name, "num_batch": nb}
            for key in _PLATFORMS:
                timing = estimate_solve(gpu(key), solver, result, num_batch=nb)
                row[f"{key}_ms"] = timing.total_seconds * 1e3
            rows.append(row)
    return rows


def fig7_speedup_summary(
    num_batch: int = DEFAULT_BATCH,
    tolerance: float = 1e-9,
) -> list[dict]:
    """Fig. 7: speedup over the A100 baseline at batch 2^17, plus averages."""
    rows = []
    sums = {key: 0.0 for key in _PLATFORMS}
    for name in MECHANISMS:
        solver, result = _pele_solve(name, tolerance)
        times = {
            key: estimate_solve(gpu(key), solver, result, num_batch=num_batch).total_seconds
            for key in _PLATFORMS
        }
        row: dict = {"mechanism": name}
        for key in _PLATFORMS:
            speedup = times["a100"] / times[key]
            row[f"{key}_speedup"] = speedup
            sums[key] += speedup
        rows.append(row)
    avg: dict = {"mechanism": "average"}
    for key in _PLATFORMS:
        avg[f"{key}_speedup"] = sums[key] / len(MECHANISMS)
    rows.append(avg)
    return rows


def fig8_roofline(
    mechanism: str = "dodecane_lu",
    platform: str = "pvc1",
    num_batch: int = DEFAULT_BATCH,
    tolerance: float = 1e-9,
) -> AdvisorReport:
    """Fig. 8: Advisor-style roofline + memory metrics for dodecane_lu."""
    solver, result = _pele_solve(mechanism, tolerance)
    return analyze_solve(gpu(platform), solver, result, num_batch=num_batch)


def main() -> None:  # pragma: no cover - convenience CLI
    """Regenerate every figure and print the tables."""
    print_table(fig4a_matrix_scaling(), "Fig 4a: runtime vs matrix size (PVC-1S, 2^17)")
    print_table(fig4b_batch_scaling(), "Fig 4b: runtime vs batch size (64x64, PVC-1S)")
    print_table(fig5_implicit_scaling(), "Fig 5: implicit scaling, 1 vs 2 stacks")
    print_table(fig6_pele_runtimes(), "Fig 6: Pele runtimes on all platforms")
    print_table(fig7_speedup_summary(), "Fig 7: speedup vs A100 (batch 2^17)")
    print()
    print("Fig 8: roofline / memory metrics")
    for line in fig8_roofline().lines():
        print("  " + line)


if __name__ == "__main__":  # pragma: no cover
    main()
