"""Plain-text table rendering for the experiment harness.

The benches print the same rows/series the paper reports; this module
keeps the formatting in one place (fixed-width columns, ``-`` for missing
values, 4 significant digits for floats).
"""

from __future__ import annotations

from typing import Any, Iterable


def _cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Iterable[dict[str, Any]], title: str | None = None) -> str:
    """Render dict-rows as an aligned text table (all rows, same keys)."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    headers = list(rows[0].keys())
    table = [[_cell(r.get(h)) for h in headers] for r in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in table)) for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in table:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(rows: Iterable[dict[str, Any]], title: str | None = None) -> None:
    """Print :func:`format_table` output (benches call this)."""
    print()
    print(format_table(rows, title))
