"""One entry point per paper table (Tables 1-5)."""

from __future__ import annotations

from repro.bench.report import print_table
from repro.core.dispatch import feature_matrix
from repro.hw.specs import TERMINOLOGY_MAP, table5_rows
from repro.sycl.ndrange import EXECUTION_MODEL_MAP
from repro.workloads.pele import table4_rows


def table1_terminology() -> list[dict]:
    """Table 1: CUDA <-> Ponte Vecchio architecture terminology."""
    return [
        {"cuda_capable_gpus": cuda, "ponte_vecchio_gpus": pvc}
        for cuda, pvc in TERMINOLOGY_MAP.items()
    ]


def table2_execution_model() -> list[dict]:
    """Table 2: CUDA <-> SYCL execution-model mapping."""
    return [
        {"cuda": cuda, "sycl": sycl} for cuda, sycl in EXECUTION_MODEL_MAP.items()
    ]


#: The exact rows of the paper's Table 3 (this library adds a few more
#: entries; the bench distinguishes paper rows from extensions).
PAPER_TABLE3 = {
    "matrix_formats": ["dense", "csr", "ell"],
    "solvers": ["cg", "bicgstab", "gmres", "trsv"],
    "preconditioners": ["jacobi", "ilu", "isai"],
    "stopping_criteria": ["absolute", "relative"],
}


def table3_features() -> list[dict]:
    """Table 3: batched feature support, paper rows + library extensions."""
    available = feature_matrix()
    rows = []
    columns = list(PAPER_TABLE3)
    depth = max(len(available[c]) for c in columns)
    for i in range(depth):
        row = {}
        for col in columns:
            entries = available[col]
            if i < len(entries):
                name = entries[i]
                marker = "" if name in PAPER_TABLE3[col] else " (+)"
                row[col] = f"{name}{marker}"
            else:
                row[col] = None
        rows.append(row)
    return rows


def table4_datasets() -> list[dict]:
    """Table 4: the input datasets (stencil formula + five mechanisms)."""
    return table4_rows()


def table5_gpu_specs() -> list[dict]:
    """Table 5: GPU specifications of the four platforms."""
    return table5_rows()


def main() -> None:  # pragma: no cover - convenience CLI
    """Print every paper table."""
    print_table(table1_terminology(), "Table 1: terminology mapping")
    print_table(table2_execution_model(), "Table 2: execution model mapping")
    print_table(table3_features(), "Table 3: batched feature support")
    print_table(table4_datasets(), "Table 4: data inputs")
    print_table(table5_gpu_specs(), "Table 5: GPU specifications")


if __name__ == "__main__":  # pragma: no cover
    main()
