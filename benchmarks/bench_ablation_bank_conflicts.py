"""Ablation: quantifying the paper's future-work item (SLM bank conflicts).

Section 4.4: "Further optimizations to improve SLM accesses, for example
identifying possible bank-conflicts and resolving them, will be part of
our future work." The analyzer walks the solvers' actual SLM access
patterns: unit-stride vector sweeps, the SpMV column gather over the real
Pele patterns, and the layout pathologies (power-of-two strides) that
padding resolves.
"""

from repro.bench.report import print_table
from repro.hw.bank_conflicts import (
    analyze_solver_conflicts,
    gather_conflict_factor,
    strided_conflict_factor,
)
from repro.hw.specs import gpu
from repro.workloads.pele import MECHANISMS, pele_batch


def _run():
    stride_rows = []
    for stride in (1, 2, 8, 16, 17, 32):
        stride_rows.append(
            {
                "stride_elems": stride,
                "h100_factor": strided_conflict_factor(stride, 32, 8, 32),
                "pvc_sg16_factor": strided_conflict_factor(stride, 16, 8, 64),
            }
        )

    gather_rows = []
    for name in MECHANISMS:
        matrix = pele_batch(name)
        gather_rows.append(
            {
                "mechanism": name,
                "pvc_sg16": gather_conflict_factor(matrix, 16, 8, 64),
                "pvc_sg32": gather_conflict_factor(matrix, 32, 8, 64),
                "h100_warp": gather_conflict_factor(matrix, 32, 8, 32),
            }
        )

    reports = [
        analyze_solver_conflicts(gpu(key), pele_batch("dodecane_lu"))
        for key in ("pvc1", "h100")
    ]
    return stride_rows, gather_rows, reports


def test_ablation_bank_conflicts(once):
    stride_rows, gather_rows, reports = once(_run)
    print_table(stride_rows, "Strided SLM access: serialization factors")
    print_table(gather_rows, "SpMV x-gather over the real Pele patterns")
    print_table(
        [
            {
                "platform": r.spec_key,
                "lanes": r.lanes,
                "banks": r.num_banks,
                "avg_factor": r.average_factor,
                "projected_speedup_if_resolved": r.projected_speedup,
            }
            for r in reports
        ],
        "Solver-level conflict summary (dodecane_lu)",
    )

    by_stride = {r["stride_elems"]: r for r in stride_rows}
    # the classic pathology and its padding fix
    assert by_stride[16]["h100_factor"] == 16.0
    assert by_stride[17]["h100_factor"] <= 2.0
    # unit-stride sweeps (the solvers' BLAS-1) are conflict-free everywhere
    assert by_stride[1]["h100_factor"] == 1.0
    assert by_stride[1]["pvc_sg16_factor"] == 1.0
    # the gathers over real chemistry patterns are mildly conflicting at
    # warp width, nearly free at PVC's sub-group 16 over 64 banks —
    # honest finding: bank conflicts are NOT the dominant loss for these
    # kernels, consistent with the solver sitting below (not far below)
    # the SLM roof in Fig. 8
    for row in gather_rows:
        assert 1.0 <= row["h100_warp"] < 4.0
        assert row["pvc_sg16"] < row["h100_warp"] + 1.0
    for report in reports:
        assert report.projected_speedup < 1.5
