"""Ablation: tunable accuracy — the core advantage of iterative solvers.

Section 2.1: "batched iterative solvers provide the possibility to vary
the solution accuracy, which can be beneficial to reduce the runtime of
the non-linear iteration" (and "we might not need to solve the system to
machine precision"). This bench sweeps the stopping tolerance for the
dodecane_lu input, measuring iterations and modeled runtime, against the
fixed cost of the batched direct baseline — showing the regime where the
iterative solver wins by *not* over-solving.
"""

import numpy as np

from repro.bench.report import print_table
from repro.core import BatchBicgstab, BatchDirect, BatchJacobi, SolverSettings
from repro.core.stop import RelativeResidual
from repro.hw import estimate_solve, gpu
from repro.workloads.pele import pele_batch, pele_rhs

_TOLERANCES = (1e-3, 1e-5, 1e-7, 1e-9, 1e-11)


def _run():
    spec = gpu("pvc1")
    matrix = pele_batch("dodecane_lu")
    b = pele_rhs(matrix)
    rows = []
    for tol in _TOLERANCES:
        solver = BatchBicgstab(
            matrix,
            BatchJacobi(matrix),
            settings=SolverSettings(
                max_iterations=500, criterion=RelativeResidual(tol)
            ),
        )
        result = solver.solve(b)
        timing = estimate_solve(spec, solver, result, num_batch=2**17)
        rows.append(
            {
                "tolerance": tol,
                "mean_iterations": float(np.mean(result.iterations)),
                "runtime_ms": timing.total_seconds * 1e3,
                "all_converged": result.all_converged,
            }
        )
    # the direct baseline pays its full factorization at any accuracy
    direct = BatchDirect(matrix)
    direct_result = direct.solve(b)
    direct_timing = estimate_solve(spec, direct, direct_result, num_batch=2**17)
    rows.append(
        {
            "tolerance": "exact (direct LU)",
            "mean_iterations": 1.0,
            "runtime_ms": direct_timing.total_seconds * 1e3,
            "all_converged": True,
        }
    )
    return rows


def test_tolerance_sweep(once):
    rows = once(_run)
    print_table(rows, "Tunable accuracy: BatchBicgstab tolerance sweep vs direct LU")
    iterative = rows[:-1]
    direct_ms = rows[-1]["runtime_ms"]

    iters = [r["mean_iterations"] for r in iterative]
    times = [r["runtime_ms"] for r in iterative]
    assert all(r["all_converged"] for r in iterative)
    # tighter tolerance -> monotonically more work
    assert all(a <= b for a, b in zip(iters, iters[1:]))
    assert all(a <= b * 1.001 for a, b in zip(times, times[1:]))
    # the loose-tolerance iterative solve beats the direct baseline by a lot
    assert times[0] < 0.5 * direct_ms
