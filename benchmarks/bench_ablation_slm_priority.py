"""Ablation: the Section 3.5 SLM priority allocation vs no SLM staging.

DESIGN.md calls out the SLM workspace policy as the paper's central
optimization. This bench compares, on the hardware model, three
placements of the BatchBicgstab working set for dodecane_lu:

* ``paper``   — the priority allocation (vectors + matrix copy in SLM);
* ``no_slm``  — everything streamed from global memory;
* ``vectors_only`` — vectors in SLM, matrix values streamed from L2.
"""

import numpy as np

from repro.bench.report import print_table
from repro.core import BatchBicgstab, BatchJacobi, SolverSettings
from repro.core.launch import LaunchConfigurator
from repro.core.stop import RelativeResidual
from repro.core.workspace import SlmBudget, plan_workspace
from repro.hw.memmodel import split_traffic
from repro.hw.specs import gpu
from repro.hw.timing import estimate_runtime
from repro.workloads.pele import pele_batch, pele_rhs


def _run_ablation():
    spec = gpu("pvc1")
    matrix = pele_batch("dodecane_lu")
    solver = BatchBicgstab(
        matrix,
        BatchJacobi(matrix),
        settings=SolverSettings(max_iterations=200, criterion=RelativeResidual(1e-9)),
    )
    result = solver.solve(pele_rhs(matrix))
    iterations = float(np.mean(result.iterations))
    num_batch = 2**17

    vectors = solver.workspace_vectors()
    precond = solver.preconditioner.workspace_doubles_per_system()
    plans = {
        "paper": plan_workspace(vectors, SlmBudget(spec.slm_bytes_per_cu), precond),
        "vectors_only": plan_workspace(
            [v for v in vectors if v[0] != "A_cache"],
            SlmBudget(spec.slm_bytes_per_cu),
            precond,
        ),
        "no_slm": plan_workspace(vectors, SlmBudget(0), precond),
    }

    configurator = LaunchConfigurator(spec.device)
    rows = []
    for name, plan in plans.items():
        launch = configurator.configure(matrix.num_rows, num_batch, plan)
        per_group_iter = split_traffic(result.ledger, plan).scaled(
            1.0 / (matrix.num_batch * iterations)
        )
        timing = estimate_runtime(
            spec, per_group_iter, iterations, num_batch, launch, plan
        )
        rows.append(
            {
                "placement": name,
                "slm_kb_per_group": plan.slm_bytes_used / 1024,
                "runtime_ms": timing.total_seconds * 1e3,
                "binding": timing.binding_component,
            }
        )
    return rows


def test_ablation_slm_priority(once):
    rows = once(_run_ablation)
    print_table(rows, "Ablation: SLM workspace placement (dodecane_lu, PVC-1S, 2^17)")
    by_name = {r["placement"]: r for r in rows}
    # staging the working set in SLM is what makes the fused kernel fast
    assert by_name["paper"]["runtime_ms"] < by_name["vectors_only"]["runtime_ms"]
    assert by_name["vectors_only"]["runtime_ms"] < by_name["no_slm"]["runtime_ms"]
    # spilling everything pushes the kernel to an off-chip bound
    assert by_name["no_slm"]["binding"] in ("hbm", "l2")
    assert by_name["no_slm"]["runtime_ms"] > 2 * by_name["paper"]["runtime_ms"]
