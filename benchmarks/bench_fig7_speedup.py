"""Fig. 7: normalized speedup vs the A100 baseline, batch 2^17.

Paper findings (averages across the five Pele inputs): PVC-1S is 1.7x
the A100 and 1.3x the H100; PVC-2S is 3.1x the A100 and 2.4x the H100.
The bench asserts the modeled averages land inside a band around those
numbers (the single-mechanism spread is wider, as in the paper, where
gri12 is an outlier the authors do not explain — see EXPERIMENTS.md).
"""

import numpy as np

from repro.bench.figures import fig7_speedup_summary
from repro.bench.report import print_table


def test_fig7_speedup_summary(once):
    rows = once(fig7_speedup_summary, num_batch=2**17, tolerance=1e-9)
    print_table(rows, "Fig 7: speedup vs A100 (batch 2^17)")
    avg = rows[-1]
    assert avg["mechanism"] == "average"
    # paper averages: 1.7 / 3.1 vs A100 for PVC-1S / PVC-2S
    assert 1.5 <= avg["pvc1_speedup"] <= 1.9
    assert 2.8 <= avg["pvc2_speedup"] <= 3.4
    # paper averages vs H100: 1.3 / 2.4
    pvc1_vs_h100 = avg["pvc1_speedup"] / avg["h100_speedup"]
    pvc2_vs_h100 = avg["pvc2_speedup"] / avg["h100_speedup"]
    assert 1.1 <= pvc1_vs_h100 <= 1.5
    assert 2.1 <= pvc2_vs_h100 <= 2.7
    # ordering holds for every mechanism
    for row in rows[:-1]:
        assert row["pvc2_speedup"] > row["pvc1_speedup"] > 1.0
        assert row["h100_speedup"] > 1.0
