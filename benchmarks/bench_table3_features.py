"""Table 3: batched feature support — instantiate every legal combination.

The bench goes beyond printing the table: it dispatches and solves with
every legal (solver x preconditioner) pair of the paper's Table 3, which
is the claim the table makes ("due to the templated design, any of the
columns can be combined with another, with only a few exceptions").
"""

import numpy as np

from repro.bench.report import print_table
from repro.bench.tables import PAPER_TABLE3, table3_features
from repro.core.dispatch import BatchSolverFactory
from repro.exceptions import UnsupportedCombinationError
from repro.workloads.general import random_diag_dominant_batch, random_spd_batch


def _combinations():
    """All paper (solver, preconditioner, criterion) combinations."""
    combos = []
    for solver in PAPER_TABLE3["solvers"]:
        for precond in PAPER_TABLE3["preconditioners"]:
            for criterion in PAPER_TABLE3["stopping_criteria"]:
                combos.append((solver, precond, criterion))
    return combos


def _exercise_all():
    spd = random_spd_batch(2, 8, seed=1)
    general = random_diag_dominant_batch(2, 8, seed=1)
    from repro.workloads.general import random_triangular_batch

    lower = random_triangular_batch(2, 8, uplo="lower", seed=1)
    rng = np.random.default_rng(0)
    b = rng.standard_normal((2, 8))
    outcomes = []
    for solver, precond, criterion in _combinations():
        factory = BatchSolverFactory(
            solver=solver,
            preconditioner=precond,
            criterion=criterion,
            tolerance=1e-7,
            max_iterations=1000,
        )
        matrix = {"cg": spd, "trsv": lower}.get(solver, general)
        try:
            result = factory.solve(matrix, b)
            status = "converged" if result.all_converged else "ran"
        except UnsupportedCombinationError as exc:
            status = f"rejected ({exc})"
        outcomes.append(
            {
                "solver": solver,
                "preconditioner": precond,
                "criterion": criterion,
                "status": status,
            }
        )
    return outcomes


def test_table3_features(once):
    outcomes = once(_exercise_all)
    print_table(table3_features(), "Table 3: batched feature support in the library")
    print_table(outcomes, "Table 3 exercise: every paper combination dispatched")
    # the only structural exceptions: trsv is a direct kernel (no
    # preconditioner input) — everything else must run
    for row in outcomes:
        if row["solver"] == "trsv" and row["preconditioner"] != "identity":
            assert row["status"].startswith("rejected")
        else:
            assert row["status"] in ("converged", "ran"), row
