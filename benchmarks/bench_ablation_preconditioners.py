"""Ablation: the preconditioner column of Table 3, measured.

Runs BatchBicgstab on dodecane_lu and BatchCg on the stencil with every
applicable preconditioner, reporting iterations, per-system SLM workspace
and modeled PVC-1S runtime. The trade-off the table quantifies: stronger
preconditioners buy iterations but cost SLM (squeezing the working set)
and per-iteration work.
"""

import numpy as np

from repro.bench.report import print_table
from repro.core import SolverSettings
from repro.core.dispatch import PRECONDITIONERS, BatchSolverFactory
from repro.core.stop import RelativeResidual
from repro.hw import estimate_solve, gpu
from repro.workloads.pele import pele_batch, pele_rhs
from repro.workloads.stencil import stencil_rhs, three_point_stencil


def _sweep(solver_name, matrix, b, preconds, tol=1e-9):
    spec = gpu("pvc1")
    rows = []
    for name in preconds:
        factory = BatchSolverFactory(
            solver=solver_name,
            preconditioner=name,
            tolerance=tol,
            max_iterations=2000,
        )
        solver = factory.create(matrix)
        result = solver.solve(b)
        timing = estimate_solve(spec, solver, result, num_batch=2**17)
        rows.append(
            {
                "solver": solver_name,
                "preconditioner": name,
                "mean_iterations": float(np.mean(result.iterations)),
                "converged": result.all_converged,
                "precond_slm_kb": solver.preconditioner.workspace_doubles_per_system()
                * 8
                / 1024,
                "runtime_ms": timing.total_seconds * 1e3,
            }
        )
    return rows


def test_ablation_preconditioners(once):
    def _run():
        pele = pele_batch("dodecane_lu")
        pele_rows = _sweep(
            "bicgstab",
            pele,
            pele_rhs(pele),
            ("identity", "jacobi", "block_jacobi", "ilu", "isai"),
        )
        # drop the stencil's explicit boundary zeros (IC(0) needs the
        # structurally symmetric pattern, not the padded 3n-nnz variant)
        from repro.core.matrix import BatchCsr

        stencil = BatchCsr.from_dense(three_point_stencil(64, 16).to_batch_dense())
        cg_rows = _sweep(
            "cg",
            stencil,
            stencil_rhs(64, 16),
            ("identity", "jacobi", "ic0"),
        )
        return pele_rows + cg_rows

    rows = once(_run)
    print_table(rows, "Ablation: preconditioners (modeled on PVC-1S, batch 2^17)")

    by_key = {(r["solver"], r["preconditioner"]): r for r in rows}
    # every configuration converged
    assert all(r["converged"] for r in rows)
    # the strong preconditioners cut iterations vs unpreconditioned
    bi_id = by_key[("bicgstab", "identity")]["mean_iterations"]
    assert by_key[("bicgstab", "ilu")]["mean_iterations"] < bi_id
    assert by_key[("bicgstab", "isai")]["mean_iterations"] <= bi_id
    cg_id = by_key[("cg", "identity")]["mean_iterations"]
    assert by_key[("cg", "ic0")]["mean_iterations"] < cg_id
    # and cost SLM workspace relative to scalar Jacobi
    assert (
        by_key[("bicgstab", "ilu")]["precond_slm_kb"]
        > by_key[("bicgstab", "jacobi")]["precond_slm_kb"]
    )
