"""Extension bench: explicit vs implicit two-stack scaling (Section 2.2).

The paper describes both PVC multi-stack modes: *implicit* scaling (the
driver splits one submission across the stacks — what Fig. 5 measures)
and *explicit* scaling (the user targets each stack as its own device and
partitions the work). The paper evaluates only the implicit mode; this
bench models both:

* implicit — one launch on the ``pvc2`` spec (driver split: larger launch
  overhead, 95% scaling efficiency);
* explicit — two concurrent ``pvc1`` devices via the multi-GPU model
  (per-stack launches, no driver-split penalty, user-side partitioning).

Expected shape: explicit edges out implicit for small problems (it dodges
the split overhead) and the two converge for long-running kernels — which
is why the paper can afford the convenient implicit mode.
"""

import numpy as np

from repro.bench.report import print_table
from repro.core.dispatch import BatchSolverFactory
from repro.hw.specs import gpu
from repro.hw.timing import estimate_solve
from repro.multi import estimate_multi_gpu
from repro.workloads.stencil import stencil_rhs, three_point_stencil


def _run():
    factory = BatchSolverFactory(
        solver="cg", preconditioner="identity", tolerance=1e-9, max_iterations=4000
    )
    rows = []
    for n in (16, 32, 64, 128, 256):
        matrix = three_point_stencil(n, 8)
        result = factory.solve(matrix, stencil_rhs(n, 8))

        implicit = estimate_solve(gpu("pvc2"), factory.create(matrix), result, num_batch=2**17)
        explicit = estimate_multi_gpu(
            gpu("pvc1"),
            factory,
            matrix,
            result,
            num_batch=2**17,
            num_ranks=2,
            host_staging=False,
        )
        one_stack = estimate_solve(gpu("pvc1"), factory.create(matrix), result, num_batch=2**17)
        rows.append(
            {
                "num_rows": n,
                "one_stack_ms": one_stack.total_seconds * 1e3,
                "implicit_ms": implicit.total_seconds * 1e3,
                "explicit_ms": explicit.total_seconds * 1e3,
                "explicit_vs_implicit": implicit.total_seconds / explicit.total_seconds,
            }
        )
    return rows


def test_explicit_vs_implicit_scaling(once):
    rows = once(_run)
    print_table(rows, "Explicit vs implicit 2-stack scaling (BatchCg, 2^17)")
    for row in rows:
        # both modes beat a single stack
        assert row["implicit_ms"] < row["one_stack_ms"]
        assert row["explicit_ms"] < row["one_stack_ms"]
        # explicit never loses (no driver-split overhead/efficiency loss)
        assert row["explicit_vs_implicit"] >= 0.99
    # the explicit advantage shrinks as kernels get longer
    advantages = [r["explicit_vs_implicit"] for r in rows]
    assert advantages[0] > advantages[-1]
    assert advantages[-1] < 1.15
