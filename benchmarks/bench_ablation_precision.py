"""Ablation: precision format FP64 vs FP32 (dispatch level of Sec 3.4).

The paper's dispatch mechanism instantiates the fused kernel per precision
format. This bench quantifies what switching to single precision buys on
the model — double the compute peak, half the SLM/HBM traffic, twice the
vectors per SLM byte — and what it costs: the achievable true-residual
accuracy drops to single-precision round-off.
"""

import numpy as np

from repro.bench.report import print_table
from repro.core import BatchBicgstab, BatchJacobi, SolverSettings
from repro.core.stop import RelativeResidual
from repro.hw import estimate_solve, gpu
from repro.workloads.pele import pele_batch, pele_rhs


def _run():
    spec = gpu("pvc1")
    rows = []
    for name in ("drm19", "dodecane_lu", "isooctane"):
        matrix64 = pele_batch(name)
        b = pele_rhs(matrix64)
        settings = SolverSettings(
            max_iterations=300, criterion=RelativeResidual(1e-5)
        )
        for label, matrix in (("fp64", matrix64), ("fp32", matrix64.astype(np.float32))):
            solver = BatchBicgstab(matrix, BatchJacobi(matrix), settings=settings)
            result = solver.solve(b)
            timing = estimate_solve(spec, solver, result, num_batch=2**17)
            true_res = np.linalg.norm(
                b - matrix.apply(result.x).astype(np.float64), axis=1
            ) / np.linalg.norm(b, axis=1)
            rows.append(
                {
                    "mechanism": name,
                    "precision": label,
                    "iterations": float(np.mean(result.iterations)),
                    "runtime_ms": timing.total_seconds * 1e3,
                    "slm_kb_per_group": timing.workspace_plan.slm_bytes_used / 1024,
                    "max_true_residual": float(true_res.max()),
                }
            )
    return rows


def test_ablation_precision(once):
    rows = once(_run)
    print_table(rows, "Ablation: precision format (BatchBicgstab+Jacobi, PVC-1S, 2^17)")
    by_key = {(r["mechanism"], r["precision"]): r for r in rows}
    for name in ("drm19", "dodecane_lu", "isooctane"):
        fp64, fp32 = by_key[(name, "fp64")], by_key[(name, "fp32")]
        # single precision is faster and halves the SLM footprint
        assert fp32["runtime_ms"] < fp64["runtime_ms"]
        assert fp32["slm_kb_per_group"] < fp64["slm_kb_per_group"]
        # both satisfy the loose 1e-5 criterion here
        assert fp32["max_true_residual"] < 1e-4
        assert fp64["max_true_residual"] < 1e-4
