"""Ablation: work-group vs sub-group vs CUDA-style reductions (Sec 3.2).

Runs the fused BiCGSTAB kernel on the execution-model simulator with the
three reduction implementations and counts the synchronization events the
launch actually performed. The counts quantify the paper's argument: the
sub-group path avoids SLM round-trips entirely, and the CUDA path needs
extra barrier + shuffle stages that the SYCL group primitive hides.
"""

import numpy as np

from repro.bench.report import print_table
from repro.cudasim.device import a100_device
from repro.kernels import run_batch_bicgstab_on_device
from repro.sycl.device import pvc_stack_device
from repro.sycl.queue import Queue
from repro.workloads.general import random_diag_dominant_batch


def _run_three_styles():
    matrix = random_diag_dominant_batch(2, 12, density=0.4, seed=3)
    b = np.random.default_rng(0).standard_normal((2, 12))
    inv_diag = 1.0 / matrix.diagonal()

    rows = []
    solutions = {}
    for style, device in (
        ("group", pvc_stack_device(1)),
        ("sub_group", pvc_stack_device(1)),
        ("cuda", a100_device()),
    ):
        queue = Queue(device)
        x, iters, event = run_batch_bicgstab_on_device(
            device,
            matrix,
            b,
            inv_diag=inv_diag,
            tolerance=1e-10,
            reduce_style=style,
            queue=queue,
        )
        solutions[style] = x
        counts = event.stats.collective_counts
        # inspected — drop the profiling log so sweeping many styles/sizes
        # does not accumulate event records (see Queue.reset_events)
        queue.reset_events()
        rows.append(
            {
                "style": style,
                "iterations": int(iters.max()),
                "group_reduces": counts.get("group:reduce", 0),
                "sub_group_reduces": counts.get("sub_group:reduce", 0),
                "sub_group_shuffles": counts.get("sub_group:shuffle", 0),
                "barriers": counts.get("group:barrier", 0),
            }
        )
    return rows, solutions


def test_ablation_reduction_scope(once):
    rows, solutions = once(_run_three_styles)
    print_table(rows, "Ablation: reduction implementation (fused BiCGSTAB, simulator)")
    by_style = {r["style"]: r for r in rows}

    # identical numerics across implementations (Sec 3.2's design claim)
    assert np.allclose(solutions["group"], solutions["sub_group"], atol=1e-9)
    assert np.allclose(solutions["group"], solutions["cuda"], atol=1e-9)
    assert (
        by_style["group"]["iterations"]
        == by_style["sub_group"]["iterations"]
        == by_style["cuda"]["iterations"]
    )

    # SYCL group path: all reductions at group scope, none at sub-group
    assert by_style["group"]["group_reduces"] > 0
    assert by_style["group"]["sub_group_shuffles"] == 0

    # sub-group path: no group-scope reduction primitives at all
    assert by_style["sub_group"]["group_reduces"] == 0
    assert by_style["sub_group"]["sub_group_reduces"] > 0

    # CUDA path: shuffles + extra barriers instead of the group primitive
    assert by_style["cuda"]["group_reduces"] == 0
    assert by_style["cuda"]["sub_group_shuffles"] > 0
    assert by_style["cuda"]["barriers"] > by_style["group"]["barriers"]
