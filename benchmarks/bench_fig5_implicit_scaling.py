"""Fig. 5: implicit scaling over the two PVC stacks.

Paper finding: 1.5x-2.0x speedup going from 1 to 2 stacks, on average
1.8x for BatchCg and 1.9x for BatchBicgstab, "the larger matrix size,
the higher speedup".
"""

import numpy as np

from repro.bench.figures import fig5_implicit_scaling
from repro.bench.report import print_table


def test_fig5_implicit_scaling(once):
    rows = once(
        fig5_implicit_scaling,
        sizes=(16, 32, 64, 128, 256, 512),
        nb_solve=8,
        tolerance=1e-9,
    )
    print_table(rows, "Fig 5: PVC 1-stack vs 2-stack (batch 2^17)")
    speedups = np.array([r["speedup"] for r in rows])
    assert np.all(speedups > 1.4), "2 stacks must help everywhere"
    assert np.all(speedups < 2.0), "implicit scaling cannot exceed 2x"
    for solver in ("cg", "bicgstab"):
        series = [r["speedup"] for r in rows if r["solver"] == solver]
        # paper: averages 1.8x (Cg) / 1.9x (Bicgstab)
        assert 1.6 < np.mean(series) < 2.0, solver
        # paper: larger matrices scale better
        assert series[-1] > series[0]
