"""Extension bench: multi-GPU scaling of the batched solvers.

The paper's outlook (Section 4.2): "we can easily scale to multiple GPUs
as distributing these batched matrices over the MPI ranks is trivial and
no additional communication is necessary". This bench (a) runs a real
distributed solve through the simulated MPI world and verifies zero
mid-solve communication, and (b) models 1-8 PVC GPUs over a 2^17 batch,
asserting near-linear scaling in the device-resident scenario.
"""

import numpy as np

from repro.bench.report import print_table
from repro.core.dispatch import BatchSolverFactory
from repro.hw.specs import gpu
from repro.multi import SimWorld, estimate_multi_gpu, solve_distributed
from repro.workloads.pele import pele_batch, pele_rhs


def _run():
    matrix = pele_batch("dodecane_lu")
    b = pele_rhs(matrix)
    factory = BatchSolverFactory(
        solver="bicgstab", preconditioner="jacobi", tolerance=1e-9
    )
    result = factory.solve(matrix, b)

    # (a) real distributed solve through the simulated world
    world = SimWorld(4)
    dist = solve_distributed(world, factory, matrix, b)
    comm_ops = {line.split()[0] for line in world.collective_log}

    # (b) modeled scaling on PVC GPUs
    rows = []
    baseline = None
    for ranks in (1, 2, 4, 8):
        timing = estimate_multi_gpu(
            gpu("pvc2"),
            factory,
            matrix,
            result,
            num_batch=2**17,
            num_ranks=ranks,
            host_staging=False,
        )
        if baseline is None:
            baseline = timing
        rows.append(
            {
                "gpus": ranks,
                "runtime_ms": timing.total_seconds * 1e3,
                "speedup": timing.speedup_over(baseline) if ranks > 1 else 1.0,
                "efficiency_pct": 100.0 * timing.speedup_over(baseline) / ranks,
            }
        )
    return dist, comm_ops, rows


def test_multi_gpu_scaling(once):
    dist, comm_ops, rows = once(_run)
    print_table(rows, "Multi-GPU scaling (modeled, PVC x N, dodecane_lu, 2^17)")

    # correctness of the distributed solve
    assert dist.all_converged
    assert comm_ops <= {"scatter", "gather", "p2p"}  # nothing mid-solve

    # near-linear modeled scaling (launch overhead is the only serial term)
    by_ranks = {r["gpus"]: r for r in rows}
    assert by_ranks[2]["speedup"] > 1.8
    assert by_ranks[4]["speedup"] > 3.3
    assert by_ranks[8]["speedup"] > 5.5
    assert by_ranks[8]["efficiency_pct"] > 65.0
