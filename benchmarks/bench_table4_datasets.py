"""Table 4: generate every input dataset and verify its parameters."""

from repro.bench.report import print_table
from repro.bench.tables import table4_datasets
from repro.workloads.pele import MECHANISMS, pele_batch
from repro.workloads.stencil import three_point_stencil


def _generate_and_measure():
    rows = [
        {
            "input": "3pt stencil",
            "num_unique": None,
            "matrix_size": "n x n (swept)",
            "nnz_measured": f"3n (checked n=64: {three_point_stencil(64, 1).nnz_per_item})",
        }
    ]
    for name, mech in MECHANISMS.items():
        matrix = pele_batch(name)
        rows.append(
            {
                "input": name,
                "num_unique": matrix.num_batch,
                "matrix_size": f"{matrix.num_rows} x {matrix.num_cols}",
                "nnz_measured": matrix.nnz_per_item,
            }
        )
    return rows


def test_table4_datasets(once):
    measured = once(_generate_and_measure)
    print_table(table4_datasets(), "Table 4 (paper): reference for data inputs")
    print_table(measured, "Table 4 (measured from the generated batches)")
    assert three_point_stencil(64, 1).nnz_per_item == 3 * 64
    for name, mech in MECHANISMS.items():
        matrix = pele_batch(name)
        assert matrix.num_batch == mech.num_unique
        assert matrix.num_rows == mech.num_rows
        assert matrix.nnz_per_item == mech.nnz
