"""Benchmark-suite configuration.

Every bench regenerates one paper table/figure: it runs the real batched
solvers, pushes the measured work through the hardware model, prints the
paper-style table (run pytest with ``-s`` to see them) and asserts the
qualitative findings the paper reports. ``pytest benchmarks/
--benchmark-only`` runs everything; wall-clock numbers measured by
pytest-benchmark time the harness (solve + model) on the host CPU.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
