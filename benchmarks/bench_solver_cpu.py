"""Real host wall-clock benchmarks of the vectorized production solvers.

Everything else in this suite models GPU time; these benches measure what
actually runs in this repository — the NumPy-vectorized batched solvers —
so regressions in the production path show up as real time.
"""

import numpy as np
import pytest

from repro.core import (
    BatchBicgstab,
    BatchCg,
    BatchDirect,
    BatchGmres,
    BatchJacobi,
    SolverSettings,
)
from repro.core.stop import RelativeResidual
from repro.workloads.pele import pele_batch, pele_rhs
from repro.workloads.stencil import stencil_rhs, three_point_stencil


def _settings(tol=1e-9, iters=2000):
    return SolverSettings(max_iterations=iters, criterion=RelativeResidual(tol))


@pytest.fixture(scope="module")
def stencil_problem():
    matrix = three_point_stencil(64, 1024)
    return matrix, stencil_rhs(64, 1024)


@pytest.fixture(scope="module")
def pele_problem():
    matrix = pele_batch("dodecane_lu", num_batch=512)
    return matrix, pele_rhs(matrix)


def test_cg_stencil_wallclock(benchmark, stencil_problem):
    matrix, b = stencil_problem
    solver = BatchCg(matrix, settings=_settings())
    result = benchmark(solver.solve, b)
    assert result.all_converged


def test_bicgstab_stencil_wallclock(benchmark, stencil_problem):
    matrix, b = stencil_problem
    solver = BatchBicgstab(matrix, settings=_settings())
    result = benchmark(solver.solve, b)
    assert result.all_converged


def test_bicgstab_pele_wallclock(benchmark, pele_problem):
    matrix, b = pele_problem
    solver = BatchBicgstab(matrix, BatchJacobi(matrix), settings=_settings())
    result = benchmark(solver.solve, b)
    assert result.all_converged


def test_gmres_pele_wallclock(benchmark, pele_problem):
    matrix, b = pele_problem
    solver = BatchGmres(matrix, BatchJacobi(matrix), settings=_settings(), restart=20)
    result = benchmark(solver.solve, b)
    assert result.all_converged


def test_direct_baseline_wallclock(benchmark, pele_problem):
    # the batched direct baseline the paper positions iterative solvers
    # against: exact but pays dense-LU cost every time
    matrix, b = pele_problem
    solver = BatchDirect(matrix)
    result = benchmark(solver.solve, b)
    assert result.all_converged


def test_iterative_beats_direct_with_initial_guess(once, pele_problem):
    # the paper's core pitch (Sec 2.1): with a good initial guess the
    # iterative solver does almost no work, the direct solver cannot profit
    matrix, b = pele_problem

    def measure():
        direct = BatchDirect(matrix)
        exact = direct.solve(b).x
        guess = exact * (1.0 + 1e-8)
        warm = BatchBicgstab(matrix, BatchJacobi(matrix), settings=_settings())
        warm_result = warm.solve(b, x0=guess)
        cold_result = BatchBicgstab(
            matrix, BatchJacobi(matrix), settings=_settings()
        ).solve(b)
        return warm_result, cold_result

    warm_result, cold_result = once(measure)
    assert warm_result.all_converged
    assert warm_result.iterations.mean() < cold_result.iterations.mean()
    assert warm_result.ledger.flops < cold_result.ledger.flops
