"""Fig. 4b: runtime vs batch size (2^13..2^17), 64x64 systems, 1 PVC stack.

Paper finding: "we increase the number of items in the batch ... and
again observe a linear increase in the run-time. This means that we are
able to fully saturate the GPU".
"""

import numpy as np

from repro.bench.figures import BATCH_SWEEP, fig4b_batch_scaling
from repro.bench.report import print_table


def test_fig4b_batch_scaling(once):
    rows = once(fig4b_batch_scaling, batches=BATCH_SWEEP, nb_solve=8, tolerance=1e-9)
    print_table(rows, "Fig 4b: runtime vs batch size (64x64, PVC-1S)")
    for solver in ("cg", "bicgstab"):
        series = [r for r in rows if r["solver"] == solver]
        batches = np.array([r["num_batch"] for r in series], dtype=float)
        runtimes = np.array([r["runtime_ms"] for r in series])
        slope = np.polyfit(np.log2(batches), np.log2(runtimes), 1)[0]
        assert 0.9 < slope < 1.1, f"{solver}: runtime not linear in batch size"
        # saturated GPU: cost per system is flat across the sweep
        per_system = runtimes / batches
        assert per_system.max() / per_system.min() < 1.3
