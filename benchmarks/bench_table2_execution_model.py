"""Table 2: CUDA <-> SYCL execution-model mapping."""

from repro.bench.report import print_table
from repro.bench.tables import table2_execution_model


def test_table2_execution_model(once):
    rows = once(table2_execution_model)
    print_table(rows, "Table 2: execution model mapping from CUDA to SYCL")
    mapping = {r["cuda"]: r["sycl"] for r in rows}
    assert mapping == {
        "thread": "work-item",
        "warp": "sub-group",
        "thread block": "work-group",
        "grid": "ND-range",
    }
