"""Table 1: CUDA <-> Ponte Vecchio terminology mapping."""

from repro.bench.report import print_table
from repro.bench.tables import table1_terminology


def test_table1_terminology(once):
    rows = once(table1_terminology)
    print_table(rows, "Table 1: GPU architecture terminology mapping")
    mapping = {r["cuda_capable_gpus"]: r["ponte_vecchio_gpus"] for r in rows}
    assert mapping == {
        "CUDA Core": "XVE",
        "Streaming Multiprocessor": "Xe-Core (XC)",
        "Processor Cluster": "Xe-Slice",
        "N/A": "Xe-Stack",
    }
