"""Fig. 8: roofline analysis and memory metrics (BatchBicgstab,
dodecane_lu, batch 2^17, 1 PVC stack).

Paper findings: ~50% XVE threading occupancy; the memory subsystem is
dominated by shared-local-memory requests (65% of memory time, ~3 TB of
SLM traffic, far more than L3 or HBM); ~11% of accesses served by L3;
the solver sits below the SLM bandwidth roof (bank conflicts are named
as future work).
"""

from repro.bench.figures import fig8_roofline
from repro.bench.report import print_table


def test_fig8_roofline(once):
    report = once(fig8_roofline, mechanism="dodecane_lu", num_batch=2**17)
    print()
    print("Fig 8: roofline analysis and memory metrics (model)")
    for line in report.lines():
        print("  " + line)
    print_table(
        [
            {"object": name, "level": level, "gigabytes": nbytes / 1e9}
            for name, (level, nbytes) in sorted(report.total_split.by_object.items())
        ],
        "Fig 8: traffic by solver object",
    )

    # ~50% XVE threading occupancy (paper: "around 50%")
    assert abs(report.xve_threading_occupancy - 0.5) < 0.15
    # SLM dominates the memory picture
    split = report.total_split
    assert split.slm_bytes > split.l2_bytes
    assert split.slm_bytes > split.hbm_bytes
    assert report.memory_time_fractions["slm"] > 0.4
    # L2 (Advisor's "L3") serves a visible minority of the traffic
    assert 0.03 < split.fraction("l2") < 0.4
    # below the SLM bandwidth roof (paper: "does not yet reach the SLM
    # Bandwidth roof"; bank conflicts unresolved)
    point = report.roofline_point
    assert point.achieved_gflops < point.attainable_gflops_by_level["slm"]
    # terabyte-scale SLM traffic at batch 2^17 (paper: ~3 TB)
    assert split.slm_bytes > 5e10
