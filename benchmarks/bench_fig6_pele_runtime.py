"""Fig. 6: BatchBicgstab runtime on A100/H100/PVC-1S/PVC-2S, Pele inputs.

Paper findings: (a) the PVC-2S solver outperforms A100 and H100 for all
matrices at the large batch sizes, (b) the solvers scale linearly with
batch size on real inputs just like on the synthetic ones.
"""

import numpy as np

from repro.bench.figures import BATCH_SWEEP, fig6_pele_runtimes
from repro.bench.report import print_table


def test_fig6_pele_runtimes(once):
    rows = once(fig6_pele_runtimes, batches=BATCH_SWEEP, tolerance=1e-9)
    print_table(rows, "Fig 6: Pele runtimes (ms) on the four platforms")

    mechanisms = sorted({r["mechanism"] for r in rows})
    assert mechanisms == ["dodecane_lu", "drm19", "gri12", "gri30", "isooctane"]

    for name in mechanisms:
        series = [r for r in rows if r["mechanism"] == name]
        # (a) PVC-2S wins at the headline batch size
        top = max(series, key=lambda r: r["num_batch"])
        assert top["pvc2_ms"] < top["h100_ms"] < top["a100_ms"]
        assert top["pvc1_ms"] < top["a100_ms"]
        # (b) linear batch scaling per platform once the GPU is saturated
        # (small batches on PVC-2S are launch-overhead dominated, which is
        # also why the paper's Fig. 5 speedups drop below 2x there)
        for key in ("a100_ms", "h100_ms", "pvc1_ms", "pvc2_ms"):
            saturated = sorted(series, key=lambda r: r["num_batch"])[-3:]
            batches = np.array([r["num_batch"] for r in saturated], dtype=float)
            runtimes = np.array([r[key] for r in saturated])
            slope = np.polyfit(np.log2(batches), np.log2(runtimes), 1)[0]
            assert 0.7 < slope < 1.1, (name, key)
