"""Ablation: BatchCsr vs BatchEll storage and real SpMV wall-clock.

Section 3.1/3.2: BatchEll suits matrices with balanced rows (the 3-pt
stencil is the perfect case — exactly 3 entries per row); BatchCsr is the
general format. This bench measures *actual host wall-clock* of the
vectorized batched SpMV for both formats with pytest-benchmark, plus the
Fig. 2 storage comparison.
"""

import numpy as np
import pytest

from repro.bench.report import print_table
from repro.core.matrix import BatchCsr, BatchDense, BatchEll
from repro.workloads.stencil import three_point_stencil

_N = 64
_NB = 4096


@pytest.fixture(scope="module")
def stencil_formats():
    csr = three_point_stencil(_N, _NB, fmt="csr")
    ell = BatchEll.from_batch_csr(csr)
    x = np.random.default_rng(0).standard_normal((_NB, _N))
    return csr, ell, x


def test_spmv_csr_wallclock(benchmark, stencil_formats):
    csr, _, x = stencil_formats
    y = benchmark(csr.apply, x)
    assert y.shape == (_NB, _N)


def test_spmv_ell_wallclock(benchmark, stencil_formats):
    _, ell, x = stencil_formats
    y = benchmark(ell.apply, x)
    assert y.shape == (_NB, _N)


def test_formats_agree_and_storage(once, stencil_formats):
    csr, ell, x = stencil_formats

    def measure():
        dense_bytes = BatchDense(csr.to_batch_dense()).storage_bytes
        return [
            {
                "format": "BatchDense",
                "megabytes": dense_bytes / 1e6,
                "vs_dense": 1.0,
            },
            {
                "format": "BatchCsr",
                "megabytes": csr.storage_bytes / 1e6,
                "vs_dense": csr.storage_bytes / dense_bytes,
            },
            {
                "format": "BatchEll",
                "megabytes": ell.storage_bytes / 1e6,
                "vs_dense": ell.storage_bytes / dense_bytes,
            },
        ]

    rows = once(measure)
    print_table(rows, f"Fig 2 storage: {_NB} stencil systems of size {_N}")
    assert np.allclose(csr.apply(x), ell.apply(x))
    by_fmt = {r["format"]: r for r in rows}
    # Fig. 2: sparse batched formats amortize the pattern across the batch
    assert by_fmt["BatchCsr"]["vs_dense"] < 0.1
    assert by_fmt["BatchEll"]["vs_dense"] < 0.1
    # for perfectly balanced rows ELL needs no row pointers at all
    assert ell.pattern_bytes < csr.pattern_bytes
