"""Ablation: sub-group size 16 vs 32 across matrix sizes (Section 3.6).

The paper selects the sub-group size at runtime (16 for small matrices,
32 for large ones) because it changes the launch geometry: the work-group
size is the row count rounded up to the sub-group size, so the wrong
width wastes lanes on small systems (padding) or hardware threads on
large ones. The bench quantifies both effects — padded work-items and
resident hardware threads — for the Pele sizes.
"""

from repro.bench.report import print_table
from repro.core.launch import LaunchConfigurator
from repro.hw.occupancy import occupancy_report
from repro.hw.specs import gpu
from repro.workloads.pele import MECHANISMS


def _sweep():
    spec = gpu("pvc1")
    rows = []
    for name, mech in MECHANISMS.items():
        for sg in (16, 32):
            cfg = LaunchConfigurator(spec.device, sub_group_threshold_rows=10**9)
            wg = cfg.pick_work_group_size(mech.num_rows, sg)
            plan_cls = type(cfg.configure(mech.num_rows, 1))
            plan = plan_cls(
                num_groups=2**17,
                work_group_size=wg,
                sub_group_size=sg,
                reduction_scope=cfg.pick_reduction_scope(mech.num_rows, sg),
                slm_bytes_per_group=0,
            )
            occ = occupancy_report(spec, plan, 2**17)
            padding = wg - mech.num_rows
            rows.append(
                {
                    "mechanism": name,
                    "rows": mech.num_rows,
                    "sub_group": sg,
                    "work_group": wg,
                    "padded_items": padding,
                    "padding_pct": 100.0 * padding / wg,
                    "hw_threads": occ.hw_threads_per_group,
                    "xve_occupancy_pct": 100.0 * occ.xve_threading_occupancy,
                }
            )
    return rows


def test_ablation_subgroup_size(once):
    rows = once(_sweep)
    print_table(rows, "Ablation: sub-group size 16 vs 32 (PVC-1S launch geometry)")
    by_key = {(r["mechanism"], r["sub_group"]): r for r in rows}
    # small matrices: sg=16 wastes fewer lanes (e.g. drm19: 22 rows ->
    # wg 32 with 10 padded items at sg16, wg 32 at sg32 identical, but
    # gri12: 33 rows -> 48 (15 padded) vs 64 (31 padded))
    assert (
        by_key[("gri12", 16)]["padded_items"] < by_key[("gri12", 32)]["padded_items"]
    )
    assert (
        by_key[("isooctane", 16)]["padded_items"]
        < by_key[("isooctane", 32)]["padded_items"]
    )
    # large matrices: sg=32 halves the hardware-thread count, freeing
    # scheduler slots (why the paper flips to 32 for big systems)
    assert by_key[("isooctane", 32)]["hw_threads"] < by_key[("isooctane", 16)]["hw_threads"]
    # the runtime default picks 16 below the threshold and 32 above
    default_cfg = LaunchConfigurator(gpu("pvc1").device)
    assert default_cfg.pick_sub_group_size(22) == 16
    assert default_cfg.pick_sub_group_size(144) == 32
