"""Fig. 4a: runtime vs matrix size, batch 2^17, 1 PVC stack.

Paper finding: "the overall runtime increases linearly with the matrix
size". The bench fits a log-log slope over the size sweep and asserts it
is close to 1 (linear), for both BatchCg and BatchBicgstab.
"""

import numpy as np

from repro.bench.figures import fig4a_matrix_scaling
from repro.bench.report import print_table


def test_fig4a_matrix_scaling(once):
    rows = once(
        fig4a_matrix_scaling,
        sizes=(16, 32, 64, 128, 256, 512),
        nb_solve=8,
        tolerance=1e-9,
    )
    print_table(rows, "Fig 4a: runtime vs matrix size (PVC-1S, batch 2^17)")
    for solver in ("cg", "bicgstab"):
        series = [r for r in rows if r["solver"] == solver]
        sizes = np.array([r["num_rows"] for r in series], dtype=float)
        # normalize out the iteration count: the paper's y-axis is total
        # runtime (iterations also grow with n for a fixed tolerance);
        # per-iteration cost is the hardware-scaling claim
        per_iter = np.array([r["ms_per_iteration"] for r in series])
        slope = np.polyfit(np.log2(sizes), np.log2(per_iter), 1)[0]
        assert 0.75 < slope < 1.25, f"{solver}: per-iteration cost not linear in n"
        totals = np.array([r["runtime_ms"] for r in series])
        assert np.all(np.diff(totals) > 0), f"{solver}: runtime must grow with n"
