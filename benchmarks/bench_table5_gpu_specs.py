"""Table 5: GPU specifications and their consistency with the devices."""

from repro.bench.report import print_table
from repro.bench.tables import table5_gpu_specs
from repro.hw.specs import GPUS


def test_table5_gpu_specs(once):
    rows = once(table5_gpu_specs)
    print_table(rows, "Table 5: GPU specifications")
    by_gpu = {r["gpu"]: r for r in rows}
    assert by_gpu["A100"] == {
        "gpu": "A100",
        "fp64_peak_tflops": 9.7,
        "hbm_bw_peak_tbs": 1.6,
        "slm_kb": 192,
    }
    assert by_gpu["H100"]["fp64_peak_tflops"] == 26.0
    assert by_gpu["PVC-2S"]["fp64_peak_tflops"] == 2 * by_gpu["PVC-1S"]["fp64_peak_tflops"]
    # device descriptors agree with the spec table
    for spec in GPUS.values():
        assert spec.slm_bytes_per_cu == spec.slm_kb_per_cu * 1024
        assert spec.device.slm_bytes_per_cu == spec.slm_bytes_per_cu
